#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace numaprof::support {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const noexcept {
  return count_ ? mean_ : 0.0;
}

double Accumulator::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept {
  return std::sqrt(variance());
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) *
                          static_cast<double>(other.count_) / total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double percentile(std::span<const double> sorted_values, double p) noexcept {
  if (sorted_values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: rank = ceil(p/100 * N), 1-based.
  const auto n = sorted_values.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted_values[std::min(index, n - 1)];
}

double percentile_of(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return percentile(values, p);
}

double imbalance(std::span<const std::uint64_t> per_bucket) noexcept {
  if (per_bucket.empty()) return 1.0;
  std::uint64_t max = 0;
  std::uint64_t total = 0;
  for (const auto v : per_bucket) {
    max = std::max(max, v);
    total += v;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(per_bucket.size());
  return static_cast<double>(max) / mean;
}

}  // namespace numaprof::support
