// Self-observability for the online measurement path.
//
// The profiler's own health (sample rates, drops, fallback transitions,
// first-touch trap counts) used to be visible only post-mortem in the
// merged profile. This subsystem makes it observable LIVE, the way
// NUMAscope streams hardware metrics: every component of the measurement
// path (PMU samplers, the sampling watchdog, the first-touch trapper, the
// heap tracker, the simulated runtime) publishes counters and events into
// a lock-free per-thread TelemetryRing, and a snapshot aggregator
// periodically folds the rings into a TelemetrySnapshot that sinks render
// as a live status line or a JSONL trace (core/telemetry_stream.hpp).
//
// Concurrency contract:
//   - counters are cumulative relaxed atomics: any number of writers, any
//     number of readers, at any time;
//   - the event ring is a bounded single-producer/single-consumer queue
//     (one producer per ring — the thread the ring belongs to; one
//     consumer — whoever calls TelemetryHub::snapshot()). A full ring
//     drops the NEWEST event and counts the drop, so publishing never
//     blocks the measurement path;
//   - the hot tables (pages / variables / call paths) follow the same
//     single-producer contract; every slot field is a relaxed atomic, so
//     a concurrent snapshot may observe one slot mid-replacement (a
//     monitoring-grade inconsistency, never a data race);
//   - ring creation is lock-free on the hot path (an atomic pointer per
//     slot); only first contact with a new thread id takes a mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace numaprof::support {

/// Cumulative per-thread counters. Everything is monotonic over a run;
/// rates are derived by differencing successive snapshots.
enum class TelemetryCounter : std::uint8_t {
  kSamples,            // samples emitted by the active mechanism
  kMemorySamples,      // subset of kSamples that were memory accesses
  kDroppedSamples,     // samples suppressed in flight (fault injection)
  kCorruptedSamples,   // samples mangled in flight
  kFirstTouchTraps,    // simulated SIGSEGV first-touch traps (§6)
  kHeapRegistrations,  // heap-tracker variable registrations
  kHeapFrees,          // heap-tracker deregistrations
  kMatchSamples,       // running M_l (local sampled accesses)
  kMismatchSamples,    // running M_r (remote sampled accesses)
  kInstructions,       // instructions retired (simrt runtime)
  kEventsDropped,      // telemetry events lost to a full ring
  kLatencyCycles,      // summed sampled access latency (all memory samples)
  kRemoteLatencyCycles,  // summed sampled latency of remote (M_r) accesses
};
inline constexpr std::size_t kTelemetryCounterCount = 13;

/// Stable kebab-case key, used verbatim in the JSONL schema (docs/api.md).
std::string_view to_string(TelemetryCounter c) noexcept;

enum class TelemetryEventKind : std::uint8_t {
  kMechanismUnavailable,  // an availability probe failed
  kMechanismFallback,     // a substitute mechanism was selected
  kPeriodRetune,          // the watchdog retuned the sampling period
  kThreadStart,           // the runtime spawned a simulated thread
  kThreadFinish,          // a simulated thread ran to completion
  kIngestDegraded,        // the ingestion service degraded (src/ingest/)
};
inline constexpr std::size_t kTelemetryEventKindCount = 6;

/// Stable kebab-case name, used verbatim in the JSONL schema.
std::string_view to_string(TelemetryEventKind k) noexcept;

/// One discrete occurrence on the measurement path. POD on purpose: events
/// travel through a lock-free ring, so the detail string is a bounded
/// inline buffer, not a heap allocation.
struct TelemetryEvent {
  TelemetryEventKind kind = TelemetryEventKind::kThreadStart;
  std::uint32_t tid = 0;
  std::uint64_t time = 0;   // virtual cycles when published
  std::uint64_t value = 0;  // kind-specific (new period, mechanism id, ...)
  char detail[56] = {};     // NUL-terminated, truncated human context

  std::string_view detail_view() const noexcept { return detail; }
  void set_detail(std::string_view text) noexcept {
    const std::size_t n = text.size() < sizeof(detail) - 1
                              ? text.size()
                              : sizeof(detail) - 1;
    std::memcpy(detail, text.data(), n);
    detail[n] = '\0';
  }
};

/// Which bounded per-ring hot table a publish lands in.
enum class HotTableKind : std::uint8_t {
  kPages,      // keyed by page id, per home domain
  kVariables,  // keyed by variable id, per home domain
  kPaths,      // keyed by CCT access-leaf node id (per thread, domain 0)
};
inline constexpr std::size_t kHotTableKindCount = 3;

/// Slots per hot table per ring: the Space-Saving capacity. When a table
/// is full, a new key evicts the current minimum-count slot and inherits
/// min+1 — the classic bounded top-K guarantee (the true top keys are
/// retained once their counts exceed the noise floor).
inline constexpr std::size_t kHotSlotsPerTable = 16;
/// Rows kept per domain when a snapshot folds the hot tables.
inline constexpr std::size_t kHotTopK = 8;
/// Label bytes kept per hot slot (truncated, NUL-terminated).
inline constexpr std::size_t kHotLabelBytes = 48;

/// One folded hot-table row inside a snapshot (plain values, no atomics).
struct HotCounter {
  std::uint64_t key = 0;       // page id / variable id / CCT node id
  std::uint32_t domain = 0;    // home domain (pages, variables); 0 for paths
  std::uint64_t count = 0;     // sampled touches attributed to the key
  std::uint64_t mismatch = 0;  // remote (M_r) subset of count
  std::string label;           // variable name / rendered call path

  friend bool operator==(const HotCounter& a, const HotCounter& b) {
    return a.key == b.key && a.domain == b.domain && a.count == b.count &&
           a.mismatch == b.mismatch && a.label == b.label;
  }
};

/// One thread's telemetry: a counter block plus a bounded event queue.
class TelemetryRing {
 public:
  /// `event_capacity` is rounded up to a power of two (minimum 8).
  TelemetryRing(std::uint32_t tid, std::uint32_t domain_count,
                std::size_t event_capacity);

  std::uint32_t tid() const noexcept { return tid_; }
  std::uint32_t domain_count() const noexcept {
    return static_cast<std::uint32_t>(domain_match_.size());
  }
  std::size_t event_capacity() const noexcept { return slots_.size(); }

  // --- producer side (the owning thread) ----------------------------
  void add(TelemetryCounter c, std::uint64_t delta = 1) noexcept {
    counters_[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }
  /// Running per-domain M_l/M_r: one sampled access homed on `domain`.
  void add_domain_sample(std::uint32_t domain, bool mismatch) noexcept {
    if (domain >= domain_match_.size()) return;
    auto& column = mismatch ? domain_mismatch_ : domain_match_;
    column[domain].fetch_add(1, std::memory_order_relaxed);
  }
  /// Enqueues an event; on a full ring the event is dropped (newest-loses)
  /// and kEventsDropped is incremented. Returns false on drop.
  bool publish(const TelemetryEvent& event) noexcept;
  /// One sampled touch of `key` (page / variable / path leaf) homed on
  /// `domain`. Bounded Space-Saving accounting; `label` is copied only
  /// when the key first claims a slot.
  void add_hot(HotTableKind table, std::uint64_t key, std::uint32_t domain,
               bool mismatch, std::string_view label = {}) noexcept;

  // --- consumer side (the snapshot aggregator) ----------------------
  std::uint64_t counter(TelemetryCounter c) const noexcept {
    return counters_[static_cast<std::size_t>(c)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t domain_match(std::uint32_t domain) const noexcept {
    return domain < domain_match_.size()
               ? domain_match_[domain].load(std::memory_order_relaxed)
               : 0;
  }
  std::uint64_t domain_mismatch(std::uint32_t domain) const noexcept {
    return domain < domain_mismatch_.size()
               ? domain_mismatch_[domain].load(std::memory_order_relaxed)
               : 0;
  }
  /// Drains every queued event into `out` (appending, oldest first).
  /// Single consumer only.
  void drain(std::vector<TelemetryEvent>& out);
  /// Appends every live hot-table slot to `out` (unordered; callers sort).
  void collect_hot(HotTableKind table, std::vector<HotCounter>& out) const;

 private:
  /// One bounded hot-table slot. Every field is a relaxed atomic so the
  /// single producer and the snapshot consumer never race; `used` is the
  /// liveness guard (released last on claim, cleared first on eviction).
  struct HotSlot {
    std::atomic<std::uint64_t> key{0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> mismatch{0};
    std::atomic<std::uint32_t> domain{0};
    std::atomic<std::uint32_t> used{0};
    std::array<std::atomic<std::uint64_t>, kHotLabelBytes / 8> label{};
  };
  using HotTable = std::array<HotSlot, kHotSlotsPerTable>;

  static void store_label(HotSlot& slot, std::string_view label) noexcept;

  std::uint32_t tid_;
  std::array<std::atomic<std::uint64_t>, kTelemetryCounterCount> counters_{};
  std::vector<std::atomic<std::uint64_t>> domain_match_;
  std::vector<std::atomic<std::uint64_t>> domain_mismatch_;
  std::array<HotTable, kHotTableKindCount> hot_{};
  std::vector<TelemetryEvent> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next write position
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next read position
};

/// One thread's folded state inside a snapshot (plain values, no atomics).
struct ThreadTelemetry {
  std::uint32_t tid = 0;
  std::array<std::uint64_t, kTelemetryCounterCount> counters{};
  std::vector<std::uint64_t> domain_match;
  std::vector<std::uint64_t> domain_mismatch;
  /// This thread's hottest sampled call paths (count desc, key asc,
  /// at most kHotTopK).
  std::vector<HotCounter> hot_paths;

  std::uint64_t counter(TelemetryCounter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
};

/// The fold of every ring at one instant: cumulative totals, per-thread
/// rows (ascending tid), and the events drained since the previous
/// snapshot, sorted by (time, tid) for deterministic rendering.
struct TelemetrySnapshot {
  std::uint64_t sequence = 0;  // 1-based snapshot number
  std::uint64_t time = 0;      // virtual cycles, supplied by the caller
  std::array<std::uint64_t, kTelemetryCounterCount> totals{};
  std::vector<std::uint64_t> domain_match;
  std::vector<std::uint64_t> domain_mismatch;
  std::vector<ThreadTelemetry> threads;
  std::vector<TelemetryEvent> events;
  /// Hottest pages / variables folded across every ring, grouped by
  /// (key, home domain) and trimmed to kHotTopK rows per domain, sorted
  /// (domain asc, count desc, mismatch desc, key asc).
  std::vector<HotCounter> hot_pages;
  std::vector<HotCounter> hot_vars;

  std::uint64_t total(TelemetryCounter c) const noexcept {
    return totals[static_cast<std::size_t>(c)];
  }
  /// Fraction of would-be samples lost in flight.
  double drop_fraction() const noexcept {
    const std::uint64_t kept = total(TelemetryCounter::kSamples);
    const std::uint64_t lost = total(TelemetryCounter::kDroppedSamples);
    return kept + lost == 0
               ? 0.0
               : static_cast<double>(lost) / static_cast<double>(kept + lost);
  }
};

struct TelemetryConfig {
  /// Width of the per-domain M_l/M_r columns in rings created later.
  std::uint32_t domain_count = 1;
  /// Event-queue capacity per ring (rounded up to a power of two).
  std::size_t event_capacity = 256;
};

/// Owns one TelemetryRing per publishing thread and folds them into
/// snapshots. Publishing through ring() is lock-free after a thread's
/// first contact; snapshot() is single-consumer.
class TelemetryHub {
 public:
  /// Thread ids at or above this publish into the shared overflow ring.
  static constexpr std::uint32_t kMaxThreads = 512;

  explicit TelemetryHub(TelemetryConfig config = {});
  ~TelemetryHub();
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Adjusts the domain width used for rings created AFTER this call
  /// (existing rings keep their width). The profiler calls this before
  /// any samples flow.
  void set_domain_count(std::uint32_t domains) noexcept {
    config_.domain_count = domains == 0 ? 1 : domains;
  }
  std::uint32_t domain_count() const noexcept { return config_.domain_count; }

  /// The calling thread's ring, created on first contact.
  TelemetryRing& ring(std::uint32_t tid);
  /// Number of rings created so far.
  std::size_t ring_count() const noexcept;

  /// Folds every ring: cumulative counters plus the events queued since
  /// the last snapshot. Deterministic: threads ascend by tid, events sort
  /// by (time, tid, kind). Call from one thread at a time.
  TelemetrySnapshot snapshot(std::uint64_t time = 0);

 private:
  TelemetryConfig config_;
  std::array<std::atomic<TelemetryRing*>, kMaxThreads> rings_{};
  std::mutex growth_;
  std::uint64_t sequence_ = 0;
};

}  // namespace numaprof::support
