#include "support/telemetry.hpp"

#include <algorithm>

namespace numaprof::support {

std::string_view to_string(TelemetryCounter c) noexcept {
  switch (c) {
    case TelemetryCounter::kSamples: return "samples";
    case TelemetryCounter::kMemorySamples: return "memory-samples";
    case TelemetryCounter::kDroppedSamples: return "dropped-samples";
    case TelemetryCounter::kCorruptedSamples: return "corrupted-samples";
    case TelemetryCounter::kFirstTouchTraps: return "first-touch-traps";
    case TelemetryCounter::kHeapRegistrations: return "heap-registrations";
    case TelemetryCounter::kHeapFrees: return "heap-frees";
    case TelemetryCounter::kMatchSamples: return "match-samples";
    case TelemetryCounter::kMismatchSamples: return "mismatch-samples";
    case TelemetryCounter::kInstructions: return "instructions";
    case TelemetryCounter::kEventsDropped: return "events-dropped";
    case TelemetryCounter::kLatencyCycles: return "latency-cycles";
    case TelemetryCounter::kRemoteLatencyCycles:
      return "remote-latency-cycles";
  }
  return "unknown";
}

std::string_view to_string(TelemetryEventKind k) noexcept {
  switch (k) {
    case TelemetryEventKind::kMechanismUnavailable:
      return "mechanism-unavailable";
    case TelemetryEventKind::kMechanismFallback: return "mechanism-fallback";
    case TelemetryEventKind::kPeriodRetune: return "period-retune";
    case TelemetryEventKind::kThreadStart: return "thread-start";
    case TelemetryEventKind::kThreadFinish: return "thread-finish";
    case TelemetryEventKind::kIngestDegraded: return "ingest-degraded";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

/// Groups raw hot rows by (key, domain), sums counts, then keeps the
/// kHotTopK hottest rows per domain, sorted (domain asc, count desc,
/// mismatch desc, key asc) for deterministic rendering.
std::vector<HotCounter> fold_hot(std::vector<HotCounter> raw) {
  std::sort(raw.begin(), raw.end(),
            [](const HotCounter& a, const HotCounter& b) {
              if (a.domain != b.domain) return a.domain < b.domain;
              return a.key < b.key;
            });
  std::vector<HotCounter> merged;
  for (HotCounter& row : raw) {
    if (!merged.empty() && merged.back().domain == row.domain &&
        merged.back().key == row.key) {
      merged.back().count += row.count;
      merged.back().mismatch += row.mismatch;
      if (merged.back().label.empty()) {
        merged.back().label = std::move(row.label);
      }
    } else {
      merged.push_back(std::move(row));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const HotCounter& a, const HotCounter& b) {
              if (a.domain != b.domain) return a.domain < b.domain;
              if (a.count != b.count) return a.count > b.count;
              if (a.mismatch != b.mismatch) return a.mismatch > b.mismatch;
              return a.key < b.key;
            });
  std::vector<HotCounter> out;
  std::uint32_t current_domain = 0;
  std::size_t in_domain = 0;
  for (HotCounter& row : merged) {
    if (out.empty() || row.domain != current_domain) {
      current_domain = row.domain;
      in_domain = 0;
    }
    if (in_domain < kHotTopK) {
      out.push_back(std::move(row));
      ++in_domain;
    }
  }
  return out;
}

}  // namespace

TelemetryRing::TelemetryRing(std::uint32_t tid, std::uint32_t domain_count,
                             std::size_t event_capacity)
    : tid_(tid),
      domain_match_(domain_count == 0 ? 1 : domain_count),
      domain_mismatch_(domain_count == 0 ? 1 : domain_count),
      slots_(round_up_pow2(event_capacity)),
      mask_(slots_.size() - 1) {
  for (auto& c : domain_match_) c.store(0, std::memory_order_relaxed);
  for (auto& c : domain_mismatch_) c.store(0, std::memory_order_relaxed);
}

bool TelemetryRing::publish(const TelemetryEvent& event) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    // Newest-loses: dropping here keeps already-queued history intact and
    // never blocks the measurement path.
    add(TelemetryCounter::kEventsDropped);
    return false;
  }
  slots_[head & mask_] = event;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void TelemetryRing::store_label(HotSlot& slot,
                                std::string_view label) noexcept {
  char bytes[kHotLabelBytes] = {};
  const std::size_t n =
      label.size() < kHotLabelBytes - 1 ? label.size() : kHotLabelBytes - 1;
  std::memcpy(bytes, label.data(), n);
  for (std::size_t w = 0; w < slot.label.size(); ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes + w * 8, 8);
    slot.label[w].store(word, std::memory_order_relaxed);
  }
}

void TelemetryRing::add_hot(HotTableKind table, std::uint64_t key,
                            std::uint32_t domain, bool mismatch,
                            std::string_view label) noexcept {
  HotTable& slots = hot_[static_cast<std::size_t>(table)];
  // Existing (key, domain) entry: bump in place.
  for (HotSlot& s : slots) {
    if (s.used.load(std::memory_order_relaxed) != 0 &&
        s.key.load(std::memory_order_relaxed) == key &&
        s.domain.load(std::memory_order_relaxed) == domain) {
      s.count.fetch_add(1, std::memory_order_relaxed);
      if (mismatch) s.mismatch.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // Free slot: claim it (label and identity first, `used` released last so
  // the consumer never reads a half-written slot as live).
  for (HotSlot& s : slots) {
    if (s.used.load(std::memory_order_relaxed) != 0) continue;
    s.key.store(key, std::memory_order_relaxed);
    s.domain.store(domain, std::memory_order_relaxed);
    s.count.store(1, std::memory_order_relaxed);
    s.mismatch.store(mismatch ? 1 : 0, std::memory_order_relaxed);
    store_label(s, label);
    s.used.store(1, std::memory_order_release);
    return;
  }
  // Full: Space-Saving replacement of the minimum-count slot. The new key
  // inherits min+1 so a genuinely hot key overtakes the noise floor.
  HotSlot* victim = &slots[0];
  std::uint64_t min_count = victim->count.load(std::memory_order_relaxed);
  for (HotSlot& s : slots) {
    const std::uint64_t c = s.count.load(std::memory_order_relaxed);
    if (c < min_count) {
      min_count = c;
      victim = &s;
    }
  }
  victim->used.store(0, std::memory_order_release);
  victim->key.store(key, std::memory_order_relaxed);
  victim->domain.store(domain, std::memory_order_relaxed);
  victim->count.store(min_count + 1, std::memory_order_relaxed);
  victim->mismatch.store(mismatch ? 1 : 0, std::memory_order_relaxed);
  store_label(*victim, label);
  victim->used.store(1, std::memory_order_release);
}

void TelemetryRing::collect_hot(HotTableKind table,
                                std::vector<HotCounter>& out) const {
  const HotTable& slots = hot_[static_cast<std::size_t>(table)];
  for (const HotSlot& s : slots) {
    if (s.used.load(std::memory_order_acquire) == 0) continue;
    HotCounter row;
    row.key = s.key.load(std::memory_order_relaxed);
    row.domain = s.domain.load(std::memory_order_relaxed);
    row.count = s.count.load(std::memory_order_relaxed);
    row.mismatch = s.mismatch.load(std::memory_order_relaxed);
    char bytes[kHotLabelBytes];
    for (std::size_t w = 0; w < s.label.size(); ++w) {
      const std::uint64_t word = s.label[w].load(std::memory_order_relaxed);
      std::memcpy(bytes + w * 8, &word, 8);
    }
    bytes[kHotLabelBytes - 1] = '\0';
    row.label = bytes;
    out.push_back(std::move(row));
  }
}

void TelemetryRing::drain(std::vector<TelemetryEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  for (; tail != head; ++tail) {
    out.push_back(slots_[tail & mask_]);
  }
  tail_.store(tail, std::memory_order_release);
}

TelemetryHub::TelemetryHub(TelemetryConfig config) : config_(config) {
  if (config_.domain_count == 0) config_.domain_count = 1;
}

TelemetryHub::~TelemetryHub() {
  for (auto& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

TelemetryRing& TelemetryHub::ring(std::uint32_t tid) {
  // Out-of-range publishers share the last slot rather than being lost:
  // an overflow ring mislabels the thread but keeps the totals honest.
  const std::uint32_t slot_index = tid < kMaxThreads ? tid : kMaxThreads - 1;
  std::atomic<TelemetryRing*>& slot = rings_[slot_index];
  if (TelemetryRing* existing = slot.load(std::memory_order_acquire)) {
    return *existing;
  }
  std::lock_guard<std::mutex> lock(growth_);
  if (TelemetryRing* existing = slot.load(std::memory_order_acquire)) {
    return *existing;
  }
  auto* created = new TelemetryRing(slot_index, config_.domain_count,
                                    config_.event_capacity);
  slot.store(created, std::memory_order_release);
  return *created;
}

std::size_t TelemetryHub::ring_count() const noexcept {
  std::size_t count = 0;
  for (const auto& slot : rings_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

TelemetrySnapshot TelemetryHub::snapshot(std::uint64_t time) {
  TelemetrySnapshot snap;
  snap.sequence = ++sequence_;
  snap.time = time;
  snap.domain_match.assign(config_.domain_count, 0);
  snap.domain_mismatch.assign(config_.domain_count, 0);
  std::vector<HotCounter> raw_pages;
  std::vector<HotCounter> raw_vars;

  for (std::uint32_t tid = 0; tid < kMaxThreads; ++tid) {
    TelemetryRing* ring = rings_[tid].load(std::memory_order_acquire);
    if (ring == nullptr) continue;

    ThreadTelemetry row;
    row.tid = ring->tid();
    for (std::size_t c = 0; c < kTelemetryCounterCount; ++c) {
      row.counters[c] = ring->counter(static_cast<TelemetryCounter>(c));
      snap.totals[c] += row.counters[c];
    }
    const std::uint32_t domains = ring->domain_count();
    row.domain_match.resize(domains);
    row.domain_mismatch.resize(domains);
    for (std::uint32_t d = 0; d < domains; ++d) {
      row.domain_match[d] = ring->domain_match(d);
      row.domain_mismatch[d] = ring->domain_mismatch(d);
      if (d < snap.domain_match.size()) {
        snap.domain_match[d] += row.domain_match[d];
        snap.domain_mismatch[d] += row.domain_mismatch[d];
      }
    }
    ring->collect_hot(HotTableKind::kPages, raw_pages);
    ring->collect_hot(HotTableKind::kVariables, raw_vars);
    ring->collect_hot(HotTableKind::kPaths, row.hot_paths);
    std::sort(row.hot_paths.begin(), row.hot_paths.end(),
              [](const HotCounter& a, const HotCounter& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.key < b.key;
              });
    if (row.hot_paths.size() > kHotTopK) row.hot_paths.resize(kHotTopK);
    snap.threads.push_back(std::move(row));
    ring->drain(snap.events);
  }
  snap.hot_pages = fold_hot(std::move(raw_pages));
  snap.hot_vars = fold_hot(std::move(raw_vars));

  // Per-ring drains are FIFO; the cross-ring order is made deterministic
  // by (time, tid, kind) — stable so same-key events keep queue order.
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TelemetryEvent& a, const TelemetryEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  return snap;
}

}  // namespace numaprof::support
