#include "support/telemetry.hpp"

#include <algorithm>

namespace numaprof::support {

std::string_view to_string(TelemetryCounter c) noexcept {
  switch (c) {
    case TelemetryCounter::kSamples: return "samples";
    case TelemetryCounter::kMemorySamples: return "memory-samples";
    case TelemetryCounter::kDroppedSamples: return "dropped-samples";
    case TelemetryCounter::kCorruptedSamples: return "corrupted-samples";
    case TelemetryCounter::kFirstTouchTraps: return "first-touch-traps";
    case TelemetryCounter::kHeapRegistrations: return "heap-registrations";
    case TelemetryCounter::kHeapFrees: return "heap-frees";
    case TelemetryCounter::kMatchSamples: return "match-samples";
    case TelemetryCounter::kMismatchSamples: return "mismatch-samples";
    case TelemetryCounter::kInstructions: return "instructions";
    case TelemetryCounter::kEventsDropped: return "events-dropped";
  }
  return "unknown";
}

std::string_view to_string(TelemetryEventKind k) noexcept {
  switch (k) {
    case TelemetryEventKind::kMechanismUnavailable:
      return "mechanism-unavailable";
    case TelemetryEventKind::kMechanismFallback: return "mechanism-fallback";
    case TelemetryEventKind::kPeriodRetune: return "period-retune";
    case TelemetryEventKind::kThreadStart: return "thread-start";
    case TelemetryEventKind::kThreadFinish: return "thread-finish";
    case TelemetryEventKind::kIngestDegraded: return "ingest-degraded";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TelemetryRing::TelemetryRing(std::uint32_t tid, std::uint32_t domain_count,
                             std::size_t event_capacity)
    : tid_(tid),
      domain_match_(domain_count == 0 ? 1 : domain_count),
      domain_mismatch_(domain_count == 0 ? 1 : domain_count),
      slots_(round_up_pow2(event_capacity)),
      mask_(slots_.size() - 1) {
  for (auto& c : domain_match_) c.store(0, std::memory_order_relaxed);
  for (auto& c : domain_mismatch_) c.store(0, std::memory_order_relaxed);
}

bool TelemetryRing::publish(const TelemetryEvent& event) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    // Newest-loses: dropping here keeps already-queued history intact and
    // never blocks the measurement path.
    add(TelemetryCounter::kEventsDropped);
    return false;
  }
  slots_[head & mask_] = event;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void TelemetryRing::drain(std::vector<TelemetryEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  for (; tail != head; ++tail) {
    out.push_back(slots_[tail & mask_]);
  }
  tail_.store(tail, std::memory_order_release);
}

TelemetryHub::TelemetryHub(TelemetryConfig config) : config_(config) {
  if (config_.domain_count == 0) config_.domain_count = 1;
}

TelemetryHub::~TelemetryHub() {
  for (auto& slot : rings_) {
    delete slot.load(std::memory_order_acquire);
  }
}

TelemetryRing& TelemetryHub::ring(std::uint32_t tid) {
  // Out-of-range publishers share the last slot rather than being lost:
  // an overflow ring mislabels the thread but keeps the totals honest.
  const std::uint32_t slot_index = tid < kMaxThreads ? tid : kMaxThreads - 1;
  std::atomic<TelemetryRing*>& slot = rings_[slot_index];
  if (TelemetryRing* existing = slot.load(std::memory_order_acquire)) {
    return *existing;
  }
  std::lock_guard<std::mutex> lock(growth_);
  if (TelemetryRing* existing = slot.load(std::memory_order_acquire)) {
    return *existing;
  }
  auto* created = new TelemetryRing(slot_index, config_.domain_count,
                                    config_.event_capacity);
  slot.store(created, std::memory_order_release);
  return *created;
}

std::size_t TelemetryHub::ring_count() const noexcept {
  std::size_t count = 0;
  for (const auto& slot : rings_) {
    if (slot.load(std::memory_order_acquire) != nullptr) ++count;
  }
  return count;
}

TelemetrySnapshot TelemetryHub::snapshot(std::uint64_t time) {
  TelemetrySnapshot snap;
  snap.sequence = ++sequence_;
  snap.time = time;
  snap.domain_match.assign(config_.domain_count, 0);
  snap.domain_mismatch.assign(config_.domain_count, 0);

  for (std::uint32_t tid = 0; tid < kMaxThreads; ++tid) {
    TelemetryRing* ring = rings_[tid].load(std::memory_order_acquire);
    if (ring == nullptr) continue;

    ThreadTelemetry row;
    row.tid = ring->tid();
    for (std::size_t c = 0; c < kTelemetryCounterCount; ++c) {
      row.counters[c] = ring->counter(static_cast<TelemetryCounter>(c));
      snap.totals[c] += row.counters[c];
    }
    const std::uint32_t domains = ring->domain_count();
    row.domain_match.resize(domains);
    row.domain_mismatch.resize(domains);
    for (std::uint32_t d = 0; d < domains; ++d) {
      row.domain_match[d] = ring->domain_match(d);
      row.domain_mismatch[d] = ring->domain_mismatch(d);
      if (d < snap.domain_match.size()) {
        snap.domain_match[d] += row.domain_match[d];
        snap.domain_mismatch[d] += row.domain_mismatch[d];
      }
    }
    snap.threads.push_back(std::move(row));
    ring->drain(snap.events);
  }

  // Per-ring drains are FIFO; the cross-ring order is made deterministic
  // by (time, tid, kind) — stable so same-key events keep queue order.
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TelemetryEvent& a, const TelemetryEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  return snap;
}

}  // namespace numaprof::support
