// Fixed-size work-stealing thread pool plus chunked parallel_for /
// parallel_reduce, built for the offline analysis pipeline (§7.2): the
// analyzer merges one measurement shard per thread, so the natural unit of
// parallelism is "one task per shard" or "one chunk of metric rows".
//
// Determinism contract: the pool decides WHICH thread runs an index, never
// the ORDER results are combined in. for_each_index runs each index exactly
// once with no ordering guarantee, so bodies must only write state owned by
// their index; parallel_reduce combines chunk accumulators serially in
// ascending chunk order, so for a fixed grain the reduction is reproducible
// run-to-run and independent of the worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace numaprof::support {

/// Default parallelism: NUMAPROF_JOBS when set (clamped to [1, 256]),
/// otherwise std::thread::hardware_concurrency() (at least 1).
unsigned default_jobs() noexcept;

class ThreadPool {
 public:
  /// A pool with `jobs` participants total: the calling thread plus
  /// jobs - 1 workers. jobs <= 1 spawns no threads and runs inline.
  explicit ThreadPool(unsigned jobs = default_jobs());
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants (workers + the calling thread).
  unsigned jobs() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(0) ... body(count - 1) across all participants and returns
  /// when every index has completed. The index space is pre-partitioned
  /// into one contiguous shard per participant; a participant that drains
  /// its own shard steals indices from the others, so uneven per-index
  /// costs do not serialize the batch. If bodies throw, the batch still
  /// completes and the exception thrown by the SMALLEST index is rethrown
  /// (matching what a serial in-order loop would surface first).
  /// Nested or concurrent calls fall back to an inline serial loop.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& body);

 private:
  struct Shard {
    alignas(64) std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  struct Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::vector<Shard> shards;
    std::atomic<std::size_t> done{0};
    std::size_t error_index = ~std::size_t{0};  // guarded by pool mutex
    std::exception_ptr error;                   // guarded by pool mutex
    unsigned active_workers = 0;                // guarded by pool mutex
  };

  void worker_loop();
  void work_on(Batch& batch, unsigned participant);
  bool claim(Batch& batch, unsigned participant, std::size_t& index) noexcept;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Batch* batch_ = nullptr;   // guarded by mutex_
  std::uint64_t epoch_ = 0;  // guarded by mutex_
  bool stop_ = false;        // guarded by mutex_
  std::atomic<bool> busy_{false};
  std::vector<std::thread> workers_;
};

/// Chunked parallel for: splits [0, count) into chunks of at most `grain`
/// indices and runs chunk(begin, end) for each. Serial (in ascending chunk
/// order) when `pool` is null, has one participant, or there is only one
/// chunk; otherwise chunks run concurrently in unspecified order.
void parallel_for(ThreadPool* pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& chunk);

/// Chunked parallel reduce. Each chunk folds into its own accumulator
/// (initialized from `identity`) via chunk(acc, begin, end); the chunk
/// accumulators are then combined SERIALLY in ascending chunk order via
/// combine(result, std::move(acc)). For a fixed grain the chunk boundaries
/// — and therefore the combine order — do not depend on the pool size, so
/// the result is identical for any worker count whenever the fold is
/// deterministic per chunk.
template <typename Acc, typename ChunkFn, typename CombineFn>
Acc parallel_reduce(ThreadPool* pool, std::size_t count, std::size_t grain,
                    Acc identity, ChunkFn&& chunk, CombineFn&& combine) {
  if (count == 0) return identity;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  std::vector<Acc> partial(chunks, identity);
  parallel_for(pool, count, grain,
               [&](std::size_t begin, std::size_t end) {
                 chunk(partial[begin / grain], begin, end);
               });
  Acc result = std::move(identity);
  for (Acc& p : partial) combine(result, std::move(p));
  return result;
}

}  // namespace numaprof::support
