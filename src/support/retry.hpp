// Deterministic retry with exponential backoff and a deadline budget.
//
// The ingestion client (src/ingest/client.hpp) must survive dropped
// frames, corrupted frames, busy servers, and disconnects without ever
// retrying so aggressively that a struggling daemon is made worse — and
// every run must be reproducible bit-for-bit. Delays are therefore
// expressed in abstract ticks (not wall-clock time) and jittered through
// the seedable support::Rng, so a test that injects the same faults with
// the same seed sees the same retry schedule, the same give-up point, and
// the same degradation record.
#pragma once

#include <cstdint>
#include <optional>

#include "support/rng.hpp"

namespace numaprof::support {

/// Tuning for one class of retried operation.
struct RetryPolicy {
  /// Attempts per operation before giving up on it (>= 1). The first try
  /// counts; max_attempts = 4 means one try plus three retries.
  unsigned max_attempts = 5;
  /// Backoff before retry n (1-based) is jittered from
  /// min(base_delay * multiplier^(n-1), max_delay) ticks.
  std::uint64_t base_delay = 16;
  std::uint64_t max_delay = 4096;
  double multiplier = 2.0;
  /// Total tick budget across ALL operations of a session; once backoff
  /// has consumed this much, every further retry is refused and the
  /// caller must degrade. 0 = unlimited.
  std::uint64_t deadline = 1u << 16;
};

/// The mutable side of a policy: where one session is in its budget.
///
/// Usage per operation:
///   schedule.begin_operation();
///   while (!try_it()) {
///     const auto delay = schedule.next_delay();
///     if (!delay) { degrade(); break; }   // attempts/deadline exhausted
///     wait(*delay);                       // simulated: just accounting
///   }
class RetrySchedule {
 public:
  RetrySchedule(RetryPolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  /// Resets the per-operation attempt counter (the deadline keeps
  /// accruing across operations — a session-wide budget).
  void begin_operation() noexcept { attempt_ = 0; }

  /// The jittered backoff before the next retry, charged against the
  /// deadline; nullopt when attempts or deadline are exhausted (the
  /// caller must give up and degrade). Deterministic given the seed.
  std::optional<std::uint64_t> next_delay() {
    if (attempt_ + 1 >= policy_.max_attempts) return std::nullopt;
    ++attempt_;
    double cap = static_cast<double>(policy_.base_delay);
    for (unsigned i = 1; i < attempt_; ++i) cap *= policy_.multiplier;
    const double max = static_cast<double>(policy_.max_delay);
    if (cap > max) cap = max;
    // Full jitter over [cap/2, cap]: desynchronizes a fleet of clients
    // hammering one daemon while keeping the delay within 2x of nominal.
    const std::uint64_t delay = static_cast<std::uint64_t>(
        cap * (0.5 + 0.5 * rng_.next_double()));
    if (policy_.deadline != 0 && spent_ + delay > policy_.deadline) {
      spent_ = policy_.deadline;  // budget is gone either way
      return std::nullopt;
    }
    spent_ += delay;
    return delay;
  }

  /// True once the session-wide deadline is exhausted: no operation may
  /// retry again, only degrade.
  bool deadline_exhausted() const noexcept {
    return policy_.deadline != 0 && spent_ >= policy_.deadline;
  }

  unsigned attempts() const noexcept { return attempt_; }
  std::uint64_t spent() const noexcept { return spent_; }
  const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  unsigned attempt_ = 0;       // retries consumed by the current operation
  std::uint64_t spent_ = 0;    // ticks charged against the deadline
};

}  // namespace numaprof::support
