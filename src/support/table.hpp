// Text-table and CSV rendering for the viewer and benchmark harnesses.
//
// The paper's hpcviewer is a GUI; this reproduction renders the same three
// views (code-centric, data-centric, address-centric) as aligned text tables
// and machine-readable CSV. Table collects rows of strings and renders with
// column alignment; numeric helpers format values the way the paper reports
// them (percentages, cycles-per-instruction with 3 decimals, etc).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace numaprof::support {

/// Fixed-precision formatting helpers shared across views and benches.
std::string format_fixed(double value, int decimals);
std::string format_percent(double fraction, int decimals = 1);
std::string format_count(std::uint64_t value);  // thousands separators

/// An aligned monospace table: header row plus data rows, rendered with
/// per-column width computed from content. Right-aligns cells that parse as
/// numbers, left-aligns everything else, matching typical profiler output.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Raw cells, for renderers with their own layout (e.g. the HTML report
  /// re-renders viewer tables as <table> markup instead of monospace text).
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders with a separator line under the header.
  std::string to_text() const;
  /// RFC-4180-ish CSV (cells containing comma/quote/newline get quoted).
  std::string to_csv() const;

  void write_text(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// True when the cell looks numeric (used for alignment decisions).
bool looks_numeric(std::string_view cell) noexcept;

}  // namespace numaprof::support
