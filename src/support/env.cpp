#include "support/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace numaprof::support {

std::optional<std::string> env_string(std::string_view name) {
  const std::string key(name);
  const char* value = std::getenv(key.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::optional<std::int64_t> env_int(std::string_view name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || (end != nullptr && *end != '\0')) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(parsed);
}

std::int64_t env_int_or(std::string_view name, std::int64_t fallback,
                        std::int64_t min) {
  return std::max(min, env_int(name).value_or(fallback));
}

}  // namespace numaprof::support
