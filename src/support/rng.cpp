#include "support/rng.hpp"

namespace numaprof::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: the seeding generator recommended for xoshiro state setup.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire reduction: multiply-high maps next() uniformly enough onto
  // [0, bound) for simulation purposes (bias < 2^-64 * bound).
  const unsigned __int128 product =
      static_cast<unsigned __int128>(next()) * bound;
  return static_cast<std::uint64_t>(product >> 64);
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  // 53 high bits scaled into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace numaprof::support
