#include "support/error.hpp"

namespace numaprof {

std::string_view to_string(ErrorKind k) noexcept {
  switch (k) {
    case ErrorKind::kProfile: return "profile";
    case ErrorKind::kFaultSpec: return "fault-spec";
    case ErrorKind::kLint: return "lint";
    case ErrorKind::kTelemetry: return "telemetry";
    case ErrorKind::kUsage: return "usage";
    case ErrorKind::kExport: return "export";
    case ErrorKind::kIngest: return "ingest";
    case ErrorKind::kMonitor: return "monitor";
  }
  return "unknown";
}

std::string format_error(const Error& error) {
  return "[" + std::string(to_string(error.kind())) + "] " + error.what();
}

std::string format_error(const std::exception& error) {
  if (const auto* typed = dynamic_cast<const Error*>(&error)) {
    return format_error(*typed);
  }
  return error.what();
}

}  // namespace numaprof
