#include "support/cliflags.hpp"

#include <algorithm>
#include <sstream>

namespace numaprof::support {

void CliParser::add_flag(std::string name, bool takes_value, std::string help,
                         std::string placeholder) {
  Flag flag;
  flag.name = std::move(name);
  flag.takes_value = takes_value;
  flag.help = std::move(help);
  flag.placeholder = std::move(placeholder);
  flags_.push_back(std::move(flag));
}

void CliParser::add_optional_value_flag(std::string name, std::string help,
                                        std::string placeholder) {
  Flag flag;
  flag.name = std::move(name);
  flag.takes_value = true;
  flag.optional_value = true;
  flag.help = std::move(help);
  flag.placeholder = std::move(placeholder);
  flags_.push_back(std::move(flag));
}

CliParser::Flag* CliParser::find(std::string_view name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

const CliParser::Flag* CliParser::find(std::string_view name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void CliParser::usage_error(const std::string& message) const {
  throw Error(ErrorKind::kUsage, {}, program_, 0,
              message + "\n" + usage());
}

void CliParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.size() < 2 || arg[0] != '-' || arg[1] != '-') {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg;
    std::optional<std::string> inline_value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    Flag* flag = find(name);
    if (flag == nullptr) usage_error("unknown flag: " + name);
    ++flag->seen_count;
    if (!flag->takes_value) {
      if (inline_value) {
        usage_error(name + " does not take a value");
      }
      continue;
    }
    if (inline_value) {
      flag->seen_values.push_back(std::move(*inline_value));
      continue;
    }
    if (flag->optional_value) continue;  // bare occurrence is complete
    if (i + 1 >= args.size()) {
      usage_error(name + " requires a " + flag->placeholder + " argument");
    }
    flag->seen_values.push_back(args[++i]);
  }
}

bool CliParser::has(std::string_view name) const {
  const Flag* flag = find(name);
  return flag != nullptr && flag->seen_count > 0;
}

std::optional<std::string> CliParser::value(std::string_view name) const {
  const Flag* flag = find(name);
  if (flag == nullptr || flag->seen_values.empty()) return std::nullopt;
  return flag->seen_values.back();
}

std::vector<std::string> CliParser::values(std::string_view name) const {
  const Flag* flag = find(name);
  return flag != nullptr ? flag->seen_values : std::vector<std::string>{};
}

unsigned CliParser::unsigned_value(std::string_view name,
                                   unsigned fallback) const {
  const std::optional<std::string> raw = value(name);
  if (!raw) return fallback;
  try {
    std::size_t consumed = 0;
    const unsigned long parsed = std::stoul(*raw, &consumed);
    if (consumed != raw->size()) throw std::invalid_argument(*raw);
    return static_cast<unsigned>(parsed);
  } catch (const std::exception&) {
    usage_error(std::string(name) + " expects a non-negative integer, got '" +
                *raw + "'");
  }
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags] ...\n  " << summary_ << "\n";
  const auto spelled = [](const Flag& flag) {
    if (!flag.takes_value) return flag.name;
    if (flag.optional_value) return flag.name + "[=" + flag.placeholder + "]";
    return flag.name + " " + flag.placeholder;
  };
  std::size_t width = 0;
  for (const Flag& flag : flags_) {
    width = std::max(width, spelled(flag).size());
  }
  for (const Flag& flag : flags_) {
    const std::string left = spelled(flag);
    os << "  " << left << std::string(width - left.size() + 2, ' ')
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace numaprof::support
