// numaprof::Error — the one exception base for the tool's typed failures.
//
// The public surface used to expose disjoint error types (ProfileError for
// profile I/O, FaultSpecError for fault-plan specs, nothing for lint), so
// every CLI grew its own catch ladder. All typed errors now share this
// base, which carries a machine-checkable kind plus the standard location
// triple (file, field, line); format_error() is the single formatter every
// CLI reports through.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace numaprof {

enum class ErrorKind : std::uint8_t {
  kProfile,    // profile parse/merge/I-O failures (core/profile_io.hpp)
  kFaultSpec,  // malformed NUMAPROF_FAULTS spec (support/faultinject.hpp)
  kLint,       // static-analyzer input failures (lint/numalint.hpp)
  kTelemetry,  // telemetry JSONL trace failures (core/telemetry_stream.hpp)
  kUsage,      // CLI misuse (bad flag values)
  kExport,     // artifact export failures (core/export/export.hpp)
  kIngest,     // ingestion service failures (ingest/frame.hpp, ingest/wal.hpp)
  kMonitor,    // numa_top monitor failures (monitor/script.hpp)
};

/// Number of ErrorKind enumerators (kept for switch-exhaustiveness tests).
inline constexpr int kErrorKindCount = 8;

std::string_view to_string(ErrorKind k) noexcept;

class Error : public std::runtime_error {
 public:
  /// `what_text` is the complete human-readable message; derived types
  /// keep their traditional formats so existing output stays stable.
  /// `file`, `field`, and `line` locate the failure when known (empty /
  /// zero otherwise).
  Error(ErrorKind kind, std::string file, std::string field,
        std::size_t line, const std::string& what_text)
      : std::runtime_error(what_text),
        kind_(kind),
        file_(std::move(file)),
        field_(std::move(field)),
        line_(line) {}

  ErrorKind kind() const noexcept { return kind_; }
  const std::string& file() const noexcept { return file_; }
  const std::string& field() const noexcept { return field_; }
  std::size_t line() const noexcept { return line_; }

 private:
  ErrorKind kind_;
  std::string file_;
  std::string field_;
  std::size_t line_;
};

/// The one CLI formatter: "[<kind>] <what>". Location details are already
/// part of what() by construction, so nothing is duplicated.
std::string format_error(const Error& error);

/// Fallback for exceptions outside the hierarchy; dispatches to the typed
/// formatter when `error` is actually a numaprof::Error.
std::string format_error(const std::exception& error);

}  // namespace numaprof
