// Deterministic pseudo-random number generation for simulator components.
//
// All stochastic choices in the simulator and workloads flow through this
// generator so that every test and benchmark is reproducible bit-for-bit.
// The implementation is xoshiro256** 1.0 (Blackman & Vigna), chosen for its
// speed on the simulator's hot paths and its well-studied statistical
// quality; <random> engines are avoided because their outputs are not
// guaranteed identical across standard library implementations.
#pragma once

#include <cstdint>

namespace numaprof::support {

/// Deterministic 64-bit PRNG (xoshiro256**). Cheap to copy; a copy replays
/// the same stream, which tests use to express "same seed, same behaviour".
class Rng {
 public:
  /// Seeds the four-word state from a single seed via splitmix64, as the
  /// xoshiro authors recommend. Any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next uniformly distributed 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound) using Lemire's multiply-shift reduction.
  /// bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool next_bool(double p) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace numaprof::support
