// Environment-variable configuration helpers.
//
// The paper configures the address-centric bin count "via an environment
// variable" (§5.2); this reproduction keeps the same interface so tool
// options can be set without code changes (e.g. NUMAPROF_BINS=20).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace numaprof::support {

/// Raw lookup; nullopt when unset.
std::optional<std::string> env_string(std::string_view name);

/// Integer lookup; nullopt when unset or unparsable.
std::optional<std::int64_t> env_int(std::string_view name);

/// Integer lookup with default and lower bound (values below `min` clamp).
std::int64_t env_int_or(std::string_view name, std::int64_t fallback,
                        std::int64_t min = 1);

}  // namespace numaprof::support
