#include "support/threadpool.hpp"

#include <algorithm>

#include "support/env.hpp"

namespace numaprof::support {

unsigned default_jobs() noexcept {
  const unsigned hardware =
      std::max(1u, std::thread::hardware_concurrency());
  const std::int64_t jobs = env_int_or("NUMAPROF_JOBS", hardware, 1);
  return static_cast<unsigned>(std::min<std::int64_t>(jobs, 256));
}

ThreadPool::ThreadPool(unsigned jobs) {
  const unsigned workers = jobs > 1 ? jobs - 1 : 0;
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::claim(Batch& batch, unsigned participant,
                       std::size_t& index) noexcept {
  const std::size_t shards = batch.shards.size();
  // Own shard first, then steal round-robin from the others. fetch_add may
  // overshoot `end` on an exhausted shard; that only marks the probe as
  // failed — an index below `end` is claimed exactly once.
  for (std::size_t probe = 0; probe < shards; ++probe) {
    Shard& shard = batch.shards[(participant + probe) % shards];
    const std::size_t i = shard.next.fetch_add(1, std::memory_order_relaxed);
    if (i < shard.end) {
      index = i;
      return true;
    }
  }
  return false;
}

void ThreadPool::work_on(Batch& batch, unsigned participant) {
  std::size_t index;
  while (claim(batch, participant, index)) {
    try {
      (*batch.body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (index < batch.error_index) {
        batch.error_index = index;
        batch.error = std::current_exception();
      }
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.count) {
      // Lock pairs with the waiter's predicate check so the final
      // completion cannot slip between its check and its sleep.
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    unsigned participant = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (epoch_ != seen && batch_ != nullptr);
      });
      if (stop_) return;
      seen = epoch_;
      batch = batch_;
      participant = ++batch->active_workers;  // caller owns shard 0
    }
    work_on(*batch, participant);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --batch->active_workers;
    }
    done_.notify_all();
  }
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  bool expected = false;
  if (workers_.empty() || count == 1 ||
      !busy_.compare_exchange_strong(expected, true)) {
    // No workers, a trivial batch, or a nested/concurrent call: the serial
    // in-order loop is the reference semantics anyway.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.body = &body;
  batch.shards =
      std::vector<Shard>(std::min<std::size_t>(jobs(), count));
  const std::size_t shards = batch.shards.size();
  for (std::size_t s = 0; s < shards; ++s) {
    batch.shards[s].next.store(count * s / shards,
                               std::memory_order_relaxed);
    batch.shards[s].end = count * (s + 1) / shards;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
    ++epoch_;
  }
  wake_.notify_all();
  work_on(batch, 0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return batch.done.load(std::memory_order_acquire) == batch.count &&
             batch.active_workers == 0;
    });
    batch_ = nullptr;
  }
  busy_.store(false);
  if (batch.error) std::rethrow_exception(batch.error);
}

void parallel_for(ThreadPool* pool, std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& chunk) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    chunk(begin, std::min(count, begin + grain));
  };
  if (pool == nullptr || pool->jobs() <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  pool->for_each_index(chunks, run_chunk);
}

}  // namespace numaprof::support
