// Small statistics helpers used by the analyzer, viewer, and benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace numaprof::support {

/// Streaming accumulator for count / sum / min / max / mean / variance.
/// Welford's algorithm keeps the variance numerically stable for the long
/// latency streams the simulator produces.
class Accumulator {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  /// min()/max() are 0 when empty; check count() first when that matters.
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double mean() const noexcept;
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Pointwise merge of two accumulators (parallel-merge identity holds).
  void merge(const Accumulator& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact percentile of a sample set (nearest-rank). p in [0, 100].
/// Returns 0 for an empty sample.
double percentile(std::span<const double> sorted_values, double p) noexcept;

/// Sorts a copy and returns the nearest-rank percentile.
double percentile_of(std::vector<double> values, double p);

/// Coefficient-of-imbalance for per-bucket request counts: max/mean.
/// Used to quantify "uneven distribution of requests to NUMA domains" (§2).
/// Returns 1.0 for an empty or all-zero input.
double imbalance(std::span<const std::uint64_t> per_bucket) noexcept;

}  // namespace numaprof::support
