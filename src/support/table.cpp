#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace numaprof::support {

std::string format_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

bool looks_numeric(std::string_view cell) noexcept {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ',' &&
               c != 'e' && c != 'E' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::write_text(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_text() const {
  std::ostringstream os;
  write_text(os);
  return os.str();
}

namespace {

void write_csv_cell(std::ostream& os, std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) os << ',';
    write_csv_cell(os, row[c]);
  }
  os << '\n';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  write_csv_row(os, header_);
  for (const auto& row : rows_) write_csv_row(os, row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace numaprof::support
