// Deterministic fault injection for the measurement pipeline.
//
// Production NUMA profilers must survive hostile realities: sampling
// hardware that is absent or misconfigured, samples that are dropped or
// corrupted in flight, and per-thread measurement files that arrive
// truncated or bit-flipped at the offline analyzer. A FaultPlan is a
// seedable, env-configurable (NUMAPROF_FAULTS=...) description of exactly
// which of those faults to inject, so tests, benches, and the example
// tools can exercise every degradation path reproducibly.
//
// Spec grammar (semicolon-separated key=value pairs):
//   seed=N            RNG seed for all probabilistic faults (default 0x5eed)
//   init-fail=LIST    comma-separated mechanism names whose initialization
//                     fails (ibs, mrk, pebs, dear, pebs-ll, soft-ibs, or *)
//   drop=P            drop each emitted sample with probability P
//   corrupt=P         scramble a sample's effective address with prob. P
//   spike=P:CYCLES    inflate a sample's latency by CYCLES with prob. P
//   truncate=OFFSET   cut profile streams at byte OFFSET
//   bitflip=N         flip N pseudo-randomly chosen bits in profile streams
//
// Transport/WAL faults (the ingestion service, src/ingest/):
//   frame-drop=P      drop each transport frame with probability P
//   frame-corrupt=P   flip one byte of each transport frame with prob. P
//   stall=N           the transport stalls after N frames: the next frame
//                     is cut mid-header and nothing further is sent
//   disconnect=N      the connection drops after every N frames; clients
//                     must reconnect and resume from the last acked seq
//   disk-full=BYTES   write-ahead-log appends fail once the log holds
//                     BYTES bytes (ENOSPC at the worst moment)
//
// Example: NUMAPROF_FAULTS="seed=7;init-fail=ibs,pebs-ll;drop=0.01"
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace numaprof::support {

/// Thrown by FaultPlan::parse on a malformed spec (numaprof::Error with
/// kind ErrorKind::kFaultSpec).
class FaultSpecError : public numaprof::Error {
 public:
  explicit FaultSpecError(const std::string& message)
      : Error(ErrorKind::kFaultSpec, /*file=*/{}, /*field=*/"NUMAPROF_FAULTS",
              /*line=*/0, message) {}
};

/// Running tally of faults actually injected (for reports and tests).
struct FaultCounters {
  std::uint64_t init_failures = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t corrupted_samples = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t stream_truncations = 0;
  std::uint64_t stream_bitflips = 0;
  std::uint64_t dropped_frames = 0;
  std::uint64_t corrupted_frames = 0;
  std::uint64_t transport_stalls = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t wal_full_rejections = 0;
};

class FaultPlan {
 public:
  /// A disabled plan: every query reports "no fault".
  FaultPlan() = default;

  /// Parses a spec string (see grammar above). Throws FaultSpecError on
  /// unknown keys or unparsable values. An empty spec yields a disabled
  /// plan.
  static FaultPlan parse(std::string_view spec);

  /// Parses NUMAPROF_FAULTS; unset/empty yields a disabled plan. A
  /// malformed value throws FaultSpecError (better loud than silently
  /// running the wrong experiment).
  static FaultPlan from_env();

  bool enabled() const noexcept { return enabled_; }
  std::uint64_t seed() const noexcept { return seed_; }

  // --- mechanism initialization -------------------------------------
  /// True when `mechanism` (lower-case name, e.g. "pebs-ll") is on the
  /// init-fail list ("*" fails every mechanism asked about).
  bool fails_init(std::string_view mechanism) const;

  // --- sample-level faults (advance the deterministic RNG) ----------
  bool drop_sample();
  bool corrupt_sample();
  /// Extra latency cycles to add, when the spike fault fires.
  std::optional<std::uint64_t> latency_outlier();
  /// Deterministic scrambling of a corrupted field value.
  std::uint64_t scramble(std::uint64_t value);

  // --- stream-level faults ------------------------------------------
  /// Applies the plan's truncation and bit flips to a serialized profile.
  /// Deterministic given the plan's RNG state; successive calls mutate at
  /// different (but reproducible) positions.
  std::string mutate_stream(std::string bytes);

  // --- transport-level faults (advance the deterministic RNG) -------
  /// True when the next transport frame should be silently dropped.
  bool drop_frame();
  /// True when the next transport frame should have one byte flipped
  /// (the caller applies scramble()/corrupt_frame_bytes to the bytes).
  bool corrupt_frame();
  /// Flips one deterministically chosen byte of an encoded frame.
  std::string corrupt_frame_bytes(std::string bytes);
  /// True when the transport stalls after `frames_sent` complete frames
  /// (the stall=N fault). Counted once, on the triggering call.
  bool stalls_after(std::uint64_t frames_sent);
  /// True when the connection drops after `frames_sent` frames (the
  /// disconnect=N fault fires after every N frames).
  bool disconnects_after(std::uint64_t frames_sent);

  // --- WAL faults ---------------------------------------------------
  /// True when appending `bytes` to a log already holding `existing`
  /// bytes must fail with a simulated ENOSPC (the disk-full=BYTES fault).
  bool wal_write_fails(std::uint64_t existing, std::uint64_t bytes);

  const FaultCounters& counters() const noexcept { return counters_; }

  /// One-line human-readable summary of the configured faults.
  std::string describe() const;

  /// Reproducibility context for degradation records: " [faults: <spec>]"
  /// when the plan is enabled, empty otherwise. Appended to every
  /// DegradationEvent detail so any injected-fault failure can be
  /// reproduced from the report alone.
  std::string context_suffix() const;

 private:
  bool enabled_ = false;
  std::uint64_t seed_ = 0x5eed;
  std::vector<std::string> init_fail_;  // lower-case names, may contain "*"
  double drop_p_ = 0.0;
  double corrupt_p_ = 0.0;
  double spike_p_ = 0.0;
  std::uint64_t spike_cycles_ = 0;
  std::optional<std::uint64_t> truncate_at_;
  std::uint64_t bitflips_ = 0;
  double frame_drop_p_ = 0.0;
  double frame_corrupt_p_ = 0.0;
  std::optional<std::uint64_t> stall_after_;
  std::optional<std::uint64_t> disconnect_every_;
  std::optional<std::uint64_t> disk_full_bytes_;
  Rng rng_{0x5eed};
  mutable FaultCounters counters_;
};

/// Process-wide plan parsed once from NUMAPROF_FAULTS. The profiler and
/// CLI tools consult this when no explicit plan is supplied, so faults can
/// be injected into any run without code changes.
FaultPlan& global_fault_plan();

}  // namespace numaprof::support
