// Bump allocator for deserialization staging.
//
// The binary profile loader decodes whole sections at once — CCT parent
// columns, dense metric rows, string blobs — and those buffers all die
// together when the load finishes. A chunked arena turns thousands of
// per-record heap allocations into a handful of chunk mallocs: allocation
// is a pointer bump, deallocation is dropping the arena. Nothing here is
// thread-safe (one arena per load) and destructors are never run, so only
// trivially-destructible element types may live in an arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace numaprof::support {

class Arena {
 public:
  /// `chunk_bytes` is the default chunk size; oversized requests get a
  /// dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_bytes = std::size_t(1) << 20)
      : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw allocation, aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Never returns nullptr; size 0 yields a
  /// valid one-past pointer.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunks_.empty() || offset + bytes > capacity_) {
      grow(bytes + align);
      offset = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = offset + bytes;
    used_ += bytes;
    return chunks_.back().get() + offset;
  }

  /// Typed uninitialized span of `count` elements (trivially destructible
  /// types only — the arena never runs destructors).
  template <typename T>
  std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) ::new (data + i) T{};
    return std::span<T>(data, count);
  }

  /// Payload bytes handed out so far (excludes alignment padding).
  std::size_t used_bytes() const noexcept { return used_; }

  /// Bytes reserved from the system across all chunks.
  std::size_t reserved_bytes() const noexcept { return reserved_; }

  std::size_t chunk_count() const noexcept { return chunks_.size(); }

 private:
  void grow(std::size_t at_least) {
    const std::size_t size = at_least > chunk_bytes_ ? at_least : chunk_bytes_;
    chunks_.push_back(std::make_unique<std::byte[]>(size));
    capacity_ = size;
    cursor_ = 0;
    reserved_ += size;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::size_t capacity_ = 0;  // bytes in the current (last) chunk
  std::size_t cursor_ = 0;    // bump offset within the current chunk
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace numaprof::support
