// Shared CLI flag parsing for the numaprof executables.
//
// Every CLI used to hand-roll its own argv loop, so the same concept was
// spelled differently across tools (--jobs N vs --jobs=N, silently
// ignored typos). This parser gives them one grammar:
//   --flag            boolean flags
//   --flag value      valued flags (also --flag=value)
//   everything else   positional operands
// Unknown flags and missing values throw numaprof::Error with kind
// kUsage; the CLIs print usage() and exit non-zero through the shared
// format_error() path.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace numaprof::support {

class CliParser {
 public:
  /// `program` is the executable name for the usage header; `summary` is
  /// the one-line description under it.
  CliParser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  /// Registers a flag. `takes_value` flags consume the next argument (or
  /// the `=`-suffix); they may repeat — values accumulate in order.
  /// `placeholder` names the value in the usage string (e.g. "N", "PATH").
  void add_flag(std::string name, bool takes_value, std::string help,
                std::string placeholder = "VALUE");

  /// Registers a flag whose value is optional: `--flag` alone is valid
  /// (has() true, value() nullopt), and only the `=`-suffix spelling
  /// supplies a value (`--flag=V`) — the next argument is never consumed,
  /// so `--flag PATH` keeps PATH positional.
  void add_optional_value_flag(std::string name, std::string help,
                               std::string placeholder = "VALUE");

  /// Parses argv (excluding argv[0]). Throws Error(kUsage) on an unknown
  /// flag, a missing value, or a value supplied to a boolean flag.
  void parse(const std::vector<std::string>& args);

  bool has(std::string_view name) const;
  /// Last value of a repeatable valued flag; nullopt when absent.
  std::optional<std::string> value(std::string_view name) const;
  /// All values of a repeatable valued flag, in command-line order.
  std::vector<std::string> values(std::string_view name) const;
  /// Last value parsed as a non-negative integer; `fallback` when absent.
  /// Throws Error(kUsage) when present but not a number.
  unsigned unsigned_value(std::string_view name, unsigned fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The rendered usage block (header, flag table, one flag per line).
  std::string usage() const;

 private:
  struct Flag {
    std::string name;
    bool takes_value = false;
    bool optional_value = false;
    std::string help;
    std::string placeholder;
    std::vector<std::string> seen_values;
    std::size_t seen_count = 0;
  };

  Flag* find(std::string_view name);
  const Flag* find(std::string_view name) const;
  [[noreturn]] void usage_error(const std::string& message) const;

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace numaprof::support
