#include "simos/address_space.hpp"

namespace numaprof::simos {

AddressSpace::AddressSpace(std::uint32_t domain_count)
    : page_table_(domain_count),
      heap_(kHeapBase, kHeapCapacity),
      statics_(kStaticBase) {}

HeapBlock AddressSpace::heap_alloc(std::uint64_t size, PolicySpec policy) {
  const HeapBlock block = heap_.allocate(size);
  page_table_.register_region(page_of(block.start), block.page_count, policy);
  return block;
}

std::optional<HeapBlock> AddressSpace::heap_free(VAddr start) {
  const auto block = heap_.free(start);
  if (block) page_table_.unregister_region(page_of(block->start));
  return block;
}

StaticSymbol AddressSpace::define_static(std::string name,
                                         std::uint64_t size,
                                         PolicySpec policy) {
  const StaticSymbol symbol = statics_.define(std::move(name), size);
  page_table_.register_region(page_of(symbol.start), symbol.page_count,
                              policy);
  return symbol;
}

VAddr AddressSpace::stack_base(std::uint32_t tid) {
  const VAddr base = kStackBase + static_cast<VAddr>(tid) * kStackBytesPerThread;
  if (tid >= stacks_reserved_) {
    for (std::uint32_t t = stacks_reserved_; t <= tid; ++t) {
      page_table_.register_region(
          page_of(kStackBase + static_cast<VAddr>(t) * kStackBytesPerThread),
          kStackBytesPerThread / kPageBytes, PolicySpec::first_touch());
    }
    stacks_reserved_ = tid + 1;
  }
  return base;
}

Segment AddressSpace::segment_of(VAddr addr) const noexcept {
  if (addr >= kStackBase) return Segment::kStack;
  if (addr >= kHeapBase && addr < kHeapBase + kHeapCapacity) {
    return Segment::kHeap;
  }
  if (addr >= kStaticBase && addr < kHeapBase) return Segment::kStatic;
  return Segment::kUnknown;
}

}  // namespace numaprof::simos
