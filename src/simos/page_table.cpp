#include "simos/page_table.hpp"

#include <stdexcept>

namespace numaprof::simos {

void PageTable::register_region(PageId start_page, std::uint64_t pages,
                                PolicySpec policy) {
  if (pages == 0) return;
  PageId existing_start = 0;
  if (region_of(start_page, &existing_start) != nullptr ||
      region_of(start_page + pages - 1, &existing_start) != nullptr) {
    throw std::invalid_argument("page region overlaps a live region");
  }
  regions_[start_page] = Region{.pages = pages, .policy = policy};
}

void PageTable::unregister_region(PageId start_page) {
  const auto it = regions_.find(start_page);
  if (it == regions_.end()) return;
  for (PageId p = start_page; p < start_page + it->second.pages; ++p) {
    const auto entry = entries_.find(p);
    if (entry != entries_.end()) {
      if (entry->second.protected_) --protected_pages_;
      entries_.erase(entry);
    }
  }
  regions_.erase(it);
}

bool PageTable::set_region_policy(PageId page, PolicySpec policy) {
  PageId start = 0;
  const Region* region = region_of(page, &start);
  if (region == nullptr) return false;
  regions_[start].policy = policy;
  return true;
}

const PageTable::Region* PageTable::region_of(PageId page,
                                              PageId* start_out) const {
  auto it = regions_.upper_bound(page);
  if (it == regions_.begin()) return nullptr;
  --it;
  if (page >= it->first + it->second.pages) return nullptr;
  *start_out = it->first;
  return &it->second;
}

numasim::DomainId PageTable::home_of(PageId page, numasim::DomainId toucher) {
  auto [it, inserted] = entries_.try_emplace(page);
  PageEntry& entry = it->second;
  if (entry.home) return *entry.home;

  PageId region_start = 0;
  const Region* region = region_of(page, &region_start);
  const PolicySpec policy = region ? region->policy : PolicySpec::first_touch();
  const std::uint64_t region_pages = region ? region->pages : 1;
  const std::uint64_t index = region ? page - region_start : 0;
  entry.home = resolve_home(policy, index, region_pages, domain_count_, toucher);
  return *entry.home;
}

std::optional<numasim::DomainId> PageTable::query_home(PageId page) const {
  const auto it = entries_.find(page);
  if (it == entries_.end()) return std::nullopt;
  return it->second.home;
}

void PageTable::migrate(PageId page, numasim::DomainId home) {
  entries_[page].home = home % domain_count_;
}

void PageTable::protect_range(PageId start_page, std::uint64_t pages) {
  for (PageId p = start_page; p < start_page + pages; ++p) {
    PageEntry& entry = entries_[p];
    if (!entry.protected_) {
      entry.protected_ = true;
      ++protected_pages_;
    }
  }
}

void PageTable::unprotect(PageId page) {
  const auto it = entries_.find(page);
  if (it != entries_.end() && it->second.protected_) {
    it->second.protected_ = false;
    --protected_pages_;
  }
}

bool PageTable::is_protected(PageId page) const {
  const auto it = entries_.find(page);
  return it != entries_.end() && it->second.protected_;
}

std::vector<std::uint64_t> PageTable::placement_histogram() const {
  std::vector<std::uint64_t> histogram(domain_count_, 0);
  for (const auto& [page, entry] : entries_) {
    if (entry.home) ++histogram[*entry.home];
  }
  return histogram;
}

}  // namespace numaprof::simos
