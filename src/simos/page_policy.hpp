// NUMA page-placement policies.
//
// Linux decides the home domain of a freshly allocated page at first touch;
// libnuma/numactl can override with interleaved or bound placement (§2).
// The paper's optimizations also use *block-wise* placement, where each
// contiguous chunk of a variable lands in the domain of the threads that
// use it (§8.1-§8.2). PolicySpec captures all four.
#pragma once

#include <cstdint>
#include <string>

#include "numasim/types.hpp"
#include "simos/types.hpp"

namespace numaprof::simos {

enum class PolicyKind : std::uint8_t {
  kFirstTouch,  // default Linux behaviour: toucher's domain wins
  kInterleave,  // page i of the region -> domain (i mod domain_count)
  kBind,        // every page -> a fixed domain
  kBlockwise,   // page i of an N-page region -> domain floor(i*D/N)
};

struct PolicySpec {
  PolicyKind kind = PolicyKind::kFirstTouch;
  numasim::DomainId bind_domain = 0;  // used by kBind only

  static PolicySpec first_touch() noexcept { return {}; }
  static PolicySpec interleave() noexcept {
    return {.kind = PolicyKind::kInterleave, .bind_domain = 0};
  }
  static PolicySpec bind(numasim::DomainId d) noexcept {
    return {.kind = PolicyKind::kBind, .bind_domain = d};
  }
  static PolicySpec blockwise() noexcept {
    return {.kind = PolicyKind::kBlockwise, .bind_domain = 0};
  }
};

std::string to_string(const PolicySpec& spec);

/// Computes the home domain for page `index_in_region` of a
/// `region_pages`-page region under `spec`. `toucher` is the domain of the
/// thread performing the first touch (used by kFirstTouch).
numasim::DomainId resolve_home(const PolicySpec& spec,
                               std::uint64_t index_in_region,
                               std::uint64_t region_pages,
                               std::uint32_t domain_count,
                               numasim::DomainId toucher) noexcept;

}  // namespace numaprof::simos
