// Virtual-memory unit types for the simulated OS layer.
#pragma once

#include <cstdint>

namespace numaprof::simos {

/// Simulated virtual byte address.
using VAddr = std::uint64_t;

/// Virtual page number: VAddr >> kPageBits.
using PageId = std::uint64_t;

inline constexpr std::uint32_t kPageBits = 12;  // 4 KiB pages, as on Linux
inline constexpr std::uint64_t kPageBytes = 1ULL << kPageBits;

constexpr PageId page_of(VAddr addr) noexcept { return addr >> kPageBits; }
constexpr VAddr page_base(PageId page) noexcept { return page << kPageBits; }

/// Number of whole-or-partial pages covering [addr, addr+size).
constexpr std::uint64_t pages_covering(VAddr addr, std::uint64_t size) noexcept {
  if (size == 0) return 0;
  return page_of(addr + size - 1) - page_of(addr) + 1;
}

}  // namespace numaprof::simos
