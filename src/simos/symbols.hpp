// Static-variable symbol table.
//
// The paper's tool "identifies address ranges associated with static
// variables by reading symbols in the executable and dynamically loaded
// libraries" (§5.1). Simulated programs register their static (and
// promoted-from-stack, cf. the LULESH `nodelist` study) variables here; the
// data-centric attributor resolves sampled addresses against these ranges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "simos/types.hpp"

namespace numaprof::simos {

struct StaticSymbol {
  std::string name;
  VAddr start = 0;
  std::uint64_t size = 0;        // declared size in bytes
  std::uint64_t page_count = 0;  // pages reserved
};

class SymbolTable {
 public:
  /// Lays symbols out sequentially from `base` (page aligned, each symbol
  /// starting on its own page so per-variable placement is well defined).
  explicit SymbolTable(VAddr base);

  /// Defines a new symbol; names must be unique. Returns a copy of its
  /// descriptor (internal storage may reallocate on later definitions).
  StaticSymbol define(std::string name, std::uint64_t size);

  /// Symbol containing `addr`, or nullptr.
  const StaticSymbol* find(VAddr addr) const;

  /// Symbol by name, or nullptr.
  const StaticSymbol* lookup(const std::string& name) const;

  const std::vector<StaticSymbol>& all() const noexcept { return symbols_; }
  VAddr next_free() const noexcept { return next_; }

 private:
  VAddr next_;
  std::vector<StaticSymbol> symbols_;
  std::map<VAddr, std::size_t> by_start_;        // start addr -> index
  std::map<std::string, std::size_t> by_name_;
};

}  // namespace numaprof::simos
