#include "simos/page_policy.hpp"

namespace numaprof::simos {

std::string to_string(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicyKind::kFirstTouch: return "first-touch";
    case PolicyKind::kInterleave: return "interleave";
    case PolicyKind::kBind:
      return "bind(domain " + std::to_string(spec.bind_domain) + ")";
    case PolicyKind::kBlockwise: return "blockwise";
  }
  return "unknown";
}

numasim::DomainId resolve_home(const PolicySpec& spec,
                               std::uint64_t index_in_region,
                               std::uint64_t region_pages,
                               std::uint32_t domain_count,
                               numasim::DomainId toucher) noexcept {
  if (domain_count == 0) return 0;
  switch (spec.kind) {
    case PolicyKind::kFirstTouch:
      return toucher;
    case PolicyKind::kInterleave:
      return static_cast<numasim::DomainId>(index_in_region % domain_count);
    case PolicyKind::kBind:
      return spec.bind_domain % domain_count;
    case PolicyKind::kBlockwise: {
      if (region_pages == 0) return toucher;
      // floor(i * D / N): contiguous equal-sized blocks, one per domain.
      const auto domain = (index_in_region * domain_count) / region_pages;
      return static_cast<numasim::DomainId>(
          domain >= domain_count ? domain_count - 1 : domain);
    }
  }
  return toucher;
}

}  // namespace numaprof::simos
