// The simulated process address space: statics + heap + per-thread stacks,
// all backed by one PageTable that decides NUMA page placement.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "simos/heap.hpp"
#include "simos/page_table.hpp"
#include "simos/symbols.hpp"
#include "simos/types.hpp"

namespace numaprof::simos {

/// Segment layout (bases chosen to be visibly distinct in dumps).
inline constexpr VAddr kStaticBase = 0x0000'0000'1000'0000ULL;
inline constexpr VAddr kHeapBase   = 0x0000'0001'0000'0000ULL;
inline constexpr VAddr kStackBase  = 0x0000'7f00'0000'0000ULL;
inline constexpr std::uint64_t kHeapCapacity = 8ULL << 30;  // 8 GiB
inline constexpr std::uint64_t kStackBytesPerThread = 1ULL << 20;  // 1 MiB

enum class Segment : std::uint8_t { kStatic, kHeap, kStack, kUnknown };

class AddressSpace {
 public:
  explicit AddressSpace(std::uint32_t domain_count);

  PageTable& page_table() noexcept { return page_table_; }
  const PageTable& page_table() const noexcept { return page_table_; }

  // --- Heap ---
  /// Allocates and registers the block's pages as one policy region.
  HeapBlock heap_alloc(std::uint64_t size,
                       PolicySpec policy = PolicySpec::first_touch());
  /// Frees and unregisters. Returns the block for observer notification.
  std::optional<HeapBlock> heap_free(VAddr start);
  std::optional<HeapBlock> find_heap_block(VAddr addr) const {
    return heap_.find(addr);
  }
  const Heap& heap() const noexcept { return heap_; }

  // --- Statics ---
  StaticSymbol define_static(std::string name, std::uint64_t size,
                             PolicySpec policy = PolicySpec::first_touch());
  const StaticSymbol* find_static(VAddr addr) const {
    return statics_.find(addr);
  }
  const SymbolTable& statics() const noexcept { return statics_; }

  // --- Stacks ---
  /// Reserves thread `tid`'s stack; idempotent. Stack pages are first-touch
  /// (their owner thread usually touches them first, hence local — but a
  /// master-initialized shared stack array still lands in the master's
  /// domain, the LULESH `nodelist` pathology).
  VAddr stack_base(std::uint32_t tid);

  /// Classifies an address by segment.
  Segment segment_of(VAddr addr) const noexcept;

 private:
  PageTable page_table_;
  Heap heap_;
  SymbolTable statics_;
  std::uint32_t stacks_reserved_ = 0;
};

}  // namespace numaprof::simos
