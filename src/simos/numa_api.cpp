#include "simos/numa_api.hpp"

namespace numaprof::simos {

std::vector<std::optional<numasim::DomainId>> move_pages_query(
    const PageTable& table, std::span<const VAddr> addrs) {
  std::vector<std::optional<numasim::DomainId>> result;
  result.reserve(addrs.size());
  for (const VAddr addr : addrs) {
    result.push_back(table.query_home(page_of(addr)));
  }
  return result;
}

std::optional<numasim::DomainId> domain_of_addr(const PageTable& table,
                                                VAddr addr) {
  return table.query_home(page_of(addr));
}

numasim::DomainId numa_node_of_cpu(const numasim::Topology& topology,
                                   numasim::CoreId core) {
  return topology.domain_of_core(core);
}

}  // namespace numaprof::simos
