// libnuma-equivalent query API (§4.1).
//
// The paper's profiler uses two libnuma entry points:
//   - move_pages(2) in query mode, to ask which NUMA domain owns the page
//     behind a sampled effective address, and
//   - numa_node_of_cpu(3), to map the sampling CPU to its domain.
// These free functions reproduce those semantics over the simulated OS.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "numasim/topology.hpp"
#include "simos/page_table.hpp"
#include "simos/types.hpp"

namespace numaprof::simos {

/// move_pages(..., nodes=nullptr) query: for each address, the domain of
/// its page, or nullopt when the page has never been touched (-ENOENT on
/// Linux). Does not assign homes — queries must not perturb placement.
std::vector<std::optional<numasim::DomainId>> move_pages_query(
    const PageTable& table, std::span<const VAddr> addrs);

/// Single-address convenience form.
std::optional<numasim::DomainId> domain_of_addr(const PageTable& table,
                                                VAddr addr);

/// numa_node_of_cpu(3): the NUMA domain containing `core`.
numasim::DomainId numa_node_of_cpu(const numasim::Topology& topology,
                                   numasim::CoreId core);

}  // namespace numaprof::simos
