// Simulated heap allocator with block lookup.
//
// The paper's tool interposes on allocation functions (malloc wrappers, §6)
// to learn every heap variable's extent and allocation context. This heap
// provides the substrate: page-aligned first-fit allocation inside a heap
// segment (large allocations on real systems are mmap-backed and page
// aligned too, which is what makes per-variable page placement meaningful),
// plus reverse lookup from an address to its containing live block.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "simos/types.hpp"

namespace numaprof::simos {

/// Identifies one live heap block; stable for the block's lifetime and
/// never reused, so profilers can key metadata on it.
using BlockId = std::uint64_t;

struct HeapBlock {
  BlockId id = 0;
  VAddr start = 0;
  std::uint64_t size = 0;        // requested size in bytes
  std::uint64_t page_count = 0;  // pages reserved (size rounded up)
};

class Heap {
 public:
  /// Manages [base, base+capacity). Both must be page aligned.
  Heap(VAddr base, std::uint64_t capacity);

  /// Allocates `size` bytes (rounded up to whole pages). Throws
  /// std::bad_alloc when the segment is exhausted. size == 0 allocates one
  /// page, like glibc malloc(0) returning a unique pointer.
  HeapBlock allocate(std::uint64_t size);

  /// Frees the block starting at `start`. Returns the freed block, or
  /// nullopt when `start` is not a live block start (double free / bogus
  /// pointer — the simulated program gets a diagnosable error, not UB).
  std::optional<HeapBlock> free(VAddr start);

  /// Live block containing `addr`, if any.
  std::optional<HeapBlock> find(VAddr addr) const;

  /// Visits every live block in address order.
  void for_each_live(const std::function<void(const HeapBlock&)>& fn) const {
    for (const auto& [start, block] : live_) fn(block);
  }

  std::uint64_t live_blocks() const noexcept { return live_.size(); }
  std::uint64_t bytes_in_use() const noexcept { return bytes_in_use_; }
  VAddr base() const noexcept { return base_; }
  std::uint64_t capacity() const noexcept { return capacity_; }

 private:
  VAddr base_;
  std::uint64_t capacity_;
  BlockId next_id_ = 1;
  std::uint64_t bytes_in_use_ = 0;
  std::map<VAddr, HeapBlock> live_;        // keyed by start address
  std::map<VAddr, std::uint64_t> free_;    // start -> byte length, coalesced
};

}  // namespace numaprof::simos
