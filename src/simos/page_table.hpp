// Page table: lazy home-domain assignment, region policies, page protection.
//
// This is the OS state the paper's tool interrogates and manipulates:
//  - move_pages(2)-style queries ("which domain owns this page?", §4.1),
//  - placement policies applied to allocations (§2),
//  - read/write protection used to trap first touches (§6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "numasim/types.hpp"
#include "simos/page_policy.hpp"
#include "simos/types.hpp"

namespace numaprof::simos {

/// Per-page OS state. A page exists in the table only once something has
/// been recorded about it (policy region membership is tracked separately).
struct PageEntry {
  std::optional<numasim::DomainId> home;  // unset until first touch
  bool protected_ = false;                // r/w masked (first-touch trap)
};

class PageTable {
 public:
  explicit PageTable(std::uint32_t domain_count) noexcept
      : domain_count_(domain_count) {}

  /// Registers [start_page, start_page+pages) as one policy region, e.g. a
  /// heap allocation or a static variable's extent. Later-registered
  /// regions may not overlap earlier live ones.
  void register_region(PageId start_page, std::uint64_t pages,
                       PolicySpec policy);

  /// Removes a region (heap free). Page homes are dropped with it, matching
  /// the OS returning frames to the free pool.
  void unregister_region(PageId start_page);

  /// Replaces the policy of the region containing `page` (numactl-style
  /// rebinding before first touch). Pages already homed keep their homes.
  bool set_region_policy(PageId page, PolicySpec policy);

  /// The domain that owns `page`, assigning it on first touch by `toucher`
  /// according to the containing region's policy (default: first-touch).
  numasim::DomainId home_of(PageId page, numasim::DomainId toucher);

  /// move_pages(2) query semantics: domain if assigned, nullopt when the
  /// page has never been touched (Linux reports -ENOENT for those).
  std::optional<numasim::DomainId> query_home(PageId page) const;

  /// Forces a page's home (page-migration support). Creates the entry.
  void migrate(PageId page, numasim::DomainId home);

  // --- Protection (first-touch trapping, §6) ---
  void protect_range(PageId start_page, std::uint64_t pages);
  void unprotect(PageId page);
  bool is_protected(PageId page) const;

  /// True while any page is protected; the access hot path checks this one
  /// flag before doing per-page lookups, keeping the common case cheap.
  bool any_protected() const noexcept { return protected_pages_ != 0; }

  std::uint32_t domain_count() const noexcept { return domain_count_; }

  /// Number of pages with an assigned home (touched pages).
  std::size_t touched_pages() const noexcept { return entries_.size(); }

  /// numastat-style placement histogram: touched pages homed per domain.
  std::vector<std::uint64_t> placement_histogram() const;

 private:
  struct Region {
    std::uint64_t pages = 0;
    PolicySpec policy;
  };

  /// Region containing `page`, or nullptr.
  const Region* region_of(PageId page, PageId* start_out) const;

  std::uint32_t domain_count_;
  std::map<PageId, Region> regions_;  // keyed by start page
  std::unordered_map<PageId, PageEntry> entries_;
  std::size_t protected_pages_ = 0;
};

}  // namespace numaprof::simos
