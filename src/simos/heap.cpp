#include "simos/heap.hpp"

#include <new>
#include <stdexcept>

namespace numaprof::simos {

Heap::Heap(VAddr base, std::uint64_t capacity)
    : base_(base), capacity_(capacity) {
  if (base % kPageBytes != 0 || capacity % kPageBytes != 0) {
    throw std::invalid_argument("heap base/capacity must be page aligned");
  }
  free_[base_] = capacity_;
}

HeapBlock Heap::allocate(std::uint64_t size) {
  const std::uint64_t pages = size == 0 ? 1 : pages_covering(0, size);
  const std::uint64_t bytes = pages * kPageBytes;

  // First fit over the (address-ordered, coalesced) free list.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < bytes) continue;
    const VAddr start = it->first;
    const std::uint64_t remaining = it->second - bytes;
    free_.erase(it);
    if (remaining != 0) free_[start + bytes] = remaining;

    HeapBlock block{.id = next_id_++,
                    .start = start,
                    .size = size == 0 ? 1 : size,
                    .page_count = pages};
    live_[start] = block;
    bytes_in_use_ += bytes;
    return block;
  }
  throw std::bad_alloc();
}

std::optional<HeapBlock> Heap::free(VAddr start) {
  const auto it = live_.find(start);
  if (it == live_.end()) return std::nullopt;
  const HeapBlock block = it->second;
  live_.erase(it);

  const std::uint64_t bytes = block.page_count * kPageBytes;
  bytes_in_use_ -= bytes;

  // Insert into the free list and coalesce with neighbours.
  auto [pos, inserted] = free_.emplace(start, bytes);
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
      pos = prev;
    }
  }
  const auto next = std::next(pos);
  if (next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  return block;
}

std::optional<HeapBlock> Heap::find(VAddr addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return std::nullopt;
  --it;
  const HeapBlock& block = it->second;
  if (addr >= block.start + block.page_count * kPageBytes) return std::nullopt;
  return block;
}

}  // namespace numaprof::simos
