#include "simos/symbols.hpp"

#include <stdexcept>

namespace numaprof::simos {

SymbolTable::SymbolTable(VAddr base) : next_(base) {
  if (base % kPageBytes != 0) {
    throw std::invalid_argument("symbol table base must be page aligned");
  }
}

StaticSymbol SymbolTable::define(std::string name, std::uint64_t size) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate static symbol: " + name);
  }
  const std::uint64_t pages = size == 0 ? 1 : pages_covering(0, size);
  StaticSymbol symbol{.name = std::move(name),
                      .start = next_,
                      .size = size,
                      .page_count = pages};
  next_ += pages * kPageBytes;

  symbols_.push_back(symbol);
  const std::size_t index = symbols_.size() - 1;
  by_start_[symbol.start] = index;
  by_name_[symbols_.back().name] = index;
  return symbols_.back();
}

const StaticSymbol* SymbolTable::find(VAddr addr) const {
  auto it = by_start_.upper_bound(addr);
  if (it == by_start_.begin()) return nullptr;
  --it;
  const StaticSymbol& symbol = symbols_[it->second];
  if (addr >= symbol.start + symbol.page_count * kPageBytes) return nullptr;
  return &symbol;
}

const StaticSymbol* SymbolTable::lookup(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &symbols_[it->second];
}

}  // namespace numaprof::simos
