// Write-ahead log for the ingestion daemon (crash safety).
//
// Every shard the server accepts is appended to an on-disk log BEFORE it
// is acknowledged, so a daemon killed at any instant — including halfway
// through a write — restarts, replays the log, truncates the torn tail,
// and re-merges to a byte-identical analysis. The format is a sequence of
// self-delimiting, checksummed records; recovery semantics are strictly
// prefix-based: the log is valid up to the first damaged record, and
// everything after it is torn garbage to be truncated (an append-only log
// written by one process can only be damaged at its tail).
//
// Record layout (all integers little-endian):
//   0   4  magic "NPW1"
//   4   8  log sequence (1-based, monotonically increasing per file)
//   12  1  record type (WalRecordType)
//   13  4  client id
//   17  8  client sequence number
//   25  4  payload length N
//   29  N  payload
//   29+N 4 CRC32 (IEEE, over bytes [0, 29+N))
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/faultinject.hpp"

namespace numaprof::ingest {

inline constexpr char kWalMagic[4] = {'N', 'P', 'W', '1'};
inline constexpr std::size_t kWalHeaderBytes = 29;
inline constexpr std::size_t kWalTrailerBytes = 4;
inline constexpr std::uint32_t kMaxWalPayload = 1u << 24;

enum class WalRecordType : std::uint8_t {
  kHello,  // a client announced a session; payload = its hello payload
  kShard,  // one accepted shard payload
  kDone,   // a client completed its session
};
inline constexpr int kWalRecordTypeCount = 3;

struct WalRecord {
  WalRecordType type = WalRecordType::kShard;
  std::uint32_t client = 0;
  std::uint64_t sequence = 0;  // the CLIENT's sequence number
  std::string payload;
};

std::string encode_wal_record(const WalRecord& record,
                              std::uint64_t log_sequence);

/// Appends checksummed records to a log file, flushing each one so a
/// crash can tear at most the record being written. A FaultPlan's
/// disk-full fault makes appends fail deterministically; the server
/// degrades (shard stays memory-only) instead of aborting.
class WalWriter {
 public:
  struct Options {
    support::FaultPlan* faults = nullptr;
    /// Crash injection for the recovery tests: after this many successful
    /// appends the NEXT append writes a torn half-record and _Exits the
    /// process — the harshest possible kill point. 0 = never.
    std::uint64_t crash_after_appends = 0;
  };

  /// Opens `path` for appending; `existing_bytes`/`existing_records` seed
  /// the counters when the file already holds recovered records. Throws
  /// numaprof::Error (kind kIngest) when the file cannot be opened.
  explicit WalWriter(std::string path);
  WalWriter(std::string path, Options options,
            std::uint64_t existing_bytes = 0,
            std::uint64_t existing_records = 0);

  /// Appends and flushes one record. Returns false when the disk-full
  /// fault rejects the write (nothing is appended).
  bool append(const WalRecord& record);

  const std::string& path() const noexcept { return path_; }
  std::uint64_t bytes() const noexcept { return bytes_; }
  std::uint64_t records() const noexcept { return records_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  std::string path_;
  Options options_;
  std::ofstream out_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;  // doubles as the log sequence
  std::uint64_t rejected_ = 0;
  std::uint64_t appends_until_crash_ = 0;  // 0 = disarmed
};

/// What a scan of the log found. `records` is the valid prefix;
/// `torn_bytes` is the length of the damaged tail (0 for a clean log).
struct WalReplay {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;
  std::uint64_t torn_bytes = 0;
  /// Human-readable reason the scan stopped early (empty when clean).
  std::string stop_reason;
};

/// Scans `path` without modifying it. A missing file replays empty.
WalReplay replay_wal(const std::string& path);

/// Scans `path` AND truncates it to the last valid record, so subsequent
/// appends continue from a clean tail. This is the daemon's restart path.
WalReplay recover_wal(const std::string& path);

}  // namespace numaprof::ingest
