// The framed, checksummed shard/telemetry transport of the ingestion
// service (numaprofd).
//
// Recorder clients stream profile shards to the daemon as length-prefixed
// frames. Each frame carries a magic, a type, the sending client's id, a
// per-client sequence number, and a CRC32 over everything, so the receiver
// can detect truncation, bit flips, duplication, and reordering without
// trusting a single byte of the stream. The codec is pure and
// deterministic — the same Frame always encodes to the same bytes — which
// keeps spooled client streams and the golden tests byte-stable.
//
// Wire layout (all integers little-endian):
//   0   4  magic "NPF1"
//   4   1  type (FrameType)
//   5   3  reserved, zero
//   8   4  client id
//   12  8  sequence number
//   20  4  payload length N (bounded by kMaxFramePayload)
//   24  N  payload
//   24+N 4 CRC32 (IEEE, over bytes [0, 24+N))
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace numaprof::ingest {

inline constexpr char kFrameMagic[4] = {'N', 'P', 'F', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 24;
inline constexpr std::size_t kFrameTrailerBytes = 4;
/// Hard ceiling on one frame's payload; a corrupt length field claiming
/// gigabytes is rejected before any buffering happens.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 24;

/// CRC32 (IEEE 802.3, the zlib polynomial), table-driven. `seed` chains
/// incremental computations; pass the previous return value.
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

enum class FrameType : std::uint8_t {
  kHello,      // client -> server: session open; payload "shards=N"
  kShard,      // client -> server: one serialized per-thread shard
  kTelemetry,  // client -> server: one telemetry JSONL line
  kBye,        // client -> server: session complete
  kAck,        // server -> client: sequence = highest contiguous accepted
  kNack,       // server -> client: sequence = next expected; payload why
  kBusy,       // server -> client: backpressure, retry after backoff
};
inline constexpr int kFrameTypeCount = 7;

std::string_view to_string(FrameType t) noexcept;

struct Frame {
  FrameType type = FrameType::kShard;
  std::uint32_t client = 0;
  std::uint64_t sequence = 0;
  std::string payload;
};

/// Serializes a frame. Throws numaprof::Error (kind kIngest) when the
/// payload exceeds kMaxFramePayload.
std::string encode_frame(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kOk,        // frame is valid; `consumed` covers it entirely
  kNeedMore,  // buffer ends mid-frame; feed more bytes (consumed == 0)
  kBadMagic,  // bytes do not start a frame
  kBadType,   // type byte outside FrameType
  kBadLength, // payload length exceeds kMaxFramePayload
  kBadCrc,    // checksum mismatch (bit flip in header or payload)
};

std::string_view to_string(DecodeStatus s) noexcept;

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;              // populated when status == kOk
  std::size_t consumed = 0; // bytes to drop from the front of the buffer
};

/// Decodes the first frame of `buffer`. On any corruption the result
/// consumes up to the next plausible magic (or the whole buffer), so a
/// caller can skip the damaged region and resynchronize on the following
/// frame; a false magic inside a payload is rejected by its CRC and the
/// scan continues. kNeedMore consumes nothing.
DecodeResult decode_frame(std::string_view buffer);

}  // namespace numaprof::ingest
