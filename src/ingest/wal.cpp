#include "ingest/wal.hpp"

#include <cstdlib>
#include <filesystem>

#include "ingest/frame.hpp"
#include "support/error.hpp"

namespace numaprof::ingest {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

}  // namespace

std::string encode_wal_record(const WalRecord& record,
                              std::uint64_t log_sequence) {
  if (record.payload.size() > kMaxWalPayload) {
    throw Error(ErrorKind::kIngest, {}, "wal", 0,
                "WAL payload of " + std::to_string(record.payload.size()) +
                    " bytes exceeds the " + std::to_string(kMaxWalPayload) +
                    "-byte limit");
  }
  std::string out;
  out.reserve(kWalHeaderBytes + record.payload.size() + kWalTrailerBytes);
  out.append(kWalMagic, 4);
  put_u64(out, log_sequence);
  out.push_back(static_cast<char>(record.type));
  put_u32(out, record.client);
  put_u64(out, record.sequence);
  put_u32(out, static_cast<std::uint32_t>(record.payload.size()));
  out += record.payload;
  put_u32(out, crc32(out));
  return out;
}

WalWriter::WalWriter(std::string path)
    : WalWriter(std::move(path), Options{}) {}

WalWriter::WalWriter(std::string path, Options options,
                     std::uint64_t existing_bytes,
                     std::uint64_t existing_records)
    : path_(std::move(path)),
      options_(options),
      out_(path_, std::ios::binary | std::ios::app),
      bytes_(existing_bytes),
      records_(existing_records),
      appends_until_crash_(options.crash_after_appends) {
  if (!out_) {
    throw Error(ErrorKind::kIngest, path_, "wal", 0,
                "cannot open write-ahead log for append: " + path_);
  }
}

bool WalWriter::append(const WalRecord& record) {
  const std::string bytes = encode_wal_record(record, records_ + 1);
  if (options_.faults != nullptr &&
      options_.faults->wal_write_fails(bytes_, bytes.size())) {
    ++rejected_;
    return false;
  }
  if (appends_until_crash_ > 0 && --appends_until_crash_ == 0) {
    // The injected kill point: half a record reaches the disk, then the
    // process dies without unwinding — exactly what a power cut or OOM
    // kill does to a real daemon. Recovery must truncate this tail.
    out_.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
    out_.flush();
    std::_Exit(42);
  }
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_) {
    throw Error(ErrorKind::kIngest, path_, "wal", 0,
                "write-ahead log append failed: " + path_);
  }
  bytes_ += bytes.size();
  ++records_;
  return true;
}

namespace {

WalReplay scan_wal(const std::string& path) {
  WalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) return replay;  // no log yet: clean empty replay
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::size_t at = 0;
  std::uint64_t expected_log_seq = 1;
  const std::string_view view(bytes);
  const auto stop = [&](const std::string& why) {
    replay.torn_bytes = bytes.size() - at;
    replay.stop_reason = why;
  };
  while (at < bytes.size()) {
    const std::string_view rest = view.substr(at);
    if (rest.size() < kWalHeaderBytes) {
      stop("torn record header (" + std::to_string(rest.size()) +
           " trailing bytes)");
      break;
    }
    if (rest.substr(0, 4) != std::string_view(kWalMagic, 4)) {
      stop("bad record magic");
      break;
    }
    const std::uint64_t log_seq = get_u64(rest, 4);
    if (log_seq != expected_log_seq) {
      stop("log sequence " + std::to_string(log_seq) + " where " +
           std::to_string(expected_log_seq) + " was expected");
      break;
    }
    const auto type_raw = static_cast<unsigned char>(rest[12]);
    if (type_raw >= kWalRecordTypeCount) {
      stop("bad record type " + std::to_string(type_raw));
      break;
    }
    const std::uint32_t payload_len = get_u32(rest, 25);
    if (payload_len > kMaxWalPayload) {
      stop("payload length " + std::to_string(payload_len) +
           " exceeds limit");
      break;
    }
    const std::size_t total =
        kWalHeaderBytes + payload_len + kWalTrailerBytes;
    if (rest.size() < total) {
      stop("torn record body (" + std::to_string(rest.size()) + " of " +
           std::to_string(total) + " bytes)");
      break;
    }
    const std::uint32_t want =
        crc32(rest.substr(0, kWalHeaderBytes + payload_len));
    if (want != get_u32(rest, kWalHeaderBytes + payload_len)) {
      stop("record checksum mismatch");
      break;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(type_raw);
    record.client = get_u32(rest, 13);
    record.sequence = get_u64(rest, 17);
    record.payload = std::string(rest.substr(kWalHeaderBytes, payload_len));
    replay.records.push_back(std::move(record));
    at += total;
    ++expected_log_seq;
  }
  replay.valid_bytes = at;
  return replay;
}

}  // namespace

WalReplay replay_wal(const std::string& path) { return scan_wal(path); }

WalReplay recover_wal(const std::string& path) {
  WalReplay replay = scan_wal(path);
  if (replay.torn_bytes > 0) {
    std::error_code ec;
    std::filesystem::resize_file(path, replay.valid_bytes, ec);
    if (ec) {
      throw Error(ErrorKind::kIngest, path, "wal", 0,
                  "cannot truncate torn write-ahead log tail: " +
                      ec.message());
    }
  }
  return replay;
}

}  // namespace numaprof::ingest
