#include "ingest/server.hpp"

#include <filesystem>
#include <fstream>

#include "support/error.hpp"

namespace numaprof::ingest {

namespace {

/// Parses a hello payload "shards=N"; malformed payloads announce nothing
/// (the server then expects whatever highest sequence it saw).
std::uint64_t parse_hello_shards(std::string_view payload) {
  constexpr std::string_view kKey = "shards=";
  if (payload.substr(0, kKey.size()) != kKey) return 0;
  std::uint64_t value = 0;
  for (const char c : payload.substr(kKey.size())) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// "3, 5, 8" for small sets, "3, 5, 8, ... (+9 more)" beyond eight: the
/// detail stays readable when a fault plan shreds a big run.
std::string join_sequences(const std::vector<std::uint64_t>& seqs) {
  constexpr std::size_t kShown = 8;
  std::string out;
  for (std::size_t i = 0; i < seqs.size() && i < kShown; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(seqs[i]);
  }
  if (seqs.size() > kShown) {
    out += ", ... (+" + std::to_string(seqs.size() - kShown) + " more)";
  }
  return out;
}

}  // namespace

IngestServer::IngestServer(ServerOptions options)
    : options_(std::move(options)) {
  if (!options_.wal_path.empty()) {
    const WalReplay recovered = recover_wal(options_.wal_path);
    stats_.wal_records_replayed = recovered.records.size();
    stats_.wal_torn_bytes = recovered.torn_bytes;
    wal_stop_reason_ = recovered.stop_reason;
    replay(recovered);
    WalWriter::Options wal_options;
    wal_options.faults = options_.faults;
    wal_options.crash_after_appends = options_.crash_after_appends;
    wal_ = std::make_unique<WalWriter>(options_.wal_path, wal_options,
                                       recovered.valid_bytes,
                                       recovered.records.size());
  }
}

void IngestServer::replay(const WalReplay& recovered) {
  for (const WalRecord& record : recovered.records) {
    ClientState& state = clients_[record.client];
    switch (record.type) {
      case WalRecordType::kHello:
        state.announced =
            std::max(state.announced, parse_hello_shards(record.payload));
        state.hello_walled = true;
        break;
      case WalRecordType::kShard:
        if (state.seen.insert(record.sequence).second) {
          shards_[{record.client, record.sequence}] = record.payload;
          while (state.seen.count(state.contiguous + 1) != 0) {
            ++state.contiguous;
          }
        }
        break;
      case WalRecordType::kDone:
        state.announced = std::max(state.announced, record.sequence);
        state.done = true;
        state.done_walled = true;
        break;
    }
  }
}

IngestServer::ConnectionId IngestServer::connect() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const ConnectionId id = next_conn_++;
  conns_[id];
  return id;
}

void IngestServer::disconnect(ConnectionId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  conns_.erase(id);
}

void IngestServer::respond(std::string* responses, FrameType type,
                           std::uint32_t client, std::uint64_t sequence,
                           std::string payload) {
  if (responses == nullptr) return;
  Frame frame;
  frame.type = type;
  frame.client = client;
  frame.sequence = sequence;
  frame.payload = std::move(payload);
  responses->append(encode_frame(frame));
}

void IngestServer::publish_event(std::string_view detail,
                                 std::uint64_t value) {
  if (options_.telemetry == nullptr) return;
  support::TelemetryEvent event;
  event.kind = support::TelemetryEventKind::kIngestDegraded;
  event.tid = 0;
  event.time = tick_;
  event.value = value;
  event.set_detail(detail);
  options_.telemetry->ring(0).publish(event);
}

bool IngestServer::wal_append(WalRecordType type, std::uint32_t client,
                              std::uint64_t sequence,
                              const std::string& payload,
                              ClientState& state) {
  if (wal_ == nullptr) return true;
  WalRecord record;
  record.type = type;
  record.client = client;
  record.sequence = sequence;
  record.payload = payload;
  if (wal_->append(record)) return true;
  ++stats_.wal_rejections;
  ++state.not_durable;
  publish_event("write-ahead log append refused (disk full)",
                stats_.wal_rejections);
  return false;
}

void IngestServer::drain_client(std::uint32_t id, ClientState& state,
                                std::uint64_t limit) {
  std::uint64_t drained = 0;
  while (!state.pending.empty() && (limit == 0 || drained < limit)) {
    auto& [sequence, payload] = state.pending.front();
    shards_[{id, sequence}] = std::move(payload);
    state.pending.pop_front();
    ++drained;
  }
}

void IngestServer::handle_frame(const Frame& frame,
                                std::string* responses) {
  switch (frame.type) {
    case FrameType::kHello: {
      ClientState& state = clients_[frame.client];
      state.announced =
          std::max(state.announced, parse_hello_shards(frame.payload));
      if (!state.hello_walled) {
        state.hello_walled = wal_append(WalRecordType::kHello, frame.client,
                                        0, frame.payload, state);
      }
      // The ack tells a restarted client where to resume.
      respond(responses, FrameType::kAck, frame.client, state.contiguous);
      break;
    }
    case FrameType::kShard: {
      if (frame.sequence == 0) {
        ++stats_.protocol_errors;
        break;
      }
      ClientState& state = clients_[frame.client];
      if (state.seen.count(frame.sequence) != 0) {
        // An idempotent retransmit: already journaled, just re-ack.
        ++stats_.frames_duplicate;
        respond(responses, FrameType::kAck, frame.client, state.contiguous);
        break;
      }
      if (responses != nullptr &&
          state.pending.size() >= options_.queue_capacity) {
        // Backpressure: the bounded queue is full. Refusing (instead of
        // buffering without limit) keeps one flooding client from
        // starving the rest; the client backs off and retransmits.
        ++stats_.busy_rejections;
        respond(responses, FrameType::kBusy, frame.client, frame.sequence);
        break;
      }
      state.seen.insert(frame.sequence);
      state.pending.emplace_back(frame.sequence, frame.payload);
      ++stats_.frames_accepted;
      stats_.bytes_ingested += frame.payload.size();
      wal_append(WalRecordType::kShard, frame.client, frame.sequence,
                 frame.payload, state);
      while (state.seen.count(state.contiguous + 1) != 0) {
        ++state.contiguous;
      }
      if (state.contiguous >= frame.sequence) {
        respond(responses, FrameType::kAck, frame.client, state.contiguous);
      } else {
        // Sequence gap: an earlier frame was lost. The NACK names the
        // next expected sequence so the client rewinds precisely.
        ++stats_.sequence_nacks;
        respond(responses, FrameType::kNack, frame.client,
                state.contiguous + 1, "sequence gap");
      }
      if (options_.drain_per_tick == 0) {
        drain_client(frame.client, state, 0);
      }
      break;
    }
    case FrameType::kTelemetry:
      // Lossy by design: counted, never journaled, never acked.
      ++stats_.telemetry_lines;
      break;
    case FrameType::kBye: {
      ClientState& state = clients_[frame.client];
      state.announced = std::max(state.announced, frame.sequence);
      state.done = true;
      if (!state.done_walled) {
        state.done_walled = wal_append(WalRecordType::kDone, frame.client,
                                       frame.sequence, {}, state);
      }
      respond(responses, FrameType::kAck, frame.client, state.contiguous);
      break;
    }
    case FrameType::kAck:
    case FrameType::kNack:
    case FrameType::kBusy:
      // Server-to-client frames arriving at the server: protocol noise.
      ++stats_.protocol_errors;
      break;
  }
}

void IngestServer::feed(ConnectionId id, std::string_view bytes,
                        std::string* responses) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = conns_.find(id);
  if (it == conns_.end() || !it->second.open) return;
  ConnState& conn = it->second;
  conn.buffer.append(bytes);
  std::size_t consumed = 0;
  const std::string_view view(conn.buffer);
  while (consumed < view.size()) {
    const DecodeResult result = decode_frame(view.substr(consumed));
    if (result.status == DecodeStatus::kNeedMore) break;
    consumed += result.consumed;
    if (result.status == DecodeStatus::kOk) {
      conn.last_client = result.frame.client;
      conn.saw_client = true;
      conn.last_progress_tick = tick_;
      handle_frame(result.frame, responses);
      continue;
    }
    // A damaged region: count it, skip to the next plausible frame, and
    // (two-way) NACK so the sender retransmits what the damage ate.
    ++stats_.corrupt_regions;
    publish_event("corrupt frame region (" +
                      std::string(to_string(result.status)) + ")",
                  stats_.corrupt_regions);
    if (responses != nullptr) {
      const std::uint32_t client = conn.saw_client ? conn.last_client : 0;
      const std::uint64_t expected =
          conn.saw_client ? clients_[client].contiguous + 1 : 0;
      respond(responses, FrameType::kNack, client, expected,
              std::string(to_string(result.status)));
    }
  }
  conn.buffer.erase(0, consumed);
}

void IngestServer::evict(ConnState& conn) {
  conn.open = false;
  conn.buffer.clear();
  ++stats_.clients_evicted;
  std::uint64_t value = 0;
  if (conn.saw_client) {
    clients_[conn.last_client].evicted = true;
    value = conn.last_client;
  }
  publish_event("stalled client evicted mid-frame", value);
}

void IngestServer::tick() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  for (auto& [id, state] : clients_) {
    drain_client(id, state, options_.drain_per_tick);
  }
  for (auto& [id, conn] : conns_) {
    if (conn.open && !conn.buffer.empty() &&
        tick_ - conn.last_progress_tick >= options_.evict_after_ticks) {
      evict(conn);
    }
  }
}

void IngestServer::ingest_stream(std::string_view bytes) {
  const ConnectionId id = connect();
  feed(id, bytes, nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = conns_.find(id);
  if (it != conns_.end()) {
    // Bytes left over mean the stream ended mid-frame: a stalled client.
    if (it->second.open && !it->second.buffer.empty()) evict(it->second);
    conns_.erase(it);
  }
}

void IngestServer::finish_locked() {
  for (auto& [id, conn] : conns_) {
    if (conn.open && !conn.buffer.empty()) evict(conn);
  }
  for (auto& [id, state] : clients_) {
    drain_client(id, state, 0);
  }
}

void IngestServer::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  finish_locked();
}

core::MergeResult IngestServer::merge(const std::string& spool_dir,
                                      const PipelineOptions& options) {
  namespace fs = std::filesystem;
  const std::lock_guard<std::mutex> lock(mutex_);
  finish_locked();
  fs::create_directories(spool_dir);
  std::vector<std::string> paths;
  paths.reserve(shards_.size());
  for (const auto& [key, payload] : shards_) {
    const std::string name = "client_" + std::to_string(key.first) +
                             "_shard_" + std::to_string(key.second) +
                             ".prof";
    const std::string path = (fs::path(spool_dir) / name).string();
    std::ofstream os(path, std::ios::binary);
    os << payload;
    if (!os) {
      throw Error(ErrorKind::kIngest, path, "spool", 0,
                  "cannot spool ingested shard for merge: " + path);
    }
    paths.push_back(path);
  }
  if (paths.empty()) {
    throw Error(ErrorKind::kIngest, {}, "merge", 0,
                "no shards were ingested; nothing to merge");
  }
  core::MergeResult result = core::merge_profile_files(paths, options);

  // Ingest-level degradations, derived ONLY from the final state (never
  // from the order events happened to arrive in), so a recovered daemon
  // reports bit-for-bit what an uninterrupted one reports.
  const std::string suffix =
      options_.faults != nullptr ? options_.faults->context_suffix()
                                 : std::string();
  for (const auto& [id, state] : clients_) {
    const std::uint64_t expected =
        state.announced != 0
            ? state.announced
            : (state.seen.empty() ? 0 : *state.seen.rbegin());
    std::vector<std::uint64_t> missing;
    for (std::uint64_t seq = 1; seq <= expected; ++seq) {
      if (state.seen.count(seq) == 0) missing.push_back(seq);
    }
    if (!missing.empty()) {
      core::DegradationEvent event;
      event.kind = core::DegradationKind::kIngestShardMissing;
      event.value = missing.size();
      event.detail = "client " + std::to_string(id) + ": " +
                     std::to_string(missing.size()) + " of " +
                     std::to_string(expected) +
                     " shard(s) lost in transport (seq " +
                     join_sequences(missing) + ")" + suffix;
      result.data.degradations.push_back(std::move(event));
    }
    if (state.evicted && !state.done) {
      core::DegradationEvent event;
      event.kind = core::DegradationKind::kIngestClientEvicted;
      event.value = id;
      event.detail = "client " + std::to_string(id) +
                     ": evicted after stalling mid-frame; " +
                     std::to_string(state.seen.size()) +
                     " shard(s) merged" + suffix;
      result.data.degradations.push_back(std::move(event));
    }
  }
  if (stats_.corrupt_regions > 0) {
    core::DegradationEvent event;
    event.kind = core::DegradationKind::kIngestShardCorrupt;
    event.value = stats_.corrupt_regions;
    event.detail = std::to_string(stats_.corrupt_regions) +
                   " corrupt frame region(s) discarded from transport "
                   "streams" +
                   suffix;
    result.data.degradations.push_back(std::move(event));
  }
  std::uint64_t not_durable = 0;
  for (const auto& [id, state] : clients_) not_durable += state.not_durable;
  if (not_durable > 0) {
    core::DegradationEvent event;
    event.kind = core::DegradationKind::kIngestWalDegraded;
    event.value = not_durable;
    event.detail = "write-ahead log full: " + std::to_string(not_durable) +
                   " record(s) held in memory only (not crash-durable)" +
                   suffix;
    result.data.degradations.push_back(std::move(event));
  }
  return result;
}

ServerStats IngestServer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<ClientSummary> IngestServer::client_summaries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ClientSummary> out;
  out.reserve(clients_.size());
  for (const auto& [id, state] : clients_) {
    ClientSummary summary;
    summary.id = id;
    summary.announced = state.announced;
    summary.accepted = state.seen.size();
    summary.contiguous = state.contiguous;
    summary.done = state.done;
    summary.evicted = state.evicted;
    summary.not_durable = state.not_durable;
    out.push_back(summary);
  }
  return out;
}

}  // namespace numaprof::ingest
