// The daemon-side ingestion server (the heart of numaprofd).
//
// An IngestServer accepts framed shard traffic from any number of
// recorder clients, journals every accepted shard to a write-ahead log
// BEFORE acknowledging it, and finally folds everything through the
// analyzer's quorum-checked merge. It is built to degrade, never to
// abort: corrupt frame regions are skipped and counted, sequence gaps are
// NACKed so clients retransmit, per-client queues are bounded and answer
// BUSY under pressure, clients that stall mid-frame are evicted, and a
// full disk downgrades durability instead of dropping data. Whatever is
// still missing when the session ends surfaces as DegradationEvents in
// the merged analysis — computed as a pure function of the final ingest
// state, so a daemon killed mid-ingest and restarted from its WAL
// produces a byte-identical report.
//
// Determinism: the server has no clock. "Time" is a tick counter advanced
// by tick() (the loopback transport ticks once per exchange), so queue
// drain, backpressure, and eviction are reproducible in tests.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/profile_io.hpp"
#include "ingest/client.hpp"
#include "ingest/frame.hpp"
#include "ingest/wal.hpp"
#include "support/faultinject.hpp"
#include "support/telemetry.hpp"

namespace numaprof::ingest {

struct ServerOptions {
  /// Write-ahead log path; empty disables journaling (in-memory only —
  /// fine for tests, reckless for a daemon).
  std::string wal_path;
  /// Server-side faults (disk-full). Null injects nothing.
  support::FaultPlan* faults = nullptr;
  /// Accepted-but-unprocessed shards allowed per client before the server
  /// answers BUSY (backpressure). Only enforced on two-way connections; a
  /// one-way stream replay has nobody to push back on.
  std::size_t queue_capacity = 64;
  /// Shards moved from each client's queue to the merge index per tick();
  /// 0 processes immediately (no queue buildup).
  std::uint64_t drain_per_tick = 0;
  /// A connection stuck mid-frame (buffered partial bytes, no complete
  /// frame) for this many ticks is evicted as a stalled client.
  std::uint64_t evict_after_ticks = 64;
  /// Crash injection, forwarded to WalWriter::Options (recovery tests).
  std::uint64_t crash_after_appends = 0;
  /// Live observability: ingest degradations are published here as they
  /// happen (ring events), independent of the merged report. Optional.
  support::TelemetryHub* telemetry = nullptr;
};

/// Monotonic counters of everything the server saw (reports and tests).
struct ServerStats {
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_duplicate = 0;   // idempotent retransmits absorbed
  std::uint64_t corrupt_regions = 0;    // damaged byte regions skipped
  std::uint64_t sequence_nacks = 0;     // gap NACKs sent
  std::uint64_t busy_rejections = 0;    // frames refused with BUSY
  std::uint64_t protocol_errors = 0;    // nonsense frames (bad direction)
  std::uint64_t clients_evicted = 0;
  std::uint64_t telemetry_lines = 0;
  std::uint64_t bytes_ingested = 0;     // accepted shard payload bytes
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_torn_bytes = 0;     // truncated on recovery
  std::uint64_t wal_rejections = 0;     // appends refused (disk-full)
};

/// One client's final ingest state (test and status introspection).
struct ClientSummary {
  std::uint32_t id = 0;
  std::uint64_t announced = 0;  // shard count promised by hello (0 unknown)
  std::uint64_t accepted = 0;   // distinct shard sequences accepted
  std::uint64_t contiguous = 0; // highest gap-free sequence
  bool done = false;            // bye received
  bool evicted = false;
  std::uint64_t not_durable = 0;  // accepted shards the WAL refused
};

class IngestServer {
 public:
  /// Opening with a wal_path that holds a previous (possibly torn) log
  /// recovers it: the valid prefix is replayed into the ingest state, the
  /// torn tail is truncated, and new appends continue after it.
  explicit IngestServer(ServerOptions options = {});

  /// Opens a connection; feed() bytes into it. Thread-safe.
  using ConnectionId = std::uint64_t;
  ConnectionId connect();
  /// Drops a connection and any buffered partial frame (client went away).
  void disconnect(ConnectionId id);

  /// Feeds raw transport bytes into a connection. Complete valid frames
  /// are handled; damaged regions are skipped (and counted) up to the
  /// next plausible frame start. When `responses` is non-null (two-way
  /// transport) ACK/NACK/BUSY frames are appended to it as encoded bytes.
  void feed(ConnectionId id, std::string_view bytes, std::string* responses);

  /// One scheduling tick: drains bounded queues (drain_per_tick per
  /// client) and evicts connections stalled mid-frame too long.
  void tick();

  /// Replays a complete one-way client stream (a spool file). Capacity
  /// limits do not apply; a stream ending mid-frame is a stalled client.
  void ingest_stream(std::string_view bytes);

  /// Ends the session: evicts every connection still stuck mid-frame and
  /// drains all queues. Idempotent; merge() calls it implicitly.
  void finish();

  /// Writes every accepted shard into `spool_dir` (deterministic names,
  /// (client, sequence) order) and runs the analyzer's quorum-checked
  /// merge over them. Ingest-level losses — missing shards, corrupt
  /// regions, evicted clients, non-durable WAL records — are appended to
  /// the merged data as DegradationEvents, derived purely from the final
  /// ingest state so recovery replays reproduce them bit-for-bit.
  core::MergeResult merge(const std::string& spool_dir,
                          const PipelineOptions& options = {});

  ServerStats stats() const;
  /// Final per-client state, ascending client id.
  std::vector<ClientSummary> client_summaries() const;
  /// Reason WAL recovery stopped (empty for a clean or absent log).
  const std::string& wal_stop_reason() const noexcept {
    return wal_stop_reason_;
  }

 private:
  struct ClientState {
    std::uint64_t announced = 0;
    std::uint64_t contiguous = 0;
    std::set<std::uint64_t> seen;  // every accepted shard sequence
    std::deque<std::pair<std::uint64_t, std::string>> pending;
    bool hello_walled = false;
    bool done_walled = false;
    bool done = false;
    bool evicted = false;
    std::uint64_t not_durable = 0;
  };
  struct ConnState {
    std::string buffer;
    bool open = true;
    std::uint32_t last_client = 0;
    bool saw_client = false;
    std::uint64_t last_progress_tick = 0;
  };

  void replay(const WalReplay& replay);
  void handle_frame(const Frame& frame, std::string* responses);
  bool wal_append(WalRecordType type, std::uint32_t client,
                  std::uint64_t sequence, const std::string& payload,
                  ClientState& state);
  void drain_client(std::uint32_t id, ClientState& state,
                    std::uint64_t limit);
  void evict(ConnState& conn);
  void finish_locked();
  void publish_event(std::string_view detail, std::uint64_t value);
  void respond(std::string* responses, FrameType type, std::uint32_t client,
               std::uint64_t sequence, std::string payload = {});

  mutable std::mutex mutex_;
  ServerOptions options_;
  std::unique_ptr<WalWriter> wal_;
  std::string wal_stop_reason_;
  std::map<std::uint32_t, ClientState> clients_;
  /// The merge index: every accepted-and-processed shard payload.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> shards_;
  std::map<ConnectionId, ConnState> conns_;
  ConnectionId next_conn_ = 1;
  std::uint64_t tick_ = 0;
  ServerStats stats_;
};

/// Client-side Transport looped straight into an in-process IngestServer.
/// Each exchange advances the server by one tick — the deterministic
/// stand-in for time passing on the wire — so backpressure drains and
/// eviction sweeps happen while clients back off.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(IngestServer& server, bool tick_on_exchange = true)
      : server_(server),
        tick_(tick_on_exchange),
        conn_(server.connect()) {}

  std::string exchange(std::string_view bytes) override {
    if (tick_) server_.tick();
    std::string responses;
    server_.feed(conn_, bytes, &responses);
    return responses;
  }

  void reconnect() override {
    server_.disconnect(conn_);
    conn_ = server_.connect();
  }

 private:
  IngestServer& server_;
  bool tick_;
  IngestServer::ConnectionId conn_;
};

}  // namespace numaprof::ingest
