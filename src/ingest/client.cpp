#include "ingest/client.hpp"

#include <algorithm>

#include "core/profile_io.hpp"

namespace numaprof::ingest {

IngestClient::IngestClient(Transport& transport, ClientOptions options)
    : transport_(transport),
      options_(options),
      schedule_(options.retry, options.retry_seed) {}

std::string IngestClient::transmit(const Frame& frame) {
  std::string bytes = encode_frame(frame);
  support::FaultPlan* faults = options_.faults;
  if (faults != nullptr && faults->stalls_after(report_.frames_sent)) {
    // The sending process wedges mid-write: half a header escapes, then
    // silence. The server's eviction sweep deals with the leftovers.
    stalled_ = true;
    last_write_ok_ = false;
    transport_.exchange(
        std::string_view(bytes).substr(0, kFrameHeaderBytes / 2));
    return {};
  }
  ++report_.frames_sent;
  if (faults != nullptr && faults->drop_frame()) {
    ++report_.frames_dropped;
    last_write_ok_ = false;
    return {};
  }
  if (faults != nullptr && faults->corrupt_frame()) {
    ++report_.frames_corrupted;
    bytes = faults->corrupt_frame_bytes(std::move(bytes));
  }
  last_write_ok_ = true;
  std::string responses = transport_.exchange(bytes);
  if (faults != nullptr && faults->disconnects_after(report_.frames_sent)) {
    // The connection died under us; whatever the server answered is gone.
    transport_.reconnect();
    ++report_.reconnects;
    return {};
  }
  return responses;
}

IngestClient::Delivery IngestClient::deliver(const Frame& frame) {
  schedule_.begin_operation();
  for (;;) {
    const std::string responses = transmit(frame);
    if (stalled_) {
      report_.give_up_reason = "transport stalled mid-frame";
      return Delivery::kGaveUp;
    }
    if (!options_.expect_acks) return Delivery::kDelivered;

    bool acked = false;
    bool nacked = false;
    bool busy = false;
    std::uint64_t nack_seq = 0;
    std::string_view rest(responses);
    while (!rest.empty()) {
      const DecodeResult r = decode_frame(rest);
      if (r.status != DecodeStatus::kOk) break;  // in-process: trust ends here
      rest.remove_prefix(r.consumed);
      switch (r.frame.type) {
        case FrameType::kAck:
          acked = true;
          last_acked_ = std::max(last_acked_, r.frame.sequence);
          break;
        case FrameType::kNack:
          nacked = true;
          nack_seq = r.frame.sequence;
          break;
        case FrameType::kBusy:
          busy = true;
          break;
        case FrameType::kHello:
        case FrameType::kShard:
        case FrameType::kTelemetry:
        case FrameType::kBye:
          break;  // a server never sends these; ignore
      }
    }

    if (nacked) {
      // The server pinpointed its next expected sequence. Rewinding is
      // progress, but it still burns retry budget: a transport mangling
      // every frame must hit the deadline, not loop forever.
      const auto delay = schedule_.next_delay();
      if (!delay) {
        report_.give_up_reason = schedule_.deadline_exhausted()
                                     ? "retry deadline exhausted"
                                     : "retry attempts exhausted";
        return Delivery::kGaveUp;
      }
      report_.backoff_ticks += *delay;
      ++report_.retries;
      ++report_.rewinds;
      rewind_to_ = nack_seq;
      return Delivery::kRewind;
    }
    if (acked && (frame.type != FrameType::kShard ||
                  last_acked_ >= frame.sequence)) {
      return Delivery::kDelivered;
    }
    // Dropped outright, response lost to a disconnect, or BUSY: back off
    // and retransmit (sequence numbers make the duplicate harmless).
    if (busy) ++report_.busy_deferrals;
    const auto delay = schedule_.next_delay();
    if (!delay) {
      report_.give_up_reason = schedule_.deadline_exhausted()
                                   ? "retry deadline exhausted"
                                   : "retry attempts exhausted";
      return Delivery::kGaveUp;
    }
    report_.backoff_ticks += *delay;
    ++report_.retries;
  }
}

SendReport IngestClient::send_shards(
    const std::vector<std::string>& shards,
    const std::vector<std::string>& telemetry) {
  report_ = SendReport{};
  report_.shards_total = shards.size();
  last_acked_ = 0;
  rewind_to_ = 0;
  stalled_ = false;

  // frames[0] is hello; frames[s] is the shard with sequence s, so a NACK
  // for sequence s rewinds to index s directly.
  std::vector<Frame> frames;
  frames.reserve(shards.size() + 1);
  Frame hello;
  hello.type = FrameType::kHello;
  hello.client = options_.client_id;
  hello.payload = "shards=" + std::to_string(shards.size());
  frames.push_back(std::move(hello));
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Frame shard;
    shard.type = FrameType::kShard;
    shard.client = options_.client_id;
    shard.sequence = i + 1;
    shard.payload = shards[i];
    frames.push_back(std::move(shard));
  }

  bool failed = false;
  std::size_t i = 0;
  while (i < frames.size()) {
    const Frame& f = frames[i];
    if (f.type == FrameType::kShard && f.sequence <= last_acked_) {
      ++i;  // already acknowledged (resume / retransmit skip)
      continue;
    }
    switch (deliver(f)) {
      case Delivery::kDelivered:
        if (!options_.expect_acks && f.type == FrameType::kShard &&
            last_write_ok_) {
          ++report_.shards_delivered;
        }
        ++i;
        break;
      case Delivery::kRewind:
        i = rewind_to_ < frames.size() ? static_cast<std::size_t>(rewind_to_)
                                       : frames.size() - 1;
        break;
      case Delivery::kGaveUp:
        failed = true;
        break;
    }
    if (failed) break;
  }

  if (!failed) {
    // Telemetry is lossy by design: one try each, no retries, responses
    // ignored. A stall here still kills the session.
    for (const std::string& line : telemetry) {
      Frame t;
      t.type = FrameType::kTelemetry;
      t.client = options_.client_id;
      t.payload = line;
      transmit(t);
      if (stalled_) {
        report_.give_up_reason = "transport stalled mid-frame";
        failed = true;
        break;
      }
    }
  }
  if (!failed) {
    Frame bye;
    bye.type = FrameType::kBye;
    bye.client = options_.client_id;
    bye.sequence = shards.size();
    failed = deliver(bye) != Delivery::kDelivered;
  }

  if (options_.expect_acks) {
    report_.shards_delivered =
        std::min<std::uint64_t>(last_acked_, shards.size());
  }
  report_.complete =
      !failed && report_.shards_delivered == report_.shards_total;
  if (report_.complete) report_.give_up_reason.clear();
  return report_;
}

SendReport IngestClient::send_session(
    const core::SessionData& data,
    const std::vector<std::string>& telemetry) {
  return send_shards(
      core::ProfileWriter(options_.shard_format).thread_shards(data),
      telemetry);
}

std::string encode_client_stream(const std::vector<std::string>& shards,
                                 std::uint32_t client_id,
                                 support::FaultPlan* faults,
                                 const std::vector<std::string>& telemetry) {
  SpoolTransport spool;
  ClientOptions options;
  options.client_id = client_id;
  options.faults = faults;
  options.expect_acks = false;
  IngestClient client(spool, options);
  client.send_shards(shards, telemetry);
  return spool.take();
}

}  // namespace numaprof::ingest
