#include "ingest/frame.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"

namespace numaprof::ingest {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

/// Offset of the next magic at or after `from`, or npos.
std::size_t find_magic(std::string_view buffer, std::size_t from) {
  return buffer.find(std::string_view(kFrameMagic, 4), from);
}

/// A corrupt prefix consumes up to the next possible frame start so the
/// caller can resynchronize. Never consumes zero (that would spin).
std::size_t resync_consumed(std::string_view buffer) {
  const std::size_t next = find_magic(buffer, 1);
  return next == std::string_view::npos ? buffer.size() : next;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t seed) {
  // The table-driven IEEE implementation moved to support/hash.hpp so the
  // binary profile format (core/format) shares it without linking ingest;
  // this wrapper keeps the ingest surface and its callers unchanged.
  return support::crc32(bytes, seed);
}

std::string_view to_string(FrameType t) noexcept {
  switch (t) {
    case FrameType::kHello: return "hello";
    case FrameType::kShard: return "shard";
    case FrameType::kTelemetry: return "telemetry";
    case FrameType::kBye: return "bye";
    case FrameType::kAck: return "ack";
    case FrameType::kNack: return "nack";
    case FrameType::kBusy: return "busy";
  }
  return "unknown";
}

std::string_view to_string(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadCrc: return "bad-crc";
  }
  return "unknown";
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw Error(ErrorKind::kIngest, {}, "frame", 0,
                "frame payload of " + std::to_string(frame.payload.size()) +
                    " bytes exceeds the " +
                    std::to_string(kMaxFramePayload) + "-byte limit");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  out.append(kFrameMagic, 4);
  out.push_back(static_cast<char>(frame.type));
  out.append(3, '\0');
  put_u32(out, frame.client);
  put_u64(out, frame.sequence);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  put_u32(out, crc32(out));
  return out;
}

DecodeResult decode_frame(std::string_view buffer) {
  DecodeResult result;
  if (buffer.size() < kFrameHeaderBytes) {
    // A short buffer that cannot grow into a frame (wrong magic already)
    // is corrupt, not incomplete.
    const std::size_t check = std::min<std::size_t>(buffer.size(), 4);
    if (std::string_view(kFrameMagic, check) != buffer.substr(0, check)) {
      result.status = DecodeStatus::kBadMagic;
      result.consumed = resync_consumed(buffer);
      return result;
    }
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  if (buffer.substr(0, 4) != std::string_view(kFrameMagic, 4)) {
    result.status = DecodeStatus::kBadMagic;
    result.consumed = resync_consumed(buffer);
    return result;
  }
  const auto type_raw = static_cast<unsigned char>(buffer[4]);
  if (type_raw >= kFrameTypeCount) {
    result.status = DecodeStatus::kBadType;
    result.consumed = resync_consumed(buffer);
    return result;
  }
  const std::uint32_t payload_len = get_u32(buffer, 20);
  if (payload_len > kMaxFramePayload) {
    result.status = DecodeStatus::kBadLength;
    result.consumed = resync_consumed(buffer);
    return result;
  }
  const std::size_t total =
      kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (buffer.size() < total) {
    result.status = DecodeStatus::kNeedMore;
    return result;
  }
  const std::uint32_t want =
      crc32(buffer.substr(0, kFrameHeaderBytes + payload_len));
  const std::uint32_t got = get_u32(buffer, kFrameHeaderBytes + payload_len);
  if (want != got) {
    result.status = DecodeStatus::kBadCrc;
    result.consumed = resync_consumed(buffer);
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame.type = static_cast<FrameType>(type_raw);
  result.frame.client = get_u32(buffer, 8);
  result.frame.sequence = get_u64(buffer, 12);
  result.frame.payload =
      std::string(buffer.substr(kFrameHeaderBytes, payload_len));
  result.consumed = total;
  return result;
}

}  // namespace numaprof::ingest
