// The recorder-side ingestion client.
//
// An IngestClient turns a recorded session into framed shard traffic and
// delivers it through a Transport, surviving every fault the transport can
// throw at it: dropped frames are retried with jittered exponential
// backoff (support/retry.hpp), corrupted frames are retransmitted when the
// server NACKs, busy servers are backed off from, and disconnects resume
// from the last acknowledged sequence number. Sequence numbers make every
// retransmit idempotent — a duplicate is acknowledged, never double
// counted. When the retry budget (attempts or session deadline) is
// exhausted the client gives up GRACEFULLY: it reports what was delivered
// and what was lost instead of aborting, and the server degrades the
// merged analysis accordingly.
//
// Time is abstract: backoff delays are accounted ticks, not wall-clock
// sleeps, so every schedule — and therefore every golden test — is
// deterministic given the retry seed and the fault plan seed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "ingest/frame.hpp"
#include "support/faultinject.hpp"
#include "support/retry.hpp"

namespace numaprof::core {
struct SessionData;
}  // namespace numaprof::core

namespace numaprof::ingest {

/// Where encoded frames go. Implementations are deterministic and
/// in-process (a loopback into an IngestServer, a spool file, a test
/// double); the lock-step exchange() boundary stands in for a socket
/// without introducing wall-clock nondeterminism.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers `bytes` (zero or more encoded frames, possibly damaged by
  /// fault injection) to the peer and returns whatever response frames the
  /// peer produced, as raw bytes. One-way transports return "".
  virtual std::string exchange(std::string_view bytes) = 0;

  /// Tears down and re-establishes the connection. The peer discards any
  /// buffered partial frame; in-flight responses are lost.
  virtual void reconnect() {}
};

/// A one-way Transport that appends every byte to a string — the spool
/// format `record_app --daemon-spool` writes and `numaprofd` replays.
class SpoolTransport final : public Transport {
 public:
  std::string exchange(std::string_view bytes) override {
    spooled_.append(bytes);
    return {};
  }
  const std::string& spooled() const noexcept { return spooled_; }
  std::string take() noexcept { return std::move(spooled_); }

 private:
  std::string spooled_;
};

struct ClientOptions {
  /// Distinguishes this recorder among a daemon's clients; every frame
  /// carries it.
  std::uint32_t client_id = 1;
  support::RetryPolicy retry;
  /// Seeds the backoff jitter (support::Rng); same seed, same schedule.
  std::uint64_t retry_seed = 1;
  /// Client-side transport faults (frame-drop / frame-corrupt / stall /
  /// disconnect). Null injects nothing.
  support::FaultPlan* faults = nullptr;
  /// True (default) for two-way transports: wait for ACK/NACK/BUSY and
  /// retry. False for one-way spool streams: fire and forget, no retries
  /// (there is nobody to answer).
  bool expect_acks = true;
  /// Encoding of the shards send_session() serializes. The server's
  /// merge autodetects per shard, so clients can switch independently;
  /// kBinary shrinks the wire traffic and the daemon's spool.
  ProfileFormat shard_format = ProfileFormat::kText;
};

/// What one session transfer accomplished — the client-side half of
/// graceful degradation. Everything here is deterministic given the seeds.
struct SendReport {
  std::uint64_t shards_total = 0;
  /// Shards the server acknowledged (== shards_total on a clean run).
  /// Without acks: shards actually written to the transport (drops and
  /// stalls excluded — delivery is unknowable one-way).
  std::uint64_t shards_delivered = 0;
  std::uint64_t frames_sent = 0;  // includes retransmits, hello and bye
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t retries = 0;
  std::uint64_t rewinds = 0;          // NACK-driven retransmit runs
  std::uint64_t busy_deferrals = 0;   // BUSY responses absorbed
  std::uint64_t reconnects = 0;
  std::uint64_t backoff_ticks = 0;    // simulated ticks spent backing off
  /// True when hello, every shard, and bye were all acknowledged (or, for
  /// a one-way stream, fully written).
  bool complete = false;
  /// Why the transfer degraded (empty when complete): attempts exhausted,
  /// deadline exhausted, or transport stalled.
  std::string give_up_reason;
};

class IngestClient {
 public:
  IngestClient(Transport& transport, ClientOptions options);

  /// Serializes `data` into per-thread shards (ProfileWriter::
  /// thread_shards, in options.shard_format) and streams hello, shards,
  /// telemetry, bye.
  SendReport send_session(const core::SessionData& data,
                          const std::vector<std::string>& telemetry = {});

  /// Lower-level: streams explicit shard payloads. `telemetry` lines ride
  /// along fire-and-forget (lossy by design, never retried).
  SendReport send_shards(const std::vector<std::string>& shards,
                         const std::vector<std::string>& telemetry = {});

 private:
  enum class Delivery { kDelivered, kRewind, kGaveUp };

  /// Encodes and transmits one frame, applying client-side faults.
  /// Returns the peer's response bytes ("" when dropped or one-way).
  std::string transmit(const Frame& frame);
  /// Delivers one frame reliably (retry loop). Sets rewind_to_ on NACK.
  Delivery deliver(const Frame& frame);

  Transport& transport_;
  ClientOptions options_;
  support::RetrySchedule schedule_;
  SendReport report_;
  std::uint64_t last_acked_ = 0;   // highest contiguous server-acked seq
  std::uint64_t rewind_to_ = 0;    // NACK target (next seq to resend)
  bool stalled_ = false;           // stall fault fired: client is dead
  bool last_write_ok_ = false;     // last frame fully reached the wire
};

/// Encodes a complete one-way client stream (hello, shards, telemetry,
/// bye) with client-side faults applied — the bytes a spool file holds.
std::string encode_client_stream(const std::vector<std::string>& shards,
                                 std::uint32_t client_id,
                                 support::FaultPlan* faults = nullptr,
                                 const std::vector<std::string>& telemetry = {});

}  // namespace numaprof::ingest
