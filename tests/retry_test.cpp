// support/retry.hpp: the deterministic backoff schedule the ingestion
// client leans on. Determinism is the contract under test — same seed,
// same jitter sequence, same give-up point — plus the budget semantics:
// per-operation attempt caps and the session-wide tick deadline.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "support/retry.hpp"

namespace numaprof::support {
namespace {

std::vector<std::uint64_t> drain(RetrySchedule& schedule) {
  std::vector<std::uint64_t> delays;
  while (const auto delay = schedule.next_delay()) delays.push_back(*delay);
  return delays;
}

TEST(RetrySchedule, SameSeedSameJitterSequence) {
  const RetryPolicy policy{.max_attempts = 8, .deadline = 0};
  RetrySchedule a(policy, 42);
  RetrySchedule b(policy, 42);
  a.begin_operation();
  b.begin_operation();
  EXPECT_EQ(drain(a), drain(b));
}

TEST(RetrySchedule, DifferentSeedsDesynchronize) {
  const RetryPolicy policy{.max_attempts = 8, .deadline = 0};
  RetrySchedule a(policy, 1);
  RetrySchedule b(policy, 2);
  a.begin_operation();
  b.begin_operation();
  EXPECT_NE(drain(a), drain(b));
}

TEST(RetrySchedule, DelaysGrowExponentiallyWithinJitterBand) {
  const RetryPolicy policy{.max_attempts = 12,
                           .base_delay = 16,
                           .max_delay = 4096,
                           .multiplier = 2.0,
                           .deadline = 0};
  RetrySchedule schedule(policy, 7);
  schedule.begin_operation();
  std::uint64_t cap = policy.base_delay;
  for (const std::uint64_t delay : drain(schedule)) {
    // Full jitter lands in [cap/2, cap].
    EXPECT_GE(delay, cap / 2);
    EXPECT_LE(delay, cap);
    cap = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(static_cast<double>(cap) *
                                   policy.multiplier),
        policy.max_delay);
  }
}

TEST(RetrySchedule, AttemptsExhaustAtMaxAttempts) {
  const RetryPolicy policy{.max_attempts = 4, .deadline = 0};
  RetrySchedule schedule(policy, 3);
  schedule.begin_operation();
  // max_attempts = 4 means the first try plus three retries.
  EXPECT_EQ(drain(schedule).size(), 3u);
  EXPECT_EQ(schedule.attempts(), 3u);
  EXPECT_FALSE(schedule.deadline_exhausted());
}

TEST(RetrySchedule, BeginOperationResetsAttemptsNotDeadline) {
  const RetryPolicy policy{.max_attempts = 3, .deadline = 0};
  RetrySchedule schedule(policy, 9);
  schedule.begin_operation();
  drain(schedule);
  const std::uint64_t spent_after_first = schedule.spent();
  EXPECT_GT(spent_after_first, 0u);
  schedule.begin_operation();
  EXPECT_EQ(schedule.attempts(), 0u);
  EXPECT_TRUE(schedule.next_delay().has_value());
  // The deadline budget keeps accruing across operations.
  EXPECT_GT(schedule.spent(), spent_after_first);
}

TEST(RetrySchedule, DeadlineExhaustionRefusesFurtherRetries) {
  // A deadline smaller than one base delay: the very first retry is
  // refused and the schedule reports exhaustion ever after.
  const RetryPolicy policy{.max_attempts = 100,
                           .base_delay = 64,
                           .max_delay = 64,
                           .deadline = 16};
  RetrySchedule schedule(policy, 5);
  schedule.begin_operation();
  EXPECT_FALSE(schedule.next_delay().has_value());
  EXPECT_TRUE(schedule.deadline_exhausted());
  schedule.begin_operation();
  EXPECT_FALSE(schedule.next_delay().has_value())
      << "a fresh operation must not revive an exhausted session";
}

TEST(RetrySchedule, DeadlineTerminatesManyOperations) {
  // Many operations against a finite session budget: total spent ticks
  // never exceed the deadline, and once exhausted it stays exhausted.
  const RetryPolicy policy{.max_attempts = 10,
                           .base_delay = 32,
                           .max_delay = 512,
                           .deadline = 2000};
  RetrySchedule schedule(policy, 11);
  int refused_operations = 0;
  for (int op = 0; op < 50; ++op) {
    schedule.begin_operation();
    if (drain(schedule).size() < 9u) ++refused_operations;
    EXPECT_LE(schedule.spent(), policy.deadline);
  }
  EXPECT_TRUE(schedule.deadline_exhausted());
  EXPECT_GT(refused_operations, 0);
}

TEST(RetrySchedule, ZeroDeadlineMeansUnlimited) {
  const RetryPolicy policy{.max_attempts = 50,
                           .base_delay = 4096,
                           .max_delay = 4096,
                           .deadline = 0};
  RetrySchedule schedule(policy, 13);
  schedule.begin_operation();
  EXPECT_EQ(drain(schedule).size(), 49u);
  EXPECT_FALSE(schedule.deadline_exhausted());
}

}  // namespace
}  // namespace numaprof::support
