// The live telemetry layer (support/telemetry.hpp): ring wraparound and
// drop accounting, detail truncation, concurrent publishers against a
// concurrent snapshot consumer (the TSan job runs this), hub slot reuse,
// and the deterministic snapshot fold.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/telemetry.hpp"

namespace numaprof::support {
namespace {

TelemetryEvent make_event(TelemetryEventKind kind, std::uint32_t tid,
                          std::uint64_t time, std::uint64_t value = 0) {
  TelemetryEvent event;
  event.kind = kind;
  event.tid = tid;
  event.time = time;
  event.value = value;
  return event;
}

TEST(TelemetryRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TelemetryRing(0, 1, 0).event_capacity(), 8u);
  EXPECT_EQ(TelemetryRing(0, 1, 5).event_capacity(), 8u);
  EXPECT_EQ(TelemetryRing(0, 1, 9).event_capacity(), 16u);
  EXPECT_EQ(TelemetryRing(0, 1, 256).event_capacity(), 256u);
}

TEST(TelemetryRing, CountersAccumulate) {
  TelemetryRing ring(3, 2, 8);
  ring.add(TelemetryCounter::kSamples);
  ring.add(TelemetryCounter::kSamples, 4);
  ring.add(TelemetryCounter::kInstructions, 100);
  EXPECT_EQ(ring.counter(TelemetryCounter::kSamples), 5u);
  EXPECT_EQ(ring.counter(TelemetryCounter::kInstructions), 100u);
  EXPECT_EQ(ring.counter(TelemetryCounter::kDroppedSamples), 0u);
  EXPECT_EQ(ring.tid(), 3u);
}

TEST(TelemetryRing, DomainColumnsIgnoreOutOfRange) {
  TelemetryRing ring(0, 2, 8);
  ring.add_domain_sample(0, false);
  ring.add_domain_sample(1, true);
  ring.add_domain_sample(1, true);
  ring.add_domain_sample(7, false);  // out of range: dropped, no crash
  EXPECT_EQ(ring.domain_match(0), 1u);
  EXPECT_EQ(ring.domain_mismatch(1), 2u);
  EXPECT_EQ(ring.domain_match(7), 0u);
}

TEST(TelemetryRing, FullRingDropsNewestAndCountsIt) {
  TelemetryRing ring(0, 1, 8);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const bool kept = ring.publish(
        make_event(TelemetryEventKind::kPeriodRetune, 0, i, i));
    EXPECT_EQ(kept, i < 8) << "event " << i;
  }
  EXPECT_EQ(ring.counter(TelemetryCounter::kEventsDropped), 4u);

  std::vector<TelemetryEvent> drained;
  ring.drain(drained);
  ASSERT_EQ(drained.size(), 8u);
  // Newest-loses: the oldest 8 survive, in FIFO order.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(drained[i].time, i);
    EXPECT_EQ(drained[i].value, i);
  }
}

TEST(TelemetryRing, DrainFreesCapacityForNewEvents) {
  TelemetryRing ring(0, 1, 8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ring.publish(make_event(TelemetryEventKind::kThreadStart, 0, i));
  }
  std::vector<TelemetryEvent> drained;
  ring.drain(drained);
  EXPECT_EQ(drained.size(), 8u);

  // Wraparound: the ring is reusable after a drain, indices keep growing.
  for (std::uint64_t i = 100; i < 103; ++i) {
    EXPECT_TRUE(
        ring.publish(make_event(TelemetryEventKind::kThreadFinish, 0, i)));
  }
  drained.clear();
  ring.drain(drained);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].time, 100u);
  EXPECT_EQ(drained[2].time, 102u);
  EXPECT_EQ(ring.counter(TelemetryCounter::kEventsDropped), 0u);
}

TEST(TelemetryEventDetail, TruncatesToInlineBuffer) {
  TelemetryEvent event;
  event.set_detail("short");
  EXPECT_EQ(event.detail_view(), "short");
  const std::string long_text(200, 'x');
  event.set_detail(long_text);
  EXPECT_EQ(event.detail_view().size(), sizeof(event.detail) - 1);
  EXPECT_EQ(event.detail_view(), long_text.substr(0, sizeof(event.detail) - 1));
}

TEST(TelemetryHub, RingPerThreadAndOverflowSlot) {
  TelemetryHub hub;
  TelemetryRing& r0 = hub.ring(0);
  TelemetryRing& r7 = hub.ring(7);
  EXPECT_NE(&r0, &r7);
  EXPECT_EQ(&r0, &hub.ring(0));  // stable on repeat contact
  // Out-of-range tids share the overflow ring (last slot) instead of
  // being lost.
  TelemetryRing& overflow_a = hub.ring(TelemetryHub::kMaxThreads + 5);
  TelemetryRing& overflow_b = hub.ring(TelemetryHub::kMaxThreads + 900);
  EXPECT_EQ(&overflow_a, &overflow_b);
  EXPECT_EQ(overflow_a.tid(), TelemetryHub::kMaxThreads - 1);
  EXPECT_EQ(hub.ring_count(), 3u);
}

TEST(TelemetryHub, DomainCountAppliesToRingsCreatedLater) {
  TelemetryHub hub;
  TelemetryRing& before = hub.ring(0);
  hub.set_domain_count(4);
  TelemetryRing& after = hub.ring(1);
  EXPECT_EQ(before.domain_count(), 1u);
  EXPECT_EQ(after.domain_count(), 4u);
}

TEST(TelemetryHub, SnapshotFoldIsDeterministic) {
  TelemetryConfig config;
  config.domain_count = 2;
  TelemetryHub hub(config);
  // Touch rings in a scrambled order; the fold must ascend by tid anyway.
  for (const std::uint32_t tid : {9u, 2u, 5u}) {
    TelemetryRing& ring = hub.ring(tid);
    ring.add(TelemetryCounter::kSamples, tid);
    ring.add_domain_sample(tid % 2, tid == 5);
  }
  // Same time on two rings: the (time, tid, kind) sort breaks the tie.
  hub.ring(5).publish(make_event(TelemetryEventKind::kThreadStart, 5, 40));
  hub.ring(2).publish(make_event(TelemetryEventKind::kThreadFinish, 2, 40));
  hub.ring(9).publish(make_event(TelemetryEventKind::kPeriodRetune, 9, 10));

  const TelemetrySnapshot snap = hub.snapshot(123);
  EXPECT_EQ(snap.sequence, 1u);
  EXPECT_EQ(snap.time, 123u);
  ASSERT_EQ(snap.threads.size(), 3u);
  EXPECT_EQ(snap.threads[0].tid, 2u);
  EXPECT_EQ(snap.threads[1].tid, 5u);
  EXPECT_EQ(snap.threads[2].tid, 9u);
  EXPECT_EQ(snap.total(TelemetryCounter::kSamples), 16u);
  EXPECT_EQ(snap.domain_match[0], 1u);   // tid 2
  EXPECT_EQ(snap.domain_match[1], 1u);   // tid 9
  EXPECT_EQ(snap.domain_mismatch[1], 1u);  // tid 5 mismatch

  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.events[0].time, 10u);
  EXPECT_EQ(snap.events[1].tid, 2u);  // time tie: lower tid first
  EXPECT_EQ(snap.events[2].tid, 5u);

  // Events are drained exactly once; counters stay cumulative.
  const TelemetrySnapshot again = hub.snapshot(456);
  EXPECT_EQ(again.sequence, 2u);
  EXPECT_TRUE(again.events.empty());
  EXPECT_EQ(again.total(TelemetryCounter::kSamples), 16u);
}

TEST(TelemetryHub, DropFraction) {
  TelemetryHub hub;
  EXPECT_EQ(hub.snapshot().drop_fraction(), 0.0);
  hub.ring(0).add(TelemetryCounter::kSamples, 3);
  hub.ring(0).add(TelemetryCounter::kDroppedSamples, 1);
  EXPECT_DOUBLE_EQ(hub.snapshot().drop_fraction(), 0.25);
}

// The concurrency contract under a real race: N publisher threads hammer
// their own rings (counters + events) while the main thread snapshots
// concurrently. Run under TSan this is the lock-freedom proof; under the
// default build it checks conservation (nothing lost, nothing invented).
TEST(TelemetryHub, ConcurrentPublishersAndSnapshotConsumer) {
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint64_t kEventsPerThread = 2000;
  TelemetryHub hub(TelemetryConfig{.domain_count = 2, .event_capacity = 64});

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hub, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      TelemetryRing& ring = hub.ring(t);
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        ring.add(TelemetryCounter::kSamples);
        ring.add_domain_sample(static_cast<std::uint32_t>(i % 2), i % 3 == 0);
        TelemetryEvent event;
        event.kind = TelemetryEventKind::kPeriodRetune;
        event.tid = t;
        event.time = i;
        event.value = i;
        event.set_detail("concurrent publish");
        ring.publish(event);
      }
    });
  }
  go.store(true, std::memory_order_release);

  std::uint64_t drained = 0;
  for (int round = 0; round < 50; ++round) {
    drained += hub.snapshot(round).events.size();
  }
  for (std::thread& w : workers) w.join();

  const TelemetrySnapshot final_snap = hub.snapshot(999);
  drained += final_snap.events.size();
  // Conservation: every published event was either drained exactly once
  // or counted as dropped; every counter increment is visible.
  EXPECT_EQ(drained + final_snap.total(TelemetryCounter::kEventsDropped),
            kThreads * kEventsPerThread);
  EXPECT_EQ(final_snap.total(TelemetryCounter::kSamples),
            kThreads * kEventsPerThread);
  EXPECT_EQ(final_snap.domain_match[0] + final_snap.domain_match[1] +
                final_snap.domain_mismatch[0] + final_snap.domain_mismatch[1],
            kThreads * kEventsPerThread);
  EXPECT_EQ(final_snap.threads.size(), kThreads);
}

TEST(TelemetryHot, SpaceSavingBoundsSlotsAndEvicts) {
  TelemetryRing ring(0, 2, 8);
  // Fill every slot of the pages table with distinct keys.
  for (std::uint64_t key = 0; key < kHotSlotsPerTable; ++key) {
    ring.add_hot(HotTableKind::kPages, key, 0, false);
    ring.add_hot(HotTableKind::kPages, key, 0, false);
  }
  std::vector<HotCounter> rows;
  ring.collect_hot(HotTableKind::kPages, rows);
  EXPECT_EQ(rows.size(), kHotSlotsPerTable);

  // A new key on a full table evicts the current minimum and inherits
  // min+1 (the Space-Saving overestimate bound).
  ring.add_hot(HotTableKind::kPages, 0xdead, 1, true);
  rows.clear();
  ring.collect_hot(HotTableKind::kPages, rows);
  EXPECT_EQ(rows.size(), kHotSlotsPerTable);
  bool found = false;
  for (const HotCounter& row : rows) {
    if (row.key == 0xdead) {
      found = true;
      EXPECT_EQ(row.domain, 1u);
      EXPECT_EQ(row.count, 3u);  // evicted min (2) + 1
      EXPECT_EQ(row.mismatch, 1u);
    }
  }
  EXPECT_TRUE(found);

  // Same key, different domain is a distinct entry; same (key, domain)
  // bumps in place.
  TelemetryRing fresh(0, 2, 8);
  fresh.add_hot(HotTableKind::kVariables, 7, 0, false, "a[]");
  fresh.add_hot(HotTableKind::kVariables, 7, 1, true, "a[]");
  fresh.add_hot(HotTableKind::kVariables, 7, 0, true, "a[]");
  rows.clear();
  fresh.collect_hot(HotTableKind::kVariables, rows);
  ASSERT_EQ(rows.size(), 2u);
  std::uint64_t total = 0;
  for (const HotCounter& row : rows) {
    total += row.count;
    EXPECT_EQ(row.label, "a[]");
  }
  EXPECT_EQ(total, 3u);
}

TEST(TelemetryHot, HubSnapshotAggregatesAndRanksHotTables) {
  TelemetryConfig config;
  config.domain_count = 2;
  TelemetryHub hub(config);
  // Two threads touch overlapping pages; the fold must merge (key,
  // domain) groups across rings and rank per domain by count.
  for (int i = 0; i < 5; ++i) hub.ring(1).add_hot(HotTableKind::kPages, 0x10, 0, false);
  for (int i = 0; i < 3; ++i) hub.ring(2).add_hot(HotTableKind::kPages, 0x10, 0, true);
  for (int i = 0; i < 4; ++i) hub.ring(2).add_hot(HotTableKind::kPages, 0x20, 0, false);
  hub.ring(1).add_hot(HotTableKind::kPages, 0x30, 1, true);
  hub.ring(1).add_hot(HotTableKind::kVariables, 3, 0, false, "grid");
  hub.ring(2).add_hot(HotTableKind::kPaths, 11, 0, false, "main>solve");

  const TelemetrySnapshot snap = hub.snapshot(50);
  ASSERT_EQ(snap.hot_pages.size(), 3u);
  // Domain 0 first, ranked by merged count (8 for 0x10, 4 for 0x20).
  EXPECT_EQ(snap.hot_pages[0].key, 0x10u);
  EXPECT_EQ(snap.hot_pages[0].domain, 0u);
  EXPECT_EQ(snap.hot_pages[0].count, 8u);
  EXPECT_EQ(snap.hot_pages[0].mismatch, 3u);
  EXPECT_EQ(snap.hot_pages[1].key, 0x20u);
  EXPECT_EQ(snap.hot_pages[2].domain, 1u);
  ASSERT_EQ(snap.hot_vars.size(), 1u);
  EXPECT_EQ(snap.hot_vars[0].label, "grid");
  // Paths stay per thread (they are a drill-down, not a global table).
  ASSERT_EQ(snap.threads.size(), 2u);
  EXPECT_TRUE(snap.hot_pages == hub.snapshot(51).hot_pages)
      << "fold must be deterministic across snapshots";
  ASSERT_EQ(snap.threads[1].hot_paths.size(), 1u);
  EXPECT_EQ(snap.threads[1].hot_paths[0].label, "main>solve");
}

TEST(TelemetryHot, TopKTruncationPerDomain) {
  TelemetryHub hub(TelemetryConfig{.domain_count = 2, .event_capacity = 8});
  // 12 distinct keys per domain, one domain per ring (12 fits the 16
  // slots, so no Space-Saving noise): the snapshot keeps only the
  // kHotTopK hottest per domain.
  for (std::uint64_t key = 0; key < 12; ++key) {
    for (std::uint64_t n = 0; n <= key; ++n) {
      hub.ring(0).add_hot(HotTableKind::kPages, key, 0, false);
      hub.ring(1).add_hot(HotTableKind::kPages, 100 + key, 1, false);
    }
  }
  const TelemetrySnapshot snap = hub.snapshot(1);
  std::size_t domain0 = 0;
  std::size_t domain1 = 0;
  for (const HotCounter& row : snap.hot_pages) {
    (row.domain == 0 ? domain0 : domain1)++;
  }
  EXPECT_EQ(domain0, kHotTopK);
  EXPECT_EQ(domain1, kHotTopK);
  // The survivors are the hottest: counts 12..5 for domain 0.
  EXPECT_EQ(snap.hot_pages[0].count, 12u);
  EXPECT_EQ(snap.hot_pages[kHotTopK - 1].count, 5u);
}

// Multi-threaded publishers vs. a concurrent snapshot consumer, hot
// tables included; under TSan (the CI job runs this binary) this is the
// data-race proof for the hot-table claim/evict protocol. The final
// quiesced snapshot must also be internally ordered: domains ascend,
// counts descend within a domain.
TEST(TelemetryHub, ConcurrentHotPublishersKeepSnapshotsOrdered) {
  constexpr std::uint32_t kThreads = 6;
  constexpr std::uint64_t kTouchesPerThread = 4000;
  TelemetryHub hub(TelemetryConfig{.domain_count = 2, .event_capacity = 16});

  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hub, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      TelemetryRing& ring = hub.ring(t);
      for (std::uint64_t i = 0; i < kTouchesPerThread; ++i) {
        ring.add_hot(HotTableKind::kPages, i % 24,
                     static_cast<std::uint32_t>(i % 2), i % 5 == 0);
        ring.add_hot(HotTableKind::kVariables, i % 7, 0, false, "v[]");
        ring.add(TelemetryCounter::kMemorySamples);
      }
    });
  }
  go.store(true, std::memory_order_release);

  const auto check_ordered = [](const TelemetrySnapshot& snap) {
    for (std::size_t i = 1; i < snap.hot_pages.size(); ++i) {
      const HotCounter& a = snap.hot_pages[i - 1];
      const HotCounter& b = snap.hot_pages[i];
      ASSERT_LE(a.domain, b.domain);
      if (a.domain == b.domain) ASSERT_GE(a.count, b.count);
    }
    for (const ThreadTelemetry& thread : snap.threads) {
      for (std::size_t i = 1; i < thread.hot_paths.size(); ++i) {
        ASSERT_GE(thread.hot_paths[i - 1].count, thread.hot_paths[i].count);
      }
    }
  };
  // Snapshots taken mid-race must already satisfy the ordering contract
  // (values are racy, ordering is not).
  for (int round = 0; round < 30; ++round) check_ordered(hub.snapshot(round));
  for (std::thread& w : workers) w.join();

  const TelemetrySnapshot final_snap = hub.snapshot(999);
  check_ordered(final_snap);
  EXPECT_EQ(final_snap.total(TelemetryCounter::kMemorySamples),
            kThreads * kTouchesPerThread);
  EXPECT_FALSE(final_snap.hot_pages.empty());
  EXPECT_FALSE(final_snap.hot_vars.empty());
  EXPECT_EQ(final_snap.hot_vars[0].label, "v[]");
}

}  // namespace
}  // namespace numaprof::support
