// Advisor edge cases around the §4.2 severity gate and degenerate inputs:
// lpi_NUMA exactly at the 0.1 threshold, empty/unsampled variables, and
// the single-thread-never-gets-a-fix rule (enforced at the fusion layer,
// where static evidence can overrule it).
#include <gtest/gtest.h>

#include <memory>

#include "core/advisor.hpp"
#include "core/metrics.hpp"

namespace numaprof::core {
namespace {

/// One-variable synthetic session (the advisor_test.cpp harness).
struct EdgeSession {
  explicit EdgeSession(std::uint64_t pages = 50) {
    data.domain_count = 4;
    data.core_count = 8;
    data.mechanism = pmu::Mechanism::kIbs;

    Variable v;
    v.id = 0;
    v.name = "target";
    v.kind = VariableKind::kHeap;
    v.start = 0x100000;
    v.size = pages * simos::kPageBytes;
    v.page_count = pages;
    v.variable_node = data.cct.child(kRootNode, NodeKind::kVariable, 0);
    data.variables.push_back(v);

    data.stores.emplace_back(4);
    data.totals.emplace_back();
    data.totals[0].per_domain.assign(4, 0);
    data.totals[0].samples = 1000;
    data.totals[0].memory_samples = 800;
    data.totals[0].mismatch = 700;
    data.totals[0].match = 100;
    data.totals[0].remote_latency = 200000;
    data.totals[0].total_latency = 210000;
    data.totals[0].instructions = 100000;
  }

  void add_range(simrt::ThreadId tid, double lo, double hi,
                 std::uint64_t weight = 100) {
    const Variable& v = data.variables[0];
    const auto extent = static_cast<double>(v.extent_bytes());
    const auto begin = static_cast<std::uint64_t>(lo * extent);
    const auto end = static_cast<std::uint64_t>(hi * extent);
    const std::uint64_t step = std::max<std::uint64_t>(1, (end - begin) / 16);
    for (std::uint64_t off = begin; off < end; off += step) {
      const std::uint32_t bin = data.address_centric.bin_of(v, v.start + off);
      BinStats stats;
      for (std::uint64_t w = 0; w < weight / 16 + 1; ++w) {
        stats.update(v.start + off, 10.0);
      }
      data.address_centric.insert(
          BinKey{.context = kWholeProgram, .variable = 0, .bin = bin,
                 .tid = tid},
          stats);
    }
  }

  Advisor advisor() {
    analyzer = std::make_unique<Analyzer>(data);
    return Advisor(*analyzer);
  }

  SessionData data;
  std::unique_ptr<Analyzer> analyzer;
};

TEST(AdvisorEdge, LpiExactlyAtThresholdDoesNotWarrant) {
  // The §4.2 rule is a strict inequality: lpi_NUMA must EXCEED 0.1.
  EdgeSession s;
  s.data.totals[0].remote_latency = 100;  // lpi = 100/1000 = 0.1 exactly
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0);
  }
  const Advisor advisor = s.advisor();
  ASSERT_TRUE(s.analyzer->program().lpi.has_value());
  EXPECT_DOUBLE_EQ(*s.analyzer->program().lpi, kLpiThreshold);
  EXPECT_FALSE(s.analyzer->program().warrants_optimization);
  const Recommendation rec = advisor.recommend(0);
  EXPECT_FALSE(rec.severity_warrants);
}

TEST(AdvisorEdge, LpiJustAboveThresholdWarrants) {
  EdgeSession s;
  s.data.totals[0].remote_latency = 101;  // lpi = 0.101
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0);
  }
  const Advisor advisor = s.advisor();
  EXPECT_TRUE(s.analyzer->program().warrants_optimization);
  EXPECT_TRUE(advisor.recommend(0).severity_warrants);
}

TEST(AdvisorEdge, UnsampledVariableGetsUnsampledPatternAndNoAction) {
  EdgeSession s;  // no address-centric entries at all
  const Advisor advisor = s.advisor();
  const Recommendation rec = advisor.recommend(0);
  EXPECT_EQ(rec.guiding.kind, PatternKind::kUnsampled);
  EXPECT_EQ(rec.action, Action::kNone);
  EXPECT_EQ(rec.guiding.threads, 0u);
}

TEST(AdvisorEdge, RecommendAllSkipsCostlessVariables) {
  // A variable with no metric weight never enters the top-N ranking, so
  // recommend_all stays empty even though the variable exists.
  EdgeSession s;
  const Advisor advisor = s.advisor();
  EXPECT_TRUE(advisor.recommend_all(5).empty());
}

TEST(AdvisorEdge, EmptySessionIsHarmless) {
  EdgeSession s;
  s.data.variables.clear();
  const Advisor advisor = s.advisor();
  EXPECT_TRUE(advisor.recommend_all(5).empty());
  EXPECT_TRUE(fuse_findings(advisor, {}).empty());
}

TEST(AdvisorEdge, SingleThreadPatternClassifiesButFusionWithholdsFix) {
  // The plain advisor still reports colocation for a single-thread
  // pattern (the §6 stack-variable insight: binding to the one user's
  // domain is the right manual move). The fusion layer is where "one
  // thread + no static evidence" must yield NO fix.
  EdgeSession s;
  s.add_range(3, 0.0, 0.5);
  s.data.stores[0].add(s.data.variables[0].variable_node, kMemorySamples, 100);
  s.data.stores[0].add(s.data.variables[0].variable_node, kNumaMismatch, 90);
  s.data.stores[0].add(s.data.variables[0].variable_node, kRemoteLatency,
                       9000);
  const Advisor advisor = s.advisor();
  EXPECT_EQ(advisor.recommend(0).action, Action::kColocate);

  const auto fused = fuse_findings(advisor, {});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kDynamicOnly);
  EXPECT_EQ(fused[0].action, Action::kNone);
}

TEST(AdvisorEdge, ZeroLatencyProfileStillClassifiesPatterns) {
  // TLB-mechanism-style data (no latency): severity falls back to the
  // M_r rule inside the analyzer; pattern classification is unaffected.
  EdgeSession s;
  s.data.totals[0].remote_latency = 0;
  s.data.totals[0].total_latency = 0;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0);
  }
  const Advisor advisor = s.advisor();
  EXPECT_EQ(advisor.classify(0).kind, PatternKind::kBlocked);
}

}  // namespace
}  // namespace numaprof::core
