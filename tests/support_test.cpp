#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "support/env.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace numaprof::support {
namespace {

TEST(Crc32, MatchesCanonicalVectors) {
  // IEEE 802.3 / zlib check values; these are persisted in binary
  // profiles and ingest frames, so they can never change.
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, ChainedEqualsOneShotAtEverySplit) {
  // The slicing-by-8 fast path kicks in at 8-byte granularity; splitting
  // at every offset crosses the fast/tail boundary in both halves.
  const std::string message = "columnar profiles checksum in sections!";
  const std::uint32_t whole = crc32(message);
  for (std::size_t split = 0; split <= message.size(); ++split) {
    EXPECT_EQ(crc32(message.substr(split), crc32(message.substr(0, split))),
              whole)
        << "split at " << split;
  }
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);  // sanity: covers the interval
  EXPECT_GT(max, 0.95);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator left, right, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 1.7 - 20;
    (i % 2 ? left : right).add(v);
    all.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Percentile, NearestRank) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 9.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, OfUnsorted) {
  EXPECT_DOUBLE_EQ(percentile_of({3, 1, 2}, 100), 3.0);
}

TEST(Imbalance, UniformIsOne) {
  const std::vector<std::uint64_t> even = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(imbalance(even), 1.0);
}

TEST(Imbalance, CentralizedIsDomainCount) {
  const std::vector<std::uint64_t> one = {40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(one), 4.0);
}

TEST(Imbalance, EmptyAndZero) {
  EXPECT_DOUBLE_EQ(imbalance({}), 1.0);
  const std::vector<std::uint64_t> zeros = {0, 0};
  EXPECT_DOUBLE_EQ(imbalance(zeros), 1.0);
}

TEST(Table, TextAlignsAndSeparates) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  // Numeric column right-aligned: "22" ends at same column as " 1".
  std::istringstream is(text);
  std::string header, sep, row1, row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.to_text().find("only"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(format_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(format_percent(0.5), "50.0%");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(12), "12");
  EXPECT_EQ(format_count(123), "123");
  EXPECT_EQ(format_count(1234), "1,234");
}

TEST(LooksNumeric, Classification) {
  EXPECT_TRUE(looks_numeric("123"));
  EXPECT_TRUE(looks_numeric("-1.5%"));
  EXPECT_TRUE(looks_numeric("1,234"));
  EXPECT_FALSE(looks_numeric("abc"));
  EXPECT_FALSE(looks_numeric(""));
  EXPECT_FALSE(looks_numeric("..."));
}

TEST(Env, IntParsingAndFallback) {
  ::setenv("NUMAPROF_TEST_ENV", "42", 1);
  EXPECT_EQ(env_int("NUMAPROF_TEST_ENV").value(), 42);
  EXPECT_EQ(env_int_or("NUMAPROF_TEST_ENV", 5), 42);
  ::setenv("NUMAPROF_TEST_ENV", "junk", 1);
  EXPECT_FALSE(env_int("NUMAPROF_TEST_ENV").has_value());
  EXPECT_EQ(env_int_or("NUMAPROF_TEST_ENV", 5), 5);
  ::unsetenv("NUMAPROF_TEST_ENV");
  EXPECT_FALSE(env_string("NUMAPROF_TEST_ENV").has_value());
  EXPECT_EQ(env_int_or("NUMAPROF_TEST_ENV", 7), 7);
  // Lower bound clamps.
  ::setenv("NUMAPROF_TEST_ENV", "-3", 1);
  EXPECT_EQ(env_int_or("NUMAPROF_TEST_ENV", 5, 1), 1);
  ::unsetenv("NUMAPROF_TEST_ENV");
}

}  // namespace
}  // namespace numaprof::support
