// Golden-file lock on the advisor's recommendations for the four paper
// case studies (baseline variants, §8.1-8.4). Any change to the profiler,
// analyzer, or advisor that shifts what the tool tells the user about
// these workloads must be deliberate: regenerate with
// NUMAPROF_REGEN_GOLDEN=1 and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof {
namespace {

core::ProfilerConfig profiler_config() {
  core::ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 200;
  return pc;
}

/// Renders one app's recommendations as stable text: severity verdict +
/// "variable: action [pattern]" lines in rank order.
std::string advise(const std::string& title, const core::SessionData& data) {
  const core::Analyzer analyzer(data);
  const core::Advisor advisor(analyzer);
  std::ostringstream os;
  os << "== " << title << " ==\n"
     << "warrants_optimization: "
     << (analyzer.program().warrants_optimization ? "yes" : "no") << "\n";
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    os << rec.variable_name << ": " << to_string(rec.action) << " ["
       << to_string(rec.guiding.kind) << "]\n";
  }
  return os.str();
}

std::string run_all_case_studies() {
  std::ostringstream os;
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, profiler_config());
    apps::run_minilulesh(m, {.threads = 16,
                             .pages_per_thread = 12,
                             .timesteps = 6,
                             .variant = apps::Variant::kBaseline});
    os << advise("minilulesh baseline", p.snapshot());
  }
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, profiler_config());
    apps::run_miniamg(m, {.threads = 16,
                          .rows_per_thread = 1024,
                          .relax_sweeps = 5,
                          .variant = apps::Variant::kBaseline});
    os << advise("miniamg baseline", p.snapshot());
  }
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, profiler_config());
    apps::run_miniblackscholes(m, {.threads = 16,
                                   .options_per_thread = 480,
                                   .iterations = 96,
                                   .variant = apps::Variant::kBaseline});
    os << advise("miniblackscholes baseline", p.snapshot());
  }
  {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, profiler_config());
    apps::run_miniumt(m, {.threads = 16,
                          .angles = 32,
                          .sweeps = 4,
                          .variant = apps::Variant::kBaseline});
    os << advise("miniumt baseline", p.snapshot());
  }
  return os.str();
}

TEST(AdvisorGolden, CaseStudyRecommendationsAreLocked) {
  const std::string golden_path =
      NUMAPROF_SOURCE_DIR "/tests/golden/advisor_apps.txt";
  const std::string rendered = run_all_case_studies();
  if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(rendered, buffer.str())
      << "advisor recommendations drifted; if intentional, rerun with "
         "NUMAPROF_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace numaprof
