#include <gtest/gtest.h>

#include <sstream>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

SessionData small_session() {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  Profiler profiler(m, cfg);
  simos::VAddr data = 0;
  const auto main_f = m.frames().intern("main", "x c.c", 1);  // space in file
  parallel_region(m, 1, "init", {main_f},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(8 * simos::kPageBytes, "weird name%");
                    for (std::uint64_t i = 0; i < 8 * simos::kPageBytes;
                         i += 64) {
                      t.store(data + i);
                    }
                    co_return;
                  });
  parallel_region(m, 4, "work", {main_f},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    for (std::uint64_t i = 0; i < 2048; ++i) {
                      t.load(data + ((index * 2048 + i) * 64) %
                                        (8 * simos::kPageBytes));
                      co_await t.tick();
                    }
                  });
  return profiler.snapshot();
}

TEST(EscapeField, RoundTripsSpecials) {
  for (const std::string raw :
       {"plain", "with space", "tab\there", "new\nline", "percent%sign",
        "", "%20", "\x01control"}) {
    EXPECT_EQ(unescape_field(escape_field(raw)), raw) << raw;
  }
}

TEST(EscapeField, EscapedFormIsOneToken) {
  const std::string escaped = escape_field("two words\nand lines");
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
}

TEST(ProfileIo, SaveLoadRoundTrip) {
  const SessionData original = small_session();
  std::stringstream stream;
  ProfileWriter().write(original, stream);
  const SessionData loaded = ProfileReader().read(stream).data;

  EXPECT_EQ(loaded.machine_name, original.machine_name);
  EXPECT_EQ(loaded.domain_count, original.domain_count);
  EXPECT_EQ(loaded.core_count, original.core_count);
  EXPECT_EQ(loaded.mechanism, original.mechanism);
  EXPECT_EQ(loaded.sampling_period, original.sampling_period);
  EXPECT_EQ(loaded.frames.size(), original.frames.size());
  EXPECT_EQ(loaded.cct.size(), original.cct.size());
  EXPECT_EQ(loaded.variables.size(), original.variables.size());
  EXPECT_EQ(loaded.totals.size(), original.totals.size());
  EXPECT_EQ(loaded.first_touches.size(), original.first_touches.size());
  EXPECT_EQ(loaded.address_centric.entry_count(),
            original.address_centric.entry_count());

  // Variable metadata round-trips exactly (including the awkward name).
  for (std::size_t i = 0; i < original.variables.size(); ++i) {
    EXPECT_EQ(loaded.variables[i].name, original.variables[i].name);
    EXPECT_EQ(loaded.variables[i].start, original.variables[i].start);
    EXPECT_EQ(loaded.variables[i].variable_node,
              original.variables[i].variable_node);
  }
}

TEST(ProfileIo, AnalysisOfLoadedProfileMatchesLive) {
  const SessionData original = small_session();
  std::stringstream stream;
  ProfileWriter().write(original, stream);
  const SessionData loaded = ProfileReader().read(stream).data;

  const Analyzer live(original);
  const Analyzer offline(loaded);
  EXPECT_EQ(live.program().samples, offline.program().samples);
  EXPECT_EQ(live.program().mismatch, offline.program().mismatch);
  EXPECT_DOUBLE_EQ(live.program().remote_latency,
                   offline.program().remote_latency);
  ASSERT_EQ(live.variables().size(), offline.variables().size());
  for (std::size_t i = 0; i < live.variables().size(); ++i) {
    EXPECT_EQ(live.variables()[i].name, offline.variables()[i].name);
    EXPECT_EQ(live.variables()[i].mismatch, offline.variables()[i].mismatch);
  }
}

TEST(ProfileIo, FileRoundTrip) {
  const SessionData original = small_session();
  const std::string path = ::testing::TempDir() + "/numaprof_test_profile.txt";
  ProfileWriter().write_file(original, path);
  const SessionData loaded = ProfileReader().read_file(path).data;
  EXPECT_EQ(loaded.cct.size(), original.cct.size());
}

TEST(ProfileIo, RejectsWrongMagicAndVersion) {
  std::stringstream bad1("not-a-profile 1\n");
  EXPECT_THROW(ProfileReader().read(bad1).data, std::runtime_error);
  std::stringstream bad2("numaprof-profile 999\n");
  EXPECT_THROW(ProfileReader().read(bad2).data, std::runtime_error);
}

TEST(ProfileIo, RejectsTruncatedInput) {
  const SessionData original = small_session();
  std::stringstream stream;
  ProfileWriter().write(original, stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(ProfileReader().read(truncated).data, std::runtime_error);
}

TEST(ProfileIo, MissingFileThrows) {
  EXPECT_THROW(ProfileReader().read_file("/nonexistent/profile.txt").data,
               std::runtime_error);
}

TEST(ProfileIo, RejectsOutOfRangeMechanismEnum) {
  std::stringstream in(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "sampling 99 100 0\n"
      "end\n");
  try {
    ProfileReader().read(in).data;
    FAIL() << "enum out of range must not be cast blindly";
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "mechanism");
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(ProfileIo, RejectsOutOfRangeFrameKind) {
  std::stringstream in(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "frames 1\n"
      "7 10 f file.c\n"
      "end\n");
  try {
    ProfileReader().read(in).data;
    FAIL();
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "frame kind");
    EXPECT_EQ(e.line(), 4u);
  }
}

TEST(ProfileIo, RejectsOutOfRangeCctAndVariableKinds) {
  std::stringstream cct_in(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "cct 2\n"
      "0 42 0\n"
      "end\n");
  try {
    ProfileReader().read(cct_in).data;
    FAIL();
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "cct kind");
  }
  std::stringstream var_in(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "variables 1\n"
      "200 0 8 1 0 0 1 name\n"
      "end\n");
  try {
    ProfileReader().read(var_in).data;
    FAIL();
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "var kind");
  }
}

TEST(ProfileIo, RejectsDanglingCrossReferences) {
  // A CCT parent that does not exist yet.
  std::stringstream bad_parent(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "cct 2\n"
      "900 1 0\n"
      "end\n");
  try {
    ProfileReader().read(bad_parent).data;
    FAIL();
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "cct parent");
  }
  // A variable anchored at a CCT node that was never created.
  std::stringstream bad_node(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "variables 1\n"
      "0 0 8 1 500 0 1 name\n"
      "end\n");
  try {
    ProfileReader().read(bad_node).data;
    FAIL();
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "var node");
  }
}

TEST(ProfileIo, BoundsHostileCountsBeforeReserving) {
  // A counts field far beyond both the limit and the stream size must be
  // rejected up front, not fed to reserve().
  std::stringstream in(
      "numaprof-profile 3\n"
      "machine 2 4 box\n"
      "frames 1099511627776\n"
      "end\n");
  try {
    ProfileReader().read(in).data;
    FAIL();
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "frame count");
    EXPECT_NE(std::string(e.what()).find("exceeds limit"), std::string::npos);
  }
}

TEST(ProfileIo, LenientLoadReturnsPartialDataWithDiagnostics) {
  const SessionData original = small_session();
  std::stringstream out;
  ProfileWriter().write(original, out);
  std::string text = out.str();
  // Sabotage the variables section header; everything else stays intact.
  const std::size_t pos = text.find("\nvariables ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\nvariables X");

  std::stringstream in(text);
  const LoadResult result = ProfileReader(LoadOptions{.lenient = true}).read(in);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.diagnostics.empty());
  // Sections before and after the damage survived.
  EXPECT_EQ(result.data.frames.size(), original.frames.size());
  EXPECT_EQ(result.data.cct.size(), original.cct.size());
  EXPECT_EQ(result.data.totals.size(), original.totals.size());
  EXPECT_EQ(result.data.stores.size(), result.data.totals.size());
  // The sabotaged section is what was lost.
  EXPECT_TRUE(result.data.variables.empty());

  // Strict mode refuses the same stream.
  std::stringstream strict_in(text);
  EXPECT_THROW(ProfileReader().read(strict_in).data, ProfileError);
}

TEST(ProfileIo, LenientLoadOfCleanStreamIsComplete) {
  const SessionData original = small_session();
  std::stringstream stream;
  ProfileWriter().write(original, stream);
  const LoadResult result =
      ProfileReader(LoadOptions{.lenient = true}).read(stream);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.data.cct.size(), original.cct.size());
}

TEST(ProfileIo, ProfileErrorCarriesFieldAndLine) {
  const ProfileError error("widget", 17, "looks wrong");
  EXPECT_EQ(error.field(), "widget");
  EXPECT_EQ(error.line(), 17u);
  const std::string what = error.what();
  EXPECT_NE(what.find("widget"), std::string::npos);
  EXPECT_NE(what.find("17"), std::string::npos);
  EXPECT_NE(what.find("looks wrong"), std::string::npos);
}

TEST(ProfileIo, AcceptsVersion2StreamsWithoutHealthSections) {
  // A v2 header (the previous format) with no requested/degradations
  // sections still loads; requested defaults to the collecting mechanism.
  std::stringstream in(
      "numaprof-profile 2\n"
      "machine 2 4 box\n"
      "sampling 5 100 0\n"
      "end\n");
  const SessionData data = ProfileReader().read(in).data;
  EXPECT_EQ(data.mechanism, pmu::Mechanism::kSoftIbs);
  EXPECT_EQ(data.requested_mechanism, pmu::Mechanism::kSoftIbs);
  EXPECT_TRUE(data.degradations.empty());
}

}  // namespace
}  // namespace numaprof::core
