#include <gtest/gtest.h>

#include <sstream>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

SessionData small_session() {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  Profiler profiler(m, cfg);
  simos::VAddr data = 0;
  const auto main_f = m.frames().intern("main", "x c.c", 1);  // space in file
  parallel_region(m, 1, "init", {main_f},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(8 * simos::kPageBytes, "weird name%");
                    for (std::uint64_t i = 0; i < 8 * simos::kPageBytes;
                         i += 64) {
                      t.store(data + i);
                    }
                    co_return;
                  });
  parallel_region(m, 4, "work", {main_f},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    for (std::uint64_t i = 0; i < 2048; ++i) {
                      t.load(data + ((index * 2048 + i) * 64) %
                                        (8 * simos::kPageBytes));
                      co_await t.tick();
                    }
                  });
  return profiler.snapshot();
}

TEST(EscapeField, RoundTripsSpecials) {
  for (const std::string raw :
       {"plain", "with space", "tab\there", "new\nline", "percent%sign",
        "", "%20", "\x01control"}) {
    EXPECT_EQ(unescape_field(escape_field(raw)), raw) << raw;
  }
}

TEST(EscapeField, EscapedFormIsOneToken) {
  const std::string escaped = escape_field("two words\nand lines");
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
}

TEST(ProfileIo, SaveLoadRoundTrip) {
  const SessionData original = small_session();
  std::stringstream stream;
  save_profile(original, stream);
  const SessionData loaded = load_profile(stream);

  EXPECT_EQ(loaded.machine_name, original.machine_name);
  EXPECT_EQ(loaded.domain_count, original.domain_count);
  EXPECT_EQ(loaded.core_count, original.core_count);
  EXPECT_EQ(loaded.mechanism, original.mechanism);
  EXPECT_EQ(loaded.sampling_period, original.sampling_period);
  EXPECT_EQ(loaded.frames.size(), original.frames.size());
  EXPECT_EQ(loaded.cct.size(), original.cct.size());
  EXPECT_EQ(loaded.variables.size(), original.variables.size());
  EXPECT_EQ(loaded.totals.size(), original.totals.size());
  EXPECT_EQ(loaded.first_touches.size(), original.first_touches.size());
  EXPECT_EQ(loaded.address_centric.entry_count(),
            original.address_centric.entry_count());

  // Variable metadata round-trips exactly (including the awkward name).
  for (std::size_t i = 0; i < original.variables.size(); ++i) {
    EXPECT_EQ(loaded.variables[i].name, original.variables[i].name);
    EXPECT_EQ(loaded.variables[i].start, original.variables[i].start);
    EXPECT_EQ(loaded.variables[i].variable_node,
              original.variables[i].variable_node);
  }
}

TEST(ProfileIo, AnalysisOfLoadedProfileMatchesLive) {
  const SessionData original = small_session();
  std::stringstream stream;
  save_profile(original, stream);
  const SessionData loaded = load_profile(stream);

  const Analyzer live(original);
  const Analyzer offline(loaded);
  EXPECT_EQ(live.program().samples, offline.program().samples);
  EXPECT_EQ(live.program().mismatch, offline.program().mismatch);
  EXPECT_DOUBLE_EQ(live.program().remote_latency,
                   offline.program().remote_latency);
  ASSERT_EQ(live.variables().size(), offline.variables().size());
  for (std::size_t i = 0; i < live.variables().size(); ++i) {
    EXPECT_EQ(live.variables()[i].name, offline.variables()[i].name);
    EXPECT_EQ(live.variables()[i].mismatch, offline.variables()[i].mismatch);
  }
}

TEST(ProfileIo, FileRoundTrip) {
  const SessionData original = small_session();
  const std::string path = ::testing::TempDir() + "/numaprof_test_profile.txt";
  save_profile_file(original, path);
  const SessionData loaded = load_profile_file(path);
  EXPECT_EQ(loaded.cct.size(), original.cct.size());
}

TEST(ProfileIo, RejectsWrongMagicAndVersion) {
  std::stringstream bad1("not-a-profile 1\n");
  EXPECT_THROW(load_profile(bad1), std::runtime_error);
  std::stringstream bad2("numaprof-profile 999\n");
  EXPECT_THROW(load_profile(bad2), std::runtime_error);
}

TEST(ProfileIo, RejectsTruncatedInput) {
  const SessionData original = small_session();
  std::stringstream stream;
  save_profile(original, stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_profile(truncated), std::runtime_error);
}

TEST(ProfileIo, MissingFileThrows) {
  EXPECT_THROW(load_profile_file("/nonexistent/profile.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace numaprof::core
