// Scenario x topology x page-policy regression grid.
//
// Every cell runs the full record -> merge -> analyze pipeline on one of
// the four matrix workload kernels (apps/scenarios.hpp), on one of five
// machine presets (two Table-1 machines plus SNC, CXL far-memory, and the
// NUMAscope ccNUMA ring), under one of three page policies applied to the
// kernel's hot variable. Per cell the test asserts the DIAGNOSIS, not the
// timing: which variable tops the mismatch ranking, which advisor Action
// fires, where the hot pages live, and that the broken variant's mismatch
// fraction exceeds its fixed twin by a calibrated margin. The expectation
// bands live in one declarative table below; pattern/action expectations
// are placement-independent (classification reads per-thread address
// ranges only), so one row covers all 15 cells of a scenario.
//
// Companion locks: analyzer output must be byte-identical for any --jobs
// value in every cell, shard save -> merge -> analyze must reproduce the
// in-memory profile, and a representative slice (the join row) is locked
// against a checked-in golden (tests/golden/matrix_join_slice.txt,
// regenerate with NUMAPROF_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/diff.hpp"
#include "core/profile_io.hpp"
#include "core/viewer.hpp"
#include "matrix_support.hpp"

namespace numaprof {
namespace {

namespace fs = std::filesystem;

// --- Declarative expectation bands --------------------------------------
//
// Mismatch-fraction bands calibrated against the deterministic simulator:
// each band leaves >= 0.05 of slack around the extreme observed cell so a
// timing-model tweak does not flip the grid, while still pinning the
// DIRECTION (broken workload mismatch-heavy, fixed workload clean).
struct GridExpectation {
  std::string_view scenario;
  double broken_min;   // every broken cell's mismatch fraction is above
  double broken_max;   // ... and below
  double fixed_max;    // fixed twin stays below (0.02 == exactly clean)
  double min_gap;      // broken - fixed, per (topology, policy) cell
  // kvcache's hot-key skew can degrade the sampled pattern from
  // full-range to irregular on 2-domain machines; the ACTION (interleave)
  // is still asserted for every scenario.
  bool assert_pattern;
};

const GridExpectation& expectation_for(std::string_view scenario) {
  static const std::vector<GridExpectation> kTable = {
      {"graph", 0.35, 0.95, 0.40, 0.20, true},
      {"join", 0.25, 0.70, 0.02, 0.25, true},
      {"kvcache", 0.20, 0.60, 0.02, 0.20, false},
      {"orderbook", 0.30, 0.80, 0.25, 0.25, true},
  };
  for (const GridExpectation& e : kTable) {
    if (e.scenario == scenario) return e;
  }
  throw std::logic_error("no expectation row for scenario");
}

// --- Cell cache ----------------------------------------------------------
//
// gtest instantiates one TEST_P per (cell, assertion-suite) pair; caching
// recorded cells keeps the grid at one simulation per cell. The fixed twin
// ignores the policy axis (it always first-touches), so it is keyed on
// (scenario, topology) only.
using CellKey = std::tuple<std::string, std::string, std::string, bool>;

const matrix::CellResult& cached_cell(const apps::Scenario& scenario,
                                      const std::string& topology,
                                      const std::string& policy,
                                      bool fixed) {
  static std::map<CellKey, matrix::CellResult> cache;
  const CellKey key{std::string(scenario.name), topology,
                    fixed ? std::string() : policy, fixed};
  auto it = cache.find(key);
  if (it == cache.end()) {
    const simos::PolicySpec spec =
        fixed ? matrix::policy_by_name("first-touch").spec
              : matrix::policy_by_name(policy).spec;
    it = cache.emplace(key, matrix::run_cell(scenario, topology, spec, fixed))
             .first;
  }
  return it->second;
}

using Param = std::tuple<std::string, std::string, std::string>;

class MatrixGrid : public ::testing::TestWithParam<Param> {
 protected:
  const apps::Scenario& scenario() const {
    return apps::scenario_by_name(std::get<0>(GetParam()));
  }
  const matrix::CellResult& broken() const {
    return cached_cell(scenario(), std::get<1>(GetParam()),
                       std::get<2>(GetParam()), false);
  }
  const matrix::CellResult& fixed_twin() const {
    return cached_cell(scenario(), std::get<1>(GetParam()),
                       std::get<2>(GetParam()), true);
  }
  std::string policy() const { return std::get<2>(GetParam()); }
};

// --- Per-cell diagnosis --------------------------------------------------

TEST_P(MatrixGrid, DiagnosesHotVariableAndAction) {
  const apps::Scenario& s = scenario();
  const core::Analyzer analyzer(broken().data);
  ASSERT_GT(analyzer.program().memory_samples, 100u);

  // The kernel's deliberately-broken variable tops the mismatch ranking.
  EXPECT_EQ(matrix::top_mismatch_variable(analyzer), s.hot_variable);

  const core::Advisor advisor(analyzer);
  for (const core::Variable& v : broken().data.variables) {
    if (v.name != s.hot_variable) continue;
    const core::Recommendation rec = advisor.recommend(v.id);
    EXPECT_EQ(rec.action, s.expected_action)
        << "advisor suggested " << to_string(rec.action) << " (pattern "
        << to_string(rec.guiding.kind) << ")";
    if (expectation_for(s.name).assert_pattern) {
      EXPECT_EQ(rec.guiding.kind, s.expected_pattern)
          << "guiding pattern " << to_string(rec.guiding.kind);
    }
    return;
  }
  FAIL() << "hot variable not sampled: " << s.hot_variable;
}

TEST_P(MatrixGrid, HotPagesHomeWhereThePolicyPutsThem) {
  // Under first touch the serial init homes every hot page in the master
  // thread's domain 0 — the classic diagnosis. Interleave and blockwise
  // spread the pages, so no single home domain exists.
  const apps::Scenario& s = scenario();
  const core::Analyzer analyzer(broken().data);
  for (const core::Variable& v : broken().data.variables) {
    if (v.name != s.hot_variable) continue;
    const core::VariableReport report = analyzer.report(v.id);
    ASSERT_GT(report.samples, 0u);
    if (policy() == "first-touch") {
      ASSERT_TRUE(report.single_home_domain.has_value());
      EXPECT_EQ(*report.single_home_domain, 0u);
    } else {
      EXPECT_FALSE(report.single_home_domain.has_value())
          << "policy " << policy() << " should spread " << s.hot_variable
          << " across domains";
    }
    return;
  }
  FAIL() << "hot variable not sampled: " << s.hot_variable;
}

TEST_P(MatrixGrid, BrokenMismatchExceedsFixedTwin) {
  const GridExpectation& want = expectation_for(scenario().name);
  const core::Analyzer broken_an(broken().data);
  const core::Analyzer fixed_an(fixed_twin().data);
  const double broken_mm = matrix::mismatch_fraction(broken_an);
  const double fixed_mm = matrix::mismatch_fraction(fixed_an);

  EXPECT_GE(broken_mm, want.broken_min);
  EXPECT_LE(broken_mm, want.broken_max);
  EXPECT_LE(fixed_mm, want.fixed_max);
  EXPECT_GE(broken_mm - fixed_mm, want.min_gap)
      << "broken=" << broken_mm << " fixed=" << fixed_mm;
}

TEST_P(MatrixGrid, DiffAgainstFixedTwinResolvesHotVariable) {
  // The §8 verify step, per cell: diffing broken vs fixed must report the
  // regression direction at program level AND name the hot variable as
  // resolved (its own remote share collapsed).
  const apps::Scenario& s = scenario();
  const GridExpectation& want = expectation_for(s.name);
  const core::Analyzer before(broken().data);
  const core::Analyzer after(fixed_twin().data);
  const core::DiffReport report = core::diff_profiles(before, after);

  EXPECT_GE(report.mismatch_fraction_before - report.mismatch_fraction_after,
            want.min_gap);

  bool found = false;
  for (const core::VariableDelta& delta : report.variables) {
    if (delta.name != s.hot_variable) continue;
    found = true;
    EXPECT_LT(delta.mismatch_fraction_after, delta.mismatch_fraction_before);
    EXPECT_TRUE(delta.resolved())
        << s.hot_variable << ": before=" << delta.mismatch_fraction_before
        << " after=" << delta.mismatch_fraction_after;
  }
  EXPECT_TRUE(found) << s.hot_variable << " missing from diff";

  const std::vector<std::string> resolved = report.resolved_variables();
  EXPECT_NE(std::find(resolved.begin(), resolved.end(),
                      std::string(s.hot_variable)),
            resolved.end())
      << "resolved_variables() does not name " << s.hot_variable;
}

TEST_P(MatrixGrid, AnalyzerOutputIsJobCountInvariant) {
  // Byte-identical full render (summary + tables + advisor) for --jobs 1
  // vs --jobs 3, per cell.
  const auto render = [this](unsigned jobs) {
    PipelineOptions options;
    options.jobs = jobs;
    const core::Analyzer analyzer(broken().data, options);
    const core::Viewer viewer(analyzer);
    std::ostringstream os;
    os << viewer.program_summary() << "\n"
       << viewer.data_centric_table(10).to_text() << "\n"
       << viewer.domain_balance_table().to_text() << "\n";
    const core::Advisor advisor(analyzer);
    for (const core::Recommendation& rec : advisor.recommend_all(5)) {
      os << rec.variable_name << ": " << to_string(rec.action) << "\n  "
         << rec.rationale << "\n";
    }
    return os.str();
  };
  const std::string serial = render(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(render(3), serial) << "--jobs 3 output diverged from --jobs 1";
}

std::vector<Param> all_cells() {
  std::vector<Param> cells;
  for (const apps::Scenario& s : apps::matrix_scenarios()) {
    for (const std::string& topo : matrix::grid_topologies()) {
      for (const matrix::PolicyAxis& pol : matrix::grid_policies()) {
        cells.emplace_back(std::string(s.name), topo, std::string(pol.name));
      }
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatrixGrid, ::testing::ValuesIn(all_cells()),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_" +
                         std::get<2>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Shard round-trip ----------------------------------------------------

TEST(MatrixGridIo, ShardMergeReproducesInMemoryProfile) {
  // One cell per scenario (on the SNC preset): shard the session into
  // per-thread files, merge with jobs=1 and jobs=3, and require the
  // re-serialized profile bytes — and the rendered diagnosis — to match
  // the in-memory snapshot.
  for (const apps::Scenario& s : apps::matrix_scenarios()) {
    SCOPED_TRACE(std::string(s.name));
    const matrix::CellResult& cell =
        cached_cell(s, "snc", "first-touch", false);

    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("numaprof_matrix_io_" + std::string(s.name));
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::vector<std::string> paths =
        core::ProfileWriter().write_thread_shards(cell.data, dir.string());
    ASSERT_FALSE(paths.empty());

    const auto bytes_of = [](const core::SessionData& data) {
      std::ostringstream os;
      core::ProfileWriter().write(data, os);
      return os.str();
    };
    PipelineOptions serial;
    serial.jobs = 1;
    PipelineOptions parallel;
    parallel.jobs = 3;
    const core::MergeResult merged_serial =
        core::merge_profile_files(paths, serial);
    const core::MergeResult merged_parallel =
        core::merge_profile_files(paths, parallel);
    EXPECT_EQ(bytes_of(merged_serial.data), bytes_of(cell.data));
    EXPECT_EQ(bytes_of(merged_parallel.data), bytes_of(cell.data));

    const core::Analyzer direct(cell.data);
    const core::Analyzer merged(merged_serial.data);
    EXPECT_EQ(matrix::top_mismatch_variable(merged),
              matrix::top_mismatch_variable(direct));
    EXPECT_EQ(matrix::mismatch_fraction(merged),
              matrix::mismatch_fraction(direct));
  }
}

// --- Golden slice --------------------------------------------------------

TEST(MatrixGridGolden, JoinRowMatchesCheckedInSlice) {
  // Locks the join row (5 topologies x 3 policies) cell diagnoses to
  // byte-exact values: variable ranking, action, and mismatch fractions
  // cannot drift without a deliberate regeneration.
  const apps::Scenario& s = apps::scenario_by_name("join");
  std::ostringstream rendered;
  for (const std::string& topo : matrix::grid_topologies()) {
    for (const matrix::PolicyAxis& pol : matrix::grid_policies()) {
      const matrix::CellResult& broken =
          cached_cell(s, topo, std::string(pol.name), false);
      const matrix::CellResult& fixed = cached_cell(s, topo, "", true);
      const core::Analyzer broken_an(broken.data);
      const core::Analyzer fixed_an(fixed.data);
      std::string action = "none";
      for (const core::Variable& v : broken.data.variables) {
        if (v.name != s.hot_variable) continue;
        const core::Advisor advisor(broken_an);
        action = std::string(to_string(advisor.recommend(v.id).action));
        break;
      }
      char line[160];
      std::snprintf(line, sizeof line,
                    "join %-14s %-11s top=%s action=%s mm=%.4f fixed=%.4f\n",
                    topo.c_str(), std::string(pol.name).c_str(),
                    matrix::top_mismatch_variable(broken_an).c_str(),
                    action.c_str(), matrix::mismatch_fraction(broken_an),
                    matrix::mismatch_fraction(fixed_an));
      rendered << line;
    }
  }

  const std::string golden_path =
      NUMAPROF_SOURCE_DIR "/tests/golden/matrix_join_slice.txt";
  if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << golden_path;
    out << rendered.str();
    return;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(rendered.str(), golden.str())
      << "matrix join slice drifted; if intentional, rerun with "
         "NUMAPROF_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace numaprof
