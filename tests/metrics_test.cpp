#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace numaprof::core {
namespace {

TEST(MetricNames, IncludePerDomainColumns) {
  const auto names = metric_names(3);
  EXPECT_EQ(names.size(), kFixedMetricCount + 3);
  EXPECT_EQ(names[kNumaMatch], "NUMA_MATCH");
  EXPECT_EQ(names[kNumaMismatch], "NUMA_MISMATCH");
  EXPECT_EQ(names[domain_metric(0)], "NUMA_NODE0");
  EXPECT_EQ(names[domain_metric(2)], "NUMA_NODE2");
}

TEST(MetricStore, AddAndGet) {
  MetricStore store(2);
  EXPECT_EQ(store.get(5, kSamples), 0.0);
  store.add(5, kSamples, 1);
  store.add(5, kSamples, 2);
  store.add(5, kRemoteLatency, 100.5);
  EXPECT_DOUBLE_EQ(store.get(5, kSamples), 3.0);
  EXPECT_DOUBLE_EQ(store.get(5, kRemoteLatency), 100.5);
  EXPECT_TRUE(store.has(5));
  EXPECT_FALSE(store.has(4));
}

TEST(MetricStore, NodesListsTouchedOnly) {
  MetricStore store(2);
  store.add(3, kSamples, 1);
  store.add(7, kSamples, 1);
  EXPECT_EQ(store.nodes(), (std::vector<NodeId>{3, 7}));
}

TEST(MetricStore, MergeAccumulates) {
  MetricStore a(2), b(2);
  a.add(1, kSamples, 2);
  b.add(1, kSamples, 3);
  b.add(9, kNumaMismatch, 1);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(1, kSamples), 5.0);
  EXPECT_DOUBLE_EQ(a.get(9, kNumaMismatch), 1.0);
}

TEST(Inclusive, SumsSubtree) {
  Cct cct;
  const simrt::FrameId frames[] = {1, 2};
  const NodeId leaf = cct.extend(kRootNode, frames);
  const NodeId mid = cct.node(leaf).parent;
  MetricStore store(1);
  store.add(leaf, kSamples, 4);
  store.add(mid, kSamples, 1);
  EXPECT_DOUBLE_EQ(inclusive(cct, store, mid, kSamples), 5.0);
  EXPECT_DOUBLE_EQ(inclusive(cct, store, leaf, kSamples), 4.0);
  EXPECT_DOUBLE_EQ(inclusive(cct, store, kRootNode, kSamples), 5.0);
}

TEST(Inclusive, BinNodesDoNotDoubleCount) {
  // A sample recorded at a variable node AND its bin node (the §5.2
  // synthetic-variable scheme) must count once in the variable's
  // inclusive value.
  Cct cct;
  const NodeId var = cct.child(kRootNode, NodeKind::kVariable, 1);
  const NodeId bin0 = cct.child(var, NodeKind::kBin, 0);
  const NodeId bin1 = cct.child(var, NodeKind::kBin, 1);
  MetricStore store(1);
  store.add(var, kMemorySamples, 2);   // two samples on the variable...
  store.add(bin0, kMemorySamples, 1);  // ...refined into two bins
  store.add(bin1, kMemorySamples, 1);
  EXPECT_DOUBLE_EQ(inclusive(cct, store, var, kMemorySamples), 2.0);
  EXPECT_DOUBLE_EQ(inclusive(cct, store, kRootNode, kMemorySamples), 2.0);
  // A query rooted AT a bin still answers for that bin.
  EXPECT_DOUBLE_EQ(inclusive(cct, store, bin0, kMemorySamples), 1.0);
}

TEST(Lpi, Equation2Form) {
  // Eq. 2: accumulated sampled remote latency over sampled instructions.
  EXPECT_DOUBLE_EQ(lpi_numa(500.0, 1000.0), 0.5);
  EXPECT_DOUBLE_EQ(lpi_numa(500.0, 0.0), 0.0);
}

TEST(Lpi, ThresholdRuleOfThumb) {
  EXPECT_GT(lpi_numa(120.0, 1000.0), kLpiThreshold);   // warrants
  EXPECT_LT(lpi_numa(50.0, 1000.0), kLpiThreshold);    // does not
}

TEST(Lpi, Equation3Form) {
  // 10 sampled remote events of 200 cycles each, out of 20 sampled events;
  // hardware counted 10,000 qualifying events; 1,000,000 instructions.
  // E_remote ~= 10000 * 10/20 = 5000; lpi = 200 * 5000 / 1e6 = 1.0.
  EXPECT_DOUBLE_EQ(lpi_numa_pebs_ll(2000.0, 10.0, 20.0, 10000.0, 1e6), 1.0);
}

TEST(Lpi, Equation3DegenerateInputs) {
  EXPECT_DOUBLE_EQ(lpi_numa_pebs_ll(0, 0, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(lpi_numa_pebs_ll(100, 5, 10, 1000, 0), 0.0);
}

}  // namespace
}  // namespace numaprof::core
