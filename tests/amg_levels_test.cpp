// Multigrid-hierarchy extension of MiniAmg: per-level coarse operators,
// V-cycle relaxation, and placement fixes applied across all levels.
#include <gtest/gtest.h>

#include "apps/miniamg.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::apps {
namespace {

AmgConfig config(std::uint32_t levels, Variant variant) {
  return AmgConfig{.threads = 16,
                   .rows_per_thread = 512,
                   .nnz_per_row = 4,
                   .relax_sweeps = 3,
                   .matvec_sweeps = 1,
                   .levels = levels,
                   .variant = variant};
}

TEST(AmgLevels, HierarchyGeometryCoarsensByFour) {
  simrt::Machine m(numasim::amd_magny_cours());
  const AmgRun run = run_miniamg(m, config(3, Variant::kBaseline));
  ASSERT_EQ(run.levels.size(), 3u);
  EXPECT_EQ(run.levels[0].rows, run.rows);
  EXPECT_EQ(run.levels[1].rows, run.rows / 4);
  EXPECT_EQ(run.levels[2].rows, run.rows / 16);
  // Level-0 aliases match the hierarchy.
  EXPECT_EQ(run.rap_diag_data, run.levels[0].rap_diag_data);
  EXPECT_EQ(run.x_vec, run.levels[0].x_vec);
}

TEST(AmgLevels, SingleLevelMatchesLegacyShape) {
  simrt::Machine m(numasim::amd_magny_cours());
  const AmgRun run = run_miniamg(m, config(1, Variant::kBaseline));
  ASSERT_EQ(run.levels.size(), 1u);
  EXPECT_GT(run.solve_cycles, 0u);
}

TEST(AmgLevels, PerLevelVariablesVisibleToTheTool) {
  simrt::Machine m(numasim::amd_magny_cours());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 150;
  core::Profiler profiler(m, cfg);
  run_miniamg(m, config(2, Variant::kBaseline));
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);

  // Both levels' operators resolve as distinct named variables.
  bool fine = false, coarse = false;
  for (const core::Variable& v : data.variables) {
    fine |= v.name == "RAP_diag_data";
    coarse |= v.name == "RAP_diag_data_L1";
  }
  EXPECT_TRUE(fine);
  EXPECT_TRUE(coarse);

  // Both are master-initialized -> single home, mismatch heavy.
  for (const core::VariableReport& r : analyzer.variables()) {
    if (r.name != "RAP_diag_data" && r.name != "RAP_diag_data_L1") continue;
    if (r.samples < 10) continue;
    EXPECT_GT(r.mismatch, r.match) << r.name;
    EXPECT_EQ(r.single_home_domain.value_or(99), 0u) << r.name;
  }
}

TEST(AmgLevels, BlockwiseFixCoversEveryLevel) {
  simrt::Machine m(numasim::amd_magny_cours());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 150;
  core::Profiler profiler(m, cfg);
  run_miniamg(m, config(2, Variant::kBlockwise));
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  for (const core::VariableReport& r : analyzer.variables()) {
    if (r.name != "RAP_diag_data" && r.name != "RAP_diag_data_L1") continue;
    if (r.samples < 10) continue;
    EXPECT_GT(r.match, r.mismatch) << r.name << " should be co-located";
  }
}

TEST(AmgLevels, VCycleSolveScalesWithDepth) {
  const auto solve_cycles = [](std::uint32_t levels) {
    simrt::Machine m(numasim::amd_magny_cours());
    return run_miniamg(m, config(levels, Variant::kBaseline)).solve_cycles;
  };
  const auto one = solve_cycles(1);
  const auto three = solve_cycles(3);
  // Coarser levels shrink 4x per step: a 3-level V-cycle does roughly
  // 1 + 2*(1/4 + ... ) extra relax work, well under 2x of single-level,
  // but strictly more.
  EXPECT_GT(three, one);
  EXPECT_LT(three, 2 * one);
}

}  // namespace
}  // namespace numaprof::apps
