#include <gtest/gtest.h>

#include <set>

#include "core/cct.hpp"

namespace numaprof::core {
namespace {

TEST(Cct, RootExists) {
  Cct cct;
  EXPECT_EQ(cct.size(), 1u);
  EXPECT_EQ(cct.node(kRootNode).kind, NodeKind::kRoot);
  EXPECT_EQ(cct.node(kRootNode).depth, 0u);
}

TEST(Cct, ChildCreationAndDedup) {
  Cct cct;
  const NodeId a = cct.child(kRootNode, NodeKind::kFrame, 7);
  const NodeId b = cct.child(kRootNode, NodeKind::kFrame, 7);
  const NodeId c = cct.child(kRootNode, NodeKind::kFrame, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(cct.node(a).parent, kRootNode);
  EXPECT_EQ(cct.node(a).key, 7u);
  EXPECT_EQ(cct.node(a).depth, 1u);
}

TEST(Cct, SameKeyDifferentKindAreDistinct) {
  Cct cct;
  const NodeId frame = cct.child(kRootNode, NodeKind::kFrame, 1);
  const NodeId var = cct.child(kRootNode, NodeKind::kVariable, 1);
  const NodeId bin = cct.child(kRootNode, NodeKind::kBin, 1);
  EXPECT_NE(frame, var);
  EXPECT_NE(var, bin);
}

TEST(Cct, DummySeparatorsPartitionSubtrees) {
  // §7.1: allocation, access, and first-touch segments coexist under
  // separate dummy nodes even when call paths share frames.
  Cct cct;
  const simrt::FrameId path[] = {1, 2, 3};
  const NodeId alloc = cct.child(kRootNode, NodeKind::kAllocation, 0);
  const NodeId access = cct.child(kRootNode, NodeKind::kAccess, 0);
  const NodeId in_alloc = cct.extend(alloc, path);
  const NodeId in_access = cct.extend(access, path);
  EXPECT_NE(in_alloc, in_access);
  EXPECT_TRUE(cct.is_ancestor(alloc, in_alloc));
  EXPECT_FALSE(cct.is_ancestor(alloc, in_access));
}

TEST(Cct, ExtendBuildsAndReusesPaths) {
  Cct cct;
  const simrt::FrameId path1[] = {10, 20, 30};
  const simrt::FrameId path2[] = {10, 20, 40};
  const NodeId leaf1 = cct.extend(kRootNode, path1);
  const std::size_t after_first = cct.size();
  const NodeId leaf1_again = cct.extend(kRootNode, path1);
  EXPECT_EQ(leaf1, leaf1_again);
  EXPECT_EQ(cct.size(), after_first);  // nothing new
  const NodeId leaf2 = cct.extend(kRootNode, path2);
  EXPECT_EQ(cct.size(), after_first + 1);  // shares the 10>20 prefix
  EXPECT_EQ(cct.node(leaf1).parent, cct.node(leaf2).parent);
}

TEST(Cct, PathToRootOrder) {
  Cct cct;
  const simrt::FrameId frames[] = {5, 6};
  const NodeId leaf = cct.extend(kRootNode, frames);
  const auto path = cct.path_to(leaf);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(cct.node(path[0]).key, 5u);
  EXPECT_EQ(cct.node(path[1]).key, 6u);
  EXPECT_TRUE(cct.path_to(kRootNode).empty());
}

TEST(Cct, VisitCoversSubtree) {
  Cct cct;
  const simrt::FrameId a[] = {1, 2};
  const simrt::FrameId b[] = {1, 3};
  cct.extend(kRootNode, a);
  cct.extend(kRootNode, b);
  std::set<NodeId> visited;
  cct.visit(kRootNode, [&](NodeId id) { visited.insert(id); });
  EXPECT_EQ(visited.size(), cct.size());
  // Subtree visit from frame 1 sees 3 nodes (1, 2, 3).
  const NodeId one = *cct.find_child(kRootNode, NodeKind::kFrame, 1);
  visited.clear();
  cct.visit(one, [&](NodeId id) { visited.insert(id); });
  EXPECT_EQ(visited.size(), 3u);
}

TEST(Cct, FindChildDoesNotCreate) {
  Cct cct;
  EXPECT_FALSE(cct.find_child(kRootNode, NodeKind::kFrame, 9).has_value());
  EXPECT_EQ(cct.size(), 1u);
  const NodeId a = cct.child(kRootNode, NodeKind::kFrame, 9);
  EXPECT_EQ(cct.find_child(kRootNode, NodeKind::kFrame, 9).value(), a);
}

TEST(Cct, ChildrenSorted) {
  Cct cct;
  cct.child(kRootNode, NodeKind::kFrame, 3);
  cct.child(kRootNode, NodeKind::kFrame, 1);
  cct.child(kRootNode, NodeKind::kFrame, 2);
  const auto kids = cct.children(kRootNode);
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_LT(kids[0], kids[1]);
  EXPECT_LT(kids[1], kids[2]);
}

TEST(Cct, IsAncestorReflexiveAndRooted) {
  Cct cct;
  const simrt::FrameId frames[] = {1, 2, 3};
  const NodeId leaf = cct.extend(kRootNode, frames);
  EXPECT_TRUE(cct.is_ancestor(leaf, leaf));
  EXPECT_TRUE(cct.is_ancestor(kRootNode, leaf));
  EXPECT_FALSE(cct.is_ancestor(leaf, kRootNode));
}

TEST(Cct, DeepPathDepths) {
  Cct cct;
  std::vector<simrt::FrameId> frames;
  for (simrt::FrameId f = 0; f < 100; ++f) frames.push_back(f);
  const NodeId leaf = cct.extend(kRootNode, frames);
  EXPECT_EQ(cct.node(leaf).depth, 100u);
}

}  // namespace
}  // namespace numaprof::core
