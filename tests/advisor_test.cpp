#include <gtest/gtest.h>

#include "core/advisor.hpp"

namespace numaprof::core {
namespace {

/// Builds a synthetic SessionData with one variable and hand-crafted
/// address-centric entries, so pattern classification is tested in
/// isolation from the simulator.
struct SyntheticSession {
  SyntheticSession(std::uint64_t pages = 50) {
    data.domain_count = 4;
    data.core_count = 8;
    data.mechanism = pmu::Mechanism::kIbs;

    Variable v;
    v.id = 0;
    v.name = "target";
    v.kind = VariableKind::kHeap;
    v.start = 0x100000;
    v.size = pages * simos::kPageBytes;
    v.page_count = pages;
    v.variable_node = data.cct.child(kRootNode, NodeKind::kVariable, 0);
    data.variables.push_back(v);

    data.stores.emplace_back(4);
    data.totals.emplace_back();
    data.totals[0].per_domain.assign(4, 0);
    // Make the program "warrant optimization".
    data.totals[0].samples = 1000;
    data.totals[0].memory_samples = 800;
    data.totals[0].mismatch = 700;
    data.totals[0].match = 100;
    data.totals[0].remote_latency = 200000;
    data.totals[0].total_latency = 210000;
    data.totals[0].instructions = 100000;
  }

  /// Adds accesses for thread `tid` covering [lo, hi) of the variable's
  /// normalized extent in `context`, spread over every bin touched.
  void add_range(simrt::ThreadId tid, double lo, double hi,
                 simrt::FrameId context = kWholeProgram,
                 std::uint64_t weight = 100) {
    const Variable& v = data.variables[0];
    const auto extent = static_cast<double>(v.extent_bytes());
    const auto begin = static_cast<std::uint64_t>(lo * extent);
    const auto end = static_cast<std::uint64_t>(hi * extent);
    const std::uint64_t step =
        std::max<std::uint64_t>(1, (end - begin) / 16);
    for (std::uint64_t off = begin; off < end; off += step) {
      const std::uint32_t bin = data.address_centric.bin_of(v, v.start + off);
      BinKey key{.context = context, .variable = 0, .bin = bin, .tid = tid};
      BinStats stats;
      for (std::uint64_t w = 0; w < weight / 16 + 1; ++w) {
        stats.update(v.start + off, 10.0);
      }
      data.address_centric.insert(key, stats);
      if (context != kWholeProgram) {
        // Whole-program view accumulates everything too.
        data.address_centric.insert(
            BinKey{.context = kWholeProgram, .variable = 0, .bin = bin,
                   .tid = tid},
            stats);
      }
    }
  }

  Advisor advisor() {
    analyzer = std::make_unique<Analyzer>(data);
    return Advisor(*analyzer);
  }

  SessionData data;
  std::unique_ptr<Analyzer> analyzer;
};

TEST(Advisor, BlockedPatternRecommendsBlockwise) {
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0);
  }
  const Advisor advisor = s.advisor();
  const PatternAnalysis p = advisor.classify(0);
  EXPECT_EQ(p.kind, PatternKind::kBlocked);
  EXPECT_GE(p.monotonic_fraction, 0.99);
  const Recommendation rec = advisor.recommend(0);
  EXPECT_EQ(rec.action, Action::kBlockwiseFirstTouch);
  EXPECT_TRUE(rec.severity_warrants);
}

TEST(Advisor, StaggeredOverlapRecommendsAosRegroup) {
  // Blackscholes-style: ascending staggered ranges with heavy overlap
  // (each thread spans ~60% of the variable).
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    const double lo = tid / 8.0 * 0.4;
    s.add_range(tid, lo, lo + 0.6);
  }
  const Advisor advisor = s.advisor();
  const PatternAnalysis p = advisor.classify(0);
  EXPECT_EQ(p.kind, PatternKind::kStaggeredOverlap);
  EXPECT_EQ(advisor.recommend(0).action, Action::kRegroupAos);
}

TEST(Advisor, FullRangeRecommendsInterleave) {
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, 0.0, 1.0);
  }
  const Advisor advisor = s.advisor();
  EXPECT_EQ(advisor.classify(0).kind, PatternKind::kFullRange);
  EXPECT_EQ(advisor.recommend(0).action, Action::kInterleave);
}

TEST(Advisor, SingleThreadRecommendsColocation) {
  SyntheticSession s;
  s.add_range(3, 0.0, 0.5);
  const Advisor advisor = s.advisor();
  EXPECT_EQ(advisor.classify(0).kind, PatternKind::kSingleThread);
  EXPECT_EQ(advisor.recommend(0).action, Action::kColocate);
}

TEST(Advisor, UnsampledVariableGetsNoAction) {
  SyntheticSession s;
  const Advisor advisor = s.advisor();
  EXPECT_EQ(advisor.classify(0).kind, PatternKind::kUnsampled);
  EXPECT_EQ(advisor.recommend(0).action, Action::kNone);
}

TEST(Advisor, NegligibleThreadsAreIgnored) {
  // A master thread that touched one element must not distort a clean
  // blocked pattern into "irregular".
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0, kWholeProgram, 1000);
  }
  s.add_range(9, 0.0, 1.0, kWholeProgram, 1);  // negligible full sweep
  const Advisor advisor = s.advisor();
  EXPECT_EQ(advisor.classify(0).kind, PatternKind::kBlocked);
}

TEST(Advisor, DrillsIntoDominantContextWhenWholeProgramIrregular) {
  // The §8.2 AMG scenario: whole-program pattern smeared (every thread
  // full-range), but the dominant region shows clean blocks.
  SyntheticSession s;
  const simrt::FrameId relax = 500;
  const simrt::FrameId matvec = 600;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    // Relax (dominant, blocked): high weight.
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0, relax, 800);
    // Matvec (cheaper, full-range): enough weight to smear the
    // whole-program view, far from enough to dominate.
    s.add_range(tid, 0.0, 1.0, matvec, 300);
  }
  const Advisor advisor = s.advisor();
  // Whole program looks full-range/irregular...
  const PatternAnalysis whole = advisor.classify(0);
  EXPECT_NE(whole.kind, PatternKind::kBlocked);
  // ...but the guiding context is the relax region and its blocked shape.
  const auto [context, share] = advisor.guiding_context(0);
  EXPECT_EQ(context, relax);
  EXPECT_GT(share, 0.5);
  const Recommendation rec = advisor.recommend(0);
  EXPECT_EQ(rec.guiding.kind, PatternKind::kBlocked);
  EXPECT_EQ(rec.action, Action::kBlockwiseFirstTouch);
  EXPECT_NE(rec.rationale.find("context"), std::string::npos);
}

TEST(Advisor, LowSeverityIsFlagged) {
  SyntheticSession s;
  s.data.totals[0].remote_latency = 100;  // lpi far below 0.1
  s.data.totals[0].total_latency = 50000;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0);
  }
  const Advisor advisor = s.advisor();
  const Recommendation rec = advisor.recommend(0);
  EXPECT_FALSE(rec.severity_warrants);
  EXPECT_NE(rec.rationale.find("below the 0.1 threshold"),
            std::string::npos);
}

TEST(Advisor, RecommendAllFollowsVariableRanking) {
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, tid / 8.0, (tid + 1) / 8.0);
  }
  // Analyzer needs metrics on the variable node to rank it.
  s.data.stores[0].add(s.data.variables[0].variable_node, kMemorySamples,
                       100);
  s.data.stores[0].add(s.data.variables[0].variable_node, kNumaMismatch,
                       90);
  s.data.stores[0].add(s.data.variables[0].variable_node, kRemoteLatency,
                       9000);
  const Advisor advisor = s.advisor();
  const auto recs = advisor.recommend_all(5);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].variable_name, "target");
}

TEST(Advisor, SparseSamplingStillDetectsBlocked) {
  // Each thread's observed range is a tiny sliver of its true block
  // (coverage << 0.5), but the slivers ascend across the variable —
  // exactly what sparse sampling of a blocked pattern produces.
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    const double lo = tid / 8.0 + 0.05;
    s.add_range(tid, lo, lo + 0.01);
  }
  const Advisor advisor = s.advisor();
  const PatternAnalysis p = advisor.classify(0);
  EXPECT_LT(p.coverage, 0.5);
  EXPECT_EQ(p.kind, PatternKind::kBlocked);
}

TEST(Advisor, IdenticalNarrowRangesAreNotStaggered) {
  // Every thread hammering the same small region must not classify as
  // staggered (which would imply an SoA layout to regroup).
  SyntheticSession s;
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(tid, 0.40, 0.44);
  }
  const Advisor advisor = s.advisor();
  EXPECT_NE(advisor.classify(0).kind, PatternKind::kStaggeredOverlap);
}

TEST(PatternNames, Strings) {
  EXPECT_EQ(to_string(PatternKind::kBlocked), "blocked");
  EXPECT_EQ(to_string(PatternKind::kStaggeredOverlap), "staggered-overlap");
  EXPECT_EQ(to_string(Action::kRegroupAos), "regroup-AoS+parallel-init");
  EXPECT_EQ(to_string(Action::kBlockwiseFirstTouch),
            "blockwise-first-touch");
}

}  // namespace
}  // namespace numaprof::core
