// Property tests for the memory-system model under EVERY topology preset,
// including the new SNC, CXL-far-memory, and NUMAscope ring machines.
// Rather than pinning latency constants, these tests pin the orderings any
// credible NUMA machine obeys: cost grows with hop count, a far-memory
// tier is never faster than local DRAM, sub-NUMA clusters keep
// intra-socket traffic cheaper than inter-socket, and a loaded memory
// controller queues (per-request latency is non-decreasing when requests
// arrive together).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "numasim/system.hpp"
#include "numasim/topology.hpp"
#include "support/error.hpp"

namespace numaprof::numasim {
namespace {

/// Cold-access latency from core 0 to a page homed in `home`, on a fresh
/// system (no cache or queue state carried between probes).
Cycles cold_latency(const Topology& topo, DomainId home) {
  System sys(topo);
  return sys.access(/*core=*/0, home, 0x10000, /*is_write=*/false, 0).latency;
}

TEST(TopologyPresets, ColdLatencyIsMonotonicInHopCount) {
  for (const std::string& name : preset_names()) {
    SCOPED_TRACE(name);
    const Topology topo = topology_by_name(name);
    // Compare compute domains only: memory-only tiers legitimately pay a
    // device penalty on top of their hop count (asserted separately).
    std::map<std::uint32_t, std::vector<Cycles>> by_hops;
    for (DomainId home = 0; home < topo.compute_domain_count(); ++home) {
      by_hops[topo.distance(0, home)].push_back(cold_latency(topo, home));
    }
    ASSERT_FALSE(by_hops.empty());
    Cycles prev_max = 0;
    std::uint32_t prev_hops = 0;
    bool first = true;
    for (const auto& [hops, latencies] : by_hops) {
      Cycles level_max = 0;
      for (const Cycles l : latencies) {
        if (!first) {
          EXPECT_GE(l, prev_max)
              << hops << " hops cheaper than " << prev_hops << " hops";
        }
        level_max = std::max(level_max, l);
      }
      prev_max = std::max(prev_max, level_max);
      prev_hops = hops;
      first = false;
    }
  }
}

TEST(TopologyPresets, FarMemoryIsNeverFasterThanLocalDram) {
  for (const std::string& name : preset_names()) {
    const Topology topo = topology_by_name(name);
    if (topo.memory_only_domains == 0) continue;
    SCOPED_TRACE(name);
    const Cycles local = cold_latency(topo, 0);
    for (DomainId home = topo.compute_domain_count();
         home < topo.domain_count; ++home) {
      EXPECT_TRUE(topo.is_memory_only(home));
      const Cycles far = cold_latency(topo, home);
      EXPECT_GT(far, local) << "far tier domain " << home
                            << " undercuts local DRAM";
      // The device penalty dominates: it also undercuts no ordinary
      // remote compute domain.
      for (DomainId other = 1; other < topo.compute_domain_count(); ++other) {
        EXPECT_GE(far, cold_latency(topo, other));
      }
    }
  }
}

TEST(TopologyPresets, SncIntraSocketBeatsInterSocket) {
  const Topology topo = topology_by_name("snc");
  ASSERT_EQ(topo.domain_count, 4u);
  // Domains 0/1 share a socket; 2/3 live in the other one.
  const Cycles intra = cold_latency(topo, 1);
  const Cycles inter_a = cold_latency(topo, 2);
  const Cycles inter_b = cold_latency(topo, 3);
  const Cycles local = cold_latency(topo, 0);
  EXPECT_GT(intra, local);
  EXPECT_LT(intra, inter_a);
  EXPECT_LT(intra, inter_b);
}

TEST(TopologyPresets, ControllerQueuesUnderSimultaneousLoad) {
  // Fire a burst of same-cycle requests at one home domain. The controller
  // is epoch-windowed: the k-th same-epoch arrival waits for the backlog
  // (k * service cycles) minus the virtual time already elapsed in the
  // epoch, so early arrivals ride free and delay only appears once demand
  // outruns what the controller could have drained. A burst much larger
  // than elapsed/service must therefore see monotonically non-decreasing
  // latency with a tail strictly above the uncontended cost.
  for (const std::string& name :
       {std::string("snc"), std::string("cxl-far-memory"),
        std::string("numascope")}) {
    SCOPED_TRACE(name);
    const Topology topo = topology_by_name(name);
    for (const DomainId home :
         {DomainId{0}, DomainId(topo.domain_count - 1)}) {
      System sys(topo);
      Cycles prev = 0;
      for (int i = 0; i < 64; ++i) {
        const auto r = sys.access(/*core=*/0, home,
                                  0x40000 + 0x1000ull * i, false, /*now=*/0);
        EXPECT_GE(r.latency, prev) << "request " << i << " home " << home;
        prev = r.latency;
      }
      EXPECT_GT(prev, cold_latency(topo, home))
          << "burst tail paid no queueing at home " << home;
    }
  }
}

TEST(TopologyPresets, PerDomainOverridesPlumbThrough) {
  const Topology cxl = topology_by_name("cxl-far-memory");
  ASSERT_EQ(cxl.domain_dram_latency.size(), cxl.domain_count);
  ASSERT_EQ(cxl.domain_controller_service.size(), cxl.domain_count);
  EXPECT_EQ(cxl.dram_latency_of(0), cxl.domain_dram_latency[0]);
  EXPECT_EQ(cxl.dram_latency_of(cxl.domain_count - 1),
            cxl.domain_dram_latency[cxl.domain_count - 1]);
  EXPECT_GT(cxl.dram_latency_of(cxl.domain_count - 1),
            2 * cxl.dram_latency_of(0));
  EXPECT_EQ(cxl.compute_domain_count(),
            cxl.domain_count - cxl.memory_only_domains);
  EXPECT_EQ(cxl.core_count(),
            cxl.compute_domain_count() * cxl.cores_per_domain);

  // Presets without overrides fall back to the machine-wide latency.
  const Topology snc = topology_by_name("snc");
  ASSERT_TRUE(snc.domain_dram_latency.empty());
  EXPECT_EQ(snc.dram_latency_of(0), snc.local_dram_latency);
  EXPECT_EQ(snc.controller_service_of(3), snc.controller_service);
}

}  // namespace
}  // namespace numaprof::numasim
