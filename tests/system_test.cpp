#include <gtest/gtest.h>

#include "numasim/system.hpp"

namespace numaprof::numasim {
namespace {

System make_system() { return System(test_machine(2, 2)); }  // 2 dom x 2 cores

TEST(System, ColdLocalAccessReachesLocalDram) {
  System sys = make_system();
  const MemoryResult r = sys.access(/*core=*/0, /*home=*/0, 0x1000, false, 0);
  EXPECT_EQ(r.source, DataSource::kLocalDram);
  EXPECT_TRUE(r.l3_miss);
  // l2 miss detect + l3 miss detect + controller pipe, no interconnect.
  const Topology& t = sys.topology();
  EXPECT_GE(r.latency, t.local_dram_latency);
}

TEST(System, ColdRemoteAccessPaysInterconnect) {
  System sys = make_system();
  const MemoryResult local = sys.access(0, 0, 0x1000, false, 0);
  System sys2 = make_system();
  const MemoryResult remote = sys2.access(0, 1, 0x1000, false, 0);
  EXPECT_EQ(remote.source, DataSource::kRemoteDram);
  EXPECT_GT(remote.latency, local.latency);
  // §2: remote at least 30% slower.
  EXPECT_GT(static_cast<double>(remote.latency),
            1.3 * static_cast<double>(local.latency));
}

TEST(System, RepeatAccessHitsL1) {
  System sys = make_system();
  sys.access(0, 1, 0x1000, false, 0);
  const MemoryResult r = sys.access(0, 1, 0x1000, false, 100);
  EXPECT_EQ(r.source, DataSource::kL1);
  EXPECT_EQ(r.latency, sys.topology().l1.hit_latency);
  EXPECT_FALSE(r.l3_miss);
  // The §4.1 bias: the page is remote by move_pages, but no remote traffic
  // occurs — the data source says L1.
  EXPECT_FALSE(is_remote(r.source));
}

TEST(System, EvictedFromL1HitsL2) {
  System sys = make_system();
  // Lines 0, 4, 12 share L1 set 0 (4 sets) but lines 4/12 land in L2 set 4
  // (8 sets), so line 0 is evicted from the 2-way L1 yet survives in L2.
  sys.access(0, 0, 0, false, 0);
  sys.access(0, 0, 4 * kLineBytes, false, 1);
  sys.access(0, 0, 12 * kLineBytes, false, 2);
  const MemoryResult r = sys.access(0, 0, 0, false, 1000);
  EXPECT_EQ(r.source, DataSource::kL2);
}

TEST(System, SecondCoreHitsHomeL3) {
  System sys = make_system();
  sys.access(0, 0, 0x2000, false, 0);  // core 0 fills L3 of domain 0
  const MemoryResult r = sys.access(1, 0, 0x2000, false, 10);
  EXPECT_EQ(r.source, DataSource::kLocalL3);  // core 1 is also domain 0
}

TEST(System, RemoteCoreHitsRemoteL3) {
  System sys = make_system();
  sys.access(0, 0, 0x2000, false, 0);
  const MemoryResult r = sys.access(2, 0, 0x2000, false, 10);  // domain 1
  EXPECT_EQ(r.source, DataSource::kRemoteL3);
  EXPECT_TRUE(is_remote(r.source));
}

TEST(System, ControllerRequestCountsPerDomain) {
  System sys = make_system();
  sys.access(0, 0, 0x10000, false, 0);
  sys.access(0, 0, 0x20000, false, 10);
  sys.access(0, 1, 0x30000, false, 20);
  const auto counts = sys.controller_requests();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(System, InvalidateLineForcesRefetch) {
  System sys = make_system();
  sys.access(0, 0, 0x4000, false, 0);
  sys.invalidate_line(line_of(0x4000));
  const MemoryResult r = sys.access(0, 0, 0x4000, false, 10);
  EXPECT_TRUE(is_dram(r.source));
}

TEST(System, ClearCachesKeepsStats) {
  System sys = make_system();
  sys.access(0, 0, 0x4000, false, 0);
  sys.clear_caches();
  EXPECT_EQ(sys.controller_requests()[0], 1u);
  const MemoryResult r = sys.access(0, 0, 0x4000, false, 10);
  EXPECT_TRUE(is_dram(r.source));
}

TEST(System, ResetStatsClearsCounters) {
  System sys = make_system();
  sys.access(0, 0, 0x4000, false, 0);
  sys.reset_stats();
  EXPECT_EQ(sys.controller_requests()[0], 0u);
}

TEST(System, ContentionInflatesLatency) {
  System sys = make_system();
  // Uncontended remote access.
  const Cycles base = sys.access(2, 0, 0x100000, false, 0).latency;
  // Burst of same-epoch requests into domain 0 from the other domain.
  Cycles last = 0;
  for (int i = 0; i < 64; ++i) {
    last = sys.access(2, 0, 0x200000 + i * 64 * kLineBytes, false, 10).latency;
  }
  EXPECT_GT(last, base);  // queueing showed up
}

TEST(System, MultiHopRemotePaysMorePropagation) {
  // On the HT-fabric preset, a 2-hop access costs more than a 1-hop one.
  System sys(numasim::amd_magny_cours_ht());
  // Requester core 0 (domain 0): domain 1 is same-socket (1 hop), domain 2
  // is cross-socket (2 hops). Cold accesses, distinct lines, same time.
  const Cycles one_hop = sys.access(0, 1, 0x100000, false, 0).latency;
  const Cycles two_hop = sys.access(0, 2, 0x200000, false, 0).latency;
  const Topology& t = sys.topology();
  EXPECT_EQ(two_hop - one_hop, 2 * t.remote_hop_latency);
}

TEST(System, WritesFillCachesLikeReads) {
  System sys = make_system();
  sys.access(0, 0, 0x8000, /*is_write=*/true, 0);
  const MemoryResult r = sys.access(0, 0, 0x8000, false, 10);
  EXPECT_EQ(r.source, DataSource::kL1);  // write-allocate
}

}  // namespace
}  // namespace numaprof::numasim
