#include <gtest/gtest.h>

#include <sstream>

#include "apps/common.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/trace.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

/// Two-phase workload: local serial init, then remote-heavy parallel work.
SessionData run_two_phase(bool record_trace, std::size_t capacity = 1 << 20) {
  Machine m(numasim::test_machine(4, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  cfg.record_trace = record_trace;
  cfg.trace_capacity = capacity;
  Profiler profiler(m, cfg);

  simos::VAddr data = 0;
  const std::uint64_t elems = 8 * 6 * (simos::kPageBytes / 8);
  parallel_region(m, 1, "init", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(elems * 8, "grid");
                    for (std::uint64_t i = 0; i < elems; i += 8) {
                      t.store(data + i * 8);  // local phase
                    }
                    co_return;
                  });
  parallel_region(m, 8, "work._omp", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const std::uint64_t b = elems * index / 8;
                    const std::uint64_t e = elems * (index + 1) / 8;
                    for (int sweep = 0; sweep < 3; ++sweep) {
                      for (std::uint64_t i = b; i < e; i += 8) {
                        t.load(data + i * 8);  // mostly remote phase
                        co_await t.tick();
                      }
                      co_await t.yield();
                    }
                  });
  return profiler.snapshot();
}

TEST(Trace, DisabledByDefault) {
  const SessionData data = run_two_phase(false);
  EXPECT_TRUE(data.trace.empty());
}

TEST(Trace, RecordsOneEventPerMemorySample) {
  const SessionData data = run_two_phase(true);
  std::uint64_t memory_samples = 0;
  for (const ThreadTotals& t : data.totals) memory_samples += t.memory_samples;
  EXPECT_EQ(data.trace.size(), memory_samples);
  // Timestamps are populated and bounded by the run.
  for (const TraceEvent& e : data.trace) {
    EXPECT_GT(e.time, 0u);
  }
}

TEST(Trace, CapacityBoundsRecording) {
  const SessionData data = run_two_phase(true, /*capacity=*/10);
  EXPECT_EQ(data.trace.size(), 10u);
}

TEST(Trace, WindowsPartitionTheRun) {
  const SessionData data = run_two_phase(true);
  const TraceAnalysis analysis(data.trace);
  ASSERT_FALSE(analysis.empty());
  const auto windows = analysis.windows(16);
  ASSERT_EQ(windows.size(), 16u);
  std::uint64_t total = 0;
  for (const TraceWindow& w : windows) {
    EXPECT_LE(w.begin, w.end);
    total += w.samples;
  }
  EXPECT_EQ(total, data.trace.size());
  EXPECT_EQ(windows.front().begin, analysis.begin());
}

TEST(Trace, TwoPhaseStructureVisible) {
  const SessionData data = run_two_phase(true);
  const TraceAnalysis analysis(data.trace);
  const auto windows = analysis.windows(16);
  // Early windows (serial init): all local. Late windows: mostly remote
  // (6 of 8 worker threads run outside domain 0).
  EXPECT_LT(windows.front().mismatch_fraction(), 0.1);
  EXPECT_GT(windows.back().mismatch_fraction(), 0.5);
}

TEST(Trace, PhasesSegmentLocalThenRemote) {
  const SessionData data = run_two_phase(true);
  const TraceAnalysis analysis(data.trace);
  const auto phases = analysis.phases(32, 0.5);
  ASSERT_GE(phases.size(), 2u);
  EXPECT_FALSE(phases.front().remote_heavy);  // init
  EXPECT_TRUE(phases.back().remote_heavy);    // parallel work
  // Phases tile the run without overlap.
  for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
    EXPECT_EQ(phases[i].end, phases[i + 1].begin);
  }
}

TEST(Trace, WindowsForVariableFilter) {
  SessionData data = run_two_phase(true);
  const TraceAnalysis analysis(data.trace);
  const auto grid = [&] {
    for (const Variable& v : data.variables) {
      if (v.name == "grid") return v.id;
    }
    return VariableId{9999};
  }();
  const auto all = analysis.windows(8);
  const auto grid_only = analysis.windows_for(grid, 8);
  std::uint64_t all_count = 0, grid_count = 0;
  for (const auto& w : all) all_count += w.samples;
  for (const auto& w : grid_only) grid_count += w.samples;
  EXPECT_GT(grid_count, 0u);
  EXPECT_LE(grid_count, all_count);
}

TEST(Trace, TimelineRendersPhases) {
  const SessionData data = run_two_phase(true);
  const TraceAnalysis analysis(data.trace);
  const std::string line = analysis.timeline(32);
  ASSERT_EQ(line.size(), 32u);
  // Starts local ('.'), ends remote-heavy ('#' or '+').
  EXPECT_EQ(line.front(), '.');
  EXPECT_TRUE(line.back() == '#' || line.back() == '+') << line;
}

TEST(Trace, ViewerTimelineWrapsAnalysis) {
  const SessionData with = run_two_phase(true);
  const Analyzer analyzer(with);
  const Viewer viewer(analyzer);
  const std::string timeline = viewer.trace_timeline(24);
  EXPECT_NE(timeline.find("trace timeline"), std::string::npos);

  const SessionData without = run_two_phase(false);
  const Analyzer analyzer2(without);
  EXPECT_TRUE(Viewer(analyzer2).trace_timeline().empty());
}

TEST(Trace, SerializationRoundTrip) {
  const SessionData original = run_two_phase(true);
  std::stringstream stream;
  ProfileWriter().write(original, stream);
  const SessionData loaded = ProfileReader().read(stream).data;
  ASSERT_EQ(loaded.trace.size(), original.trace.size());
  for (std::size_t i = 0; i < loaded.trace.size(); i += 97) {
    EXPECT_EQ(loaded.trace[i].time, original.trace[i].time);
    EXPECT_EQ(loaded.trace[i].tid, original.trace[i].tid);
    EXPECT_EQ(loaded.trace[i].mismatch, original.trace[i].mismatch);
    EXPECT_EQ(loaded.trace[i].latency, original.trace[i].latency);
  }
}

TEST(Trace, EmptyAnalysisIsSane) {
  const std::vector<TraceEvent> none;
  const TraceAnalysis analysis(none);
  EXPECT_TRUE(analysis.empty());
  EXPECT_TRUE(analysis.phases(8).empty());
  const auto windows = analysis.windows(4);
  EXPECT_EQ(windows.size(), 4u);
  for (const auto& w : windows) EXPECT_EQ(w.samples, 0u);
}

TEST(DataSources, RecordedPerVariableUnderIbs) {
  const SessionData data = run_two_phase(false);
  const Analyzer analyzer(data);
  const Viewer viewer(analyzer);
  const auto grid = [&] {
    for (const Variable& v : data.variables) {
      if (v.name == "grid") return v.id;
    }
    return VariableId{0};
  }();
  // Source counters sum to the variable's memory samples (IBS reports a
  // source for every sampled access).
  const auto& merged = analyzer.merged();
  const NodeId node = data.variables[grid].variable_node;
  double sources = 0;
  for (std::uint32_t m = kSourceL1; m <= kSourceRemoteDram; ++m) {
    sources += merged.get(node, m);
  }
  EXPECT_DOUBLE_EQ(sources, merged.get(node, kMemorySamples));
  // And the remote-DRAM row dominates for this thrash-everything workload.
  const std::string table = viewer.data_source_table(grid).to_text();
  EXPECT_NE(table.find("remote-DRAM"), std::string::npos);
}

TEST(Eq1Decomposition, FactorsMultiplyToLpi) {
  const SessionData data = run_two_phase(false);
  const Analyzer analyzer(data);
  const ProgramSummary& p = analyzer.program();
  ASSERT_TRUE(p.lpi.has_value());
  // lpi (Eq. 2) ~= avg_remote_latency * remote_fraction * memory_fraction
  // * (I / I^s scaling): with IBS, sampled instructions are a uniform
  // subset, so the product of the three factors approximates lpi when the
  // sample population mirrors the instruction stream.
  const double product = p.avg_remote_latency * p.remote_access_fraction *
                         static_cast<double>(p.memory_samples) /
                         static_cast<double>(p.samples);
  EXPECT_NEAR(product, *p.lpi, *p.lpi * 0.05);
  EXPECT_GT(p.memory_fraction, 0.0);
  EXPECT_LE(p.memory_fraction, 1.0);
}

}  // namespace
}  // namespace numaprof::core
