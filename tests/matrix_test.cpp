// Cross-product smoke-and-invariants sweep: every case-study app under
// every sampling mechanism. Whatever the mechanism, a profile must be
// internally consistent (classification totals, domain attribution,
// capability-gated fields).
#include <gtest/gtest.h>

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof {
namespace {

enum class App { kLulesh, kAmg, kBlackscholes, kUmt };

std::string app_name(App app) {
  switch (app) {
    case App::kLulesh: return "lulesh";
    case App::kAmg: return "amg";
    case App::kBlackscholes: return "blackscholes";
    case App::kUmt: return "umt";
  }
  return "?";
}

using Param = std::tuple<App, pmu::Mechanism>;

class AppMechanismMatrix : public ::testing::TestWithParam<Param> {
 protected:
  core::SessionData run() {
    const auto [app, mechanism] = GetParam();
    simrt::Machine machine(numasim::amd_magny_cours());
    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(mechanism);
    // Dense enough that every mechanism collects samples on small runs.
    // PRIME period: Soft-IBS decimates deterministically, and a period
    // sharing a factor with the workload's per-iteration access count
    // aliases onto one instruction (the §3 uniformity hazard — see
    // SoftIbs.FixedPeriodAliasesOnRegularLoops in pmu_test).
    cfg.event.period = std::min<std::uint64_t>(cfg.event.period, 293);
    cfg.event.min_sample_gap = 0;
    cfg.event.instrumentation_work = 0;
    cfg.event.skid_correction_work = 0;
    core::Profiler profiler(machine, cfg);

    switch (app) {
      case App::kLulesh:
        apps::run_minilulesh(machine, {.threads = 12,
                                       .pages_per_thread = 3,
                                       .timesteps = 3,
                                       .variant = apps::Variant::kBaseline});
        break;
      case App::kAmg:
        // Sized so RAP_diag_data (12*2048*4*8 = 768 KiB) exceeds the home
        // domain's L3: MRK needs steady-state misses to observe workers.
        apps::run_miniamg(machine, {.threads = 12,
                                    .rows_per_thread = 2048,
                                    .nnz_per_row = 4,
                                    .relax_sweeps = 3,
                                    .matvec_sweeps = 1,
                                    .variant = apps::Variant::kBaseline});
        break;
      case App::kBlackscholes: {
        apps::BlackscholesConfig bs;
        bs.threads = 12;
        bs.options_per_thread = 1536;  // buffer 720 KiB > domain-0 L3
        bs.iterations = 12;
        apps::run_miniblackscholes(machine, bs);
        break;
      }
      case App::kUmt:
        // STime 64*32*48*8 = 768 KiB > the home domain's L3.
        apps::run_miniumt(machine, {.threads = 12,
                                    .groups = 64,
                                    .corners = 32,
                                    .angles = 48,
                                    .sweeps = 3,
                                    .variant = apps::Variant::kBaseline});
        break;
    }
    return profiler.snapshot();
  }
};

TEST_P(AppMechanismMatrix, ProfileIsInternallyConsistent) {
  const core::SessionData data = run();
  const core::Analyzer analyzer(data);
  const core::ProgramSummary& p = analyzer.program();
  const auto caps = pmu::capabilities_of(std::get<1>(GetParam()));

  // Samples were collected and classified exhaustively. (Latency-
  // threshold mechanisms legitimately sample little on cache-friendly
  // workloads, so the floor is small.)
  ASSERT_GT(p.memory_samples, 0u);
  EXPECT_EQ(p.match + p.mismatch, p.memory_samples);
  std::uint64_t per_domain = 0;
  for (const auto v : p.per_domain) per_domain += v;
  EXPECT_EQ(per_domain, p.memory_samples);

  // Capability gating.
  EXPECT_EQ(p.lpi.has_value(), caps.reports_latency);
  if (!caps.reports_latency) {
    EXPECT_EQ(p.total_latency, 0.0);
  } else {
    EXPECT_GE(p.total_latency, p.remote_latency);
  }

  // Conventional counters are always present.
  EXPECT_GT(p.instructions, 0u);
  EXPECT_GE(p.instructions, p.memory_instructions);

  // Variable ranking exists and shares are sane.
  ASSERT_FALSE(analyzer.variables().empty());
  double share = 0.0;
  for (const auto& r : analyzer.variables()) {
    EXPECT_LE(r.mismatch_share, 1.0 + 1e-9);
    share += r.mismatch_share;
  }
  EXPECT_LE(share, 1.0 + 1e-9);
}

TEST_P(AppMechanismMatrix, MasterInitedDataIsMismatchHeavy) {
  const auto [app, mechanism] = GetParam();
  const core::SessionData data = run();
  const core::Analyzer analyzer(data);
  // Each app has one canonical master-initialized hot variable.
  const char* hot = nullptr;
  switch (app) {
    case App::kLulesh: hot = "z"; break;
    case App::kAmg: hot = "RAP_diag_data"; break;
    case App::kBlackscholes: hot = "buffer"; break;
    case App::kUmt: hot = "STime"; break;
  }
  for (const core::Variable& v : data.variables) {
    if (v.name != hot) continue;
    const auto report = analyzer.report(v.id);
    if (report.samples < 10) return;  // too sparse to judge (rate-limited MRK)
    EXPECT_GT(report.mismatch, report.match)
        << app_name(app) << "/" << to_string(mechanism) << " on " << hot;
    ASSERT_TRUE(report.single_home_domain.has_value());
    EXPECT_EQ(*report.single_home_domain, 0u);
    return;
  }
  FAIL() << "hot variable not found: " << hot;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AppMechanismMatrix,
    ::testing::Combine(
        ::testing::Values(App::kLulesh, App::kAmg, App::kBlackscholes,
                          App::kUmt),
        ::testing::Values(pmu::Mechanism::kIbs, pmu::Mechanism::kMrk,
                          pmu::Mechanism::kPebs, pmu::Mechanism::kDear,
                          pmu::Mechanism::kPebsLl, pmu::Mechanism::kSoftIbs,
                          pmu::Mechanism::kSpe)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = app_name(std::get<0>(info.param)) + "_";
      for (const char c : to_string(std::get<1>(info.param))) {
        if (std::isalnum(static_cast<unsigned char>(c))) name.push_back(c);
      }
      return name;
    });

}  // namespace
}  // namespace numaprof
