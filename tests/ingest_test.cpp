// The crash-safe ingestion service (src/ingest/): frame codec, write-ahead
// log, retry/backoff client, and WAL-backed server. Everything here is
// deterministic — seeded faults, tick-based time — and the headline lock
// is crash-restart equivalence: a daemon that dies mid-ingest and recovers
// from its torn WAL must merge to byte-identical analysis output for every
// one of the four paper case studies.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common.hpp"
#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "ingest/server.hpp"
#include "numasim/topology.hpp"
#include "support/faultinject.hpp"

namespace numaprof::ingest {
namespace {

namespace fs = std::filesystem;

/// A scratch directory wiped on construction and destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (fs::path(path) / name).string();
  }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

// ---------------------------------------------------------------- frames

TEST(FrameCodec, RoundTripsEveryClientFrameType) {
  for (const FrameType type : {FrameType::kHello, FrameType::kShard,
                               FrameType::kTelemetry, FrameType::kBye,
                               FrameType::kAck, FrameType::kNack,
                               FrameType::kBusy}) {
    Frame frame;
    frame.type = type;
    frame.client = 7;
    frame.sequence = 0x1122334455667788ull;
    frame.payload = "payload \xFF\x00 bytes";
    const std::string bytes = encode_frame(frame);
    EXPECT_EQ(bytes, encode_frame(frame)) << "encode must be deterministic";
    const DecodeResult result = decode_frame(bytes);
    ASSERT_EQ(result.status, DecodeStatus::kOk) << to_string(type);
    EXPECT_EQ(result.consumed, bytes.size());
    EXPECT_EQ(result.frame.type, frame.type);
    EXPECT_EQ(result.frame.client, frame.client);
    EXPECT_EQ(result.frame.sequence, frame.sequence);
    EXPECT_EQ(result.frame.payload, frame.payload);
  }
}

TEST(FrameCodec, OversizePayloadThrowsTypedError) {
  Frame frame;
  frame.payload.assign(kMaxFramePayload + 1, 'x');
  EXPECT_THROW(encode_frame(frame), Error);
}

TEST(FrameCodec, PartialFrameNeedsMore) {
  Frame frame;
  frame.payload = "abc";
  const std::string bytes = encode_frame(frame);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                kFrameHeaderBytes - 1, kFrameHeaderBytes,
                                bytes.size() - 1}) {
    const DecodeResult result = decode_frame(std::string_view(bytes).substr(0, cut));
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(result.consumed, 0u);
  }
}

TEST(FrameCodec, CorruptByteIsDetectedAndStreamResynchronizes) {
  Frame first;
  first.sequence = 1;
  first.payload = "first";
  Frame second;
  second.sequence = 2;
  second.payload = "second";
  std::string stream = encode_frame(first) + encode_frame(second);
  stream[kFrameHeaderBytes] ^= 0x20;  // flip a payload byte of frame 1

  DecodeResult result = decode_frame(stream);
  EXPECT_EQ(result.status, DecodeStatus::kBadCrc);
  ASSERT_GT(result.consumed, 0u) << "corruption must always make progress";
  // Skipping the damaged region resynchronizes on the second frame.
  result = decode_frame(std::string_view(stream).substr(result.consumed));
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.sequence, 2u);
  EXPECT_EQ(result.frame.payload, "second");
}

TEST(FrameCodec, GarbagePrefixIsSkippedToNextMagic) {
  Frame frame;
  frame.sequence = 9;
  frame.payload = "ok";
  const std::string stream = "garbage bytes" + encode_frame(frame);
  DecodeResult result = decode_frame(stream);
  EXPECT_EQ(result.status, DecodeStatus::kBadMagic);
  ASSERT_GT(result.consumed, 0u);
  result = decode_frame(std::string_view(stream).substr(result.consumed));
  ASSERT_EQ(result.status, DecodeStatus::kOk);
  EXPECT_EQ(result.frame.sequence, 9u);
}

// ------------------------------------------------------------------- WAL

TEST(Wal, AppendReplayRoundTrip) {
  TempDir dir("numaprof_wal_roundtrip");
  const std::string path = dir.file("log.wal");
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
      WalRecord record;
      record.type = seq == 1 ? WalRecordType::kHello : WalRecordType::kShard;
      record.client = 3;
      record.sequence = seq;
      record.payload = "payload-" + std::to_string(seq);
      EXPECT_TRUE(writer.append(record));
    }
    EXPECT_EQ(writer.records(), 5u);
  }
  const WalReplay replay = replay_wal(path);
  EXPECT_EQ(replay.torn_bytes, 0u);
  EXPECT_TRUE(replay.stop_reason.empty());
  ASSERT_EQ(replay.records.size(), 5u);
  EXPECT_EQ(replay.records[0].type, WalRecordType::kHello);
  EXPECT_EQ(replay.records[4].sequence, 5u);
  EXPECT_EQ(replay.records[4].payload, "payload-5");
}

TEST(Wal, MissingFileReplaysEmpty) {
  const WalReplay replay = replay_wal("/nonexistent/numaprof.wal");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_EQ(replay.torn_bytes, 0u);
}

TEST(Wal, TornTailIsDetectedAndRecoveryTruncatesIt) {
  TempDir dir("numaprof_wal_torn");
  const std::string path = dir.file("log.wal");
  std::string half;
  {
    WalWriter writer(path);
    WalRecord record;
    record.client = 1;
    record.sequence = 1;
    record.payload = "durable";
    ASSERT_TRUE(writer.append(record));
    record.sequence = 2;
    half = encode_wal_record(record, 2);
    half.resize(half.size() / 2);  // the crash: half a record on disk
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << half;
  }
  const std::uint64_t full_size = fs::file_size(path);

  const WalReplay scan = replay_wal(path);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.torn_bytes, half.size());
  EXPECT_FALSE(scan.stop_reason.empty());
  EXPECT_EQ(fs::file_size(path), full_size) << "replay_wal must not modify";

  const WalReplay recovered = recover_wal(path);
  ASSERT_EQ(recovered.records.size(), 1u);
  EXPECT_EQ(recovered.records[0].payload, "durable");
  EXPECT_EQ(fs::file_size(path), recovered.valid_bytes);

  // Appends continue cleanly after the truncated tail.
  {
    WalWriter writer(path, {}, recovered.valid_bytes,
                     recovered.records.size());
    WalRecord record;
    record.client = 1;
    record.sequence = 2;
    record.payload = "after recovery";
    ASSERT_TRUE(writer.append(record));
  }
  const WalReplay final_scan = replay_wal(path);
  EXPECT_EQ(final_scan.torn_bytes, 0u);
  ASSERT_EQ(final_scan.records.size(), 2u);
  EXPECT_EQ(final_scan.records[1].payload, "after recovery");
}

TEST(Wal, BitFlipInvalidatesOnlyTheSuffix) {
  TempDir dir("numaprof_wal_flip");
  const std::string path = dir.file("log.wal");
  {
    WalWriter writer(path);
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
      WalRecord record;
      record.sequence = seq;
      record.payload = std::string(64, static_cast<char>('a' + seq));
      ASSERT_TRUE(writer.append(record));
    }
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x01;  // damage record 2-or-3 territory
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const WalReplay replay = replay_wal(path);
  EXPECT_LT(replay.records.size(), 4u);
  EXPECT_GT(replay.torn_bytes, 0u);
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].sequence, i + 1)
        << "the valid prefix must be intact";
  }
}

TEST(Wal, DiskFullFaultRejectsAppendsDeterministically) {
  TempDir dir("numaprof_wal_full");
  const std::string path = dir.file("log.wal");
  support::FaultPlan plan = support::FaultPlan::parse("disk-full=256");
  WalWriter::Options options;
  options.faults = &plan;
  WalWriter writer(path, options);
  WalRecord record;
  record.payload = std::string(64, 'x');
  int accepted = 0, rejected = 0;
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    record.sequence = seq;
    (writer.append(record) ? accepted : rejected)++;
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(writer.rejected(), static_cast<std::uint64_t>(rejected));
  EXPECT_LE(writer.bytes(), 256u + kWalHeaderBytes + 64 + kWalTrailerBytes);
  EXPECT_EQ(plan.counters().wal_full_rejections,
            static_cast<std::uint64_t>(rejected));
  // Nothing after the budget reached the disk; the log replays clean.
  const WalReplay replay = replay_wal(path);
  EXPECT_EQ(replay.torn_bytes, 0u);
  EXPECT_EQ(replay.records.size(), static_cast<std::size_t>(accepted));
}

// -------------------------------------------------- client/server faults

std::vector<std::string> test_shards(std::size_t count) {
  std::vector<std::string> shards;
  for (std::size_t i = 0; i < count; ++i) {
    shards.push_back("shard payload " + std::to_string(i + 1) + " " +
                     std::string(32 + i, static_cast<char>('A' + i % 26)));
  }
  return shards;
}

TEST(IngestSession, CleanRunDeliversEverythingWithoutRetries) {
  IngestServer server;
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 4});
  const SendReport report =
      client.send_shards(test_shards(6), {"telemetry line"});
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.shards_total, 6u);
  EXPECT_EQ(report.shards_delivered, 6u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.rewinds, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_accepted, 6u);
  EXPECT_EQ(stats.telemetry_lines, 1u);
  EXPECT_EQ(stats.corrupt_regions, 0u);
  const auto summaries = server.client_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].id, 4u);
  EXPECT_EQ(summaries[0].announced, 6u);
  EXPECT_EQ(summaries[0].contiguous, 6u);
  EXPECT_TRUE(summaries[0].done);
}

TEST(IngestSession, DroppedFramesAreRetriedToCompletion) {
  support::FaultPlan plan = support::FaultPlan::parse("seed=11;frame-drop=0.4");
  IngestServer server;
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 1, .faults = &plan});
  const SendReport report = client.send_shards(test_shards(8));
  EXPECT_TRUE(report.complete) << report.give_up_reason;
  EXPECT_EQ(report.shards_delivered, 8u);
  EXPECT_GT(report.frames_dropped, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.backoff_ticks, 0u);
  EXPECT_EQ(plan.counters().dropped_frames, report.frames_dropped);
  EXPECT_EQ(server.stats().frames_accepted, 8u);
}

TEST(IngestSession, CorruptedFramesAreNackedAndRetransmitted) {
  support::FaultPlan plan =
      support::FaultPlan::parse("seed=3;frame-corrupt=0.3");
  IngestServer server;
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 1, .faults = &plan});
  const SendReport report = client.send_shards(test_shards(8));
  EXPECT_TRUE(report.complete) << report.give_up_reason;
  EXPECT_EQ(report.shards_delivered, 8u);
  EXPECT_GT(report.frames_corrupted, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_accepted, 8u);
  EXPECT_GT(stats.corrupt_regions, 0u);
  // Every accepted shard arrived intact despite the corruption.
  const auto summaries = server.client_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].contiguous, 8u);
}

TEST(IngestSession, DisconnectsResumeFromLastAckedSequence) {
  support::FaultPlan plan = support::FaultPlan::parse("disconnect=4");
  IngestServer server;
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 1, .faults = &plan});
  const SendReport report = client.send_shards(test_shards(10));
  EXPECT_TRUE(report.complete) << report.give_up_reason;
  EXPECT_EQ(report.shards_delivered, 10u);
  EXPECT_GT(report.reconnects, 0u);
  EXPECT_EQ(plan.counters().disconnects, report.reconnects);
  EXPECT_EQ(server.stats().frames_accepted, 10u);
}

TEST(IngestSession, StallGivesUpGracefullyAndServerEvicts) {
  support::FaultPlan plan = support::FaultPlan::parse("stall=5");
  ServerOptions options;
  options.evict_after_ticks = 4;
  IngestServer server(options);
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 2, .faults = &plan});
  const SendReport report = client.send_shards(test_shards(10));
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.give_up_reason, "transport stalled mid-frame");
  EXPECT_LT(report.shards_delivered, 10u);
  EXPECT_EQ(plan.counters().transport_stalls, 1u);

  server.finish();  // sweeps the half-written frame into an eviction
  EXPECT_EQ(server.stats().clients_evicted, 1u);
  const auto summaries = server.client_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_TRUE(summaries[0].evicted);
  EXPECT_FALSE(summaries[0].done);
}

/// A loopback that ticks the server only every other exchange, so shards
/// arrive faster than drain_per_tick can retire them and the bounded
/// queue genuinely fills.
class SlowDrainLoopback final : public Transport {
 public:
  explicit SlowDrainLoopback(IngestServer& server)
      : server_(server), conn_(server.connect()) {}
  std::string exchange(std::string_view bytes) override {
    if (++calls_ % 2 == 0) server_.tick();
    std::string responses;
    server_.feed(conn_, bytes, &responses);
    return responses;
  }
  void reconnect() override {
    server_.disconnect(conn_);
    conn_ = server_.connect();
  }

 private:
  IngestServer& server_;
  std::uint64_t calls_ = 0;
  IngestServer::ConnectionId conn_;
};

TEST(IngestSession, BackpressureBusyIsAbsorbedByBackoff) {
  ServerOptions options;
  options.queue_capacity = 1;
  options.drain_per_tick = 1;
  IngestServer server(options);
  SlowDrainLoopback loop(server);
  IngestClient client(loop, {.client_id = 1});
  const SendReport report = client.send_shards(test_shards(8));
  EXPECT_TRUE(report.complete) << report.give_up_reason;
  EXPECT_EQ(report.shards_delivered, 8u);
  EXPECT_GT(report.busy_deferrals, 0u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_accepted, 8u);
  EXPECT_GT(stats.busy_rejections, 0u);
}

TEST(IngestSession, RetransmitsAreIdempotent) {
  // Replaying the same one-way stream twice (a client that crashed after
  // spooling and spooled again) must not double-ingest anything.
  IngestServer server;
  const std::string stream = encode_client_stream(test_shards(5), 6);
  server.ingest_stream(stream);
  server.ingest_stream(stream);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_accepted, 5u) << "duplicates must not re-ingest";
  EXPECT_GE(stats.frames_duplicate, 5u);
  const auto summaries = server.client_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].accepted, 5u);
}

TEST(IngestSession, HelloAckResumeAvoidsRedundantRetransmits) {
  // The two-way path goes further: a second client session for the same
  // id learns the server's contiguous watermark from the hello ACK and
  // skips the already-acked shards entirely.
  IngestServer server;
  const std::vector<std::string> shards = test_shards(5);
  for (int run = 0; run < 2; ++run) {
    LoopbackTransport loop(server);
    IngestClient client(loop, {.client_id = 6});
    const SendReport report = client.send_shards(shards);
    EXPECT_TRUE(report.complete);
    if (run == 1) {
      EXPECT_EQ(report.frames_sent, 2u) << "only hello + bye on resume";
    }
  }
  EXPECT_EQ(server.stats().frames_accepted, 5u);
  EXPECT_EQ(server.stats().frames_duplicate, 0u);
}

TEST(IngestSession, ResumeAfterRestartSkipsAckedShards) {
  TempDir dir("numaprof_ingest_resume");
  const std::string wal = dir.file("log.wal");
  const std::vector<std::string> shards = test_shards(6);

  // First attempt stalls partway through; the accepted prefix is durable.
  {
    support::FaultPlan plan = support::FaultPlan::parse("stall=4");
    ServerOptions options;
    options.wal_path = wal;
    IngestServer server(options);
    LoopbackTransport loop(server);
    IngestClient client(loop, {.client_id = 1, .faults = &plan});
    EXPECT_FALSE(client.send_shards(shards).complete);
  }

  // Both sides restart: the server recovers its WAL, the hello ACK tells
  // the client where to resume, and only the missing tail is resent.
  ServerOptions options;
  options.wal_path = wal;
  IngestServer server(options);
  EXPECT_GT(server.stats().wal_records_replayed, 0u);
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 1});
  const SendReport report = client.send_shards(shards);
  EXPECT_TRUE(report.complete) << report.give_up_reason;
  EXPECT_EQ(report.shards_delivered, 6u);
  // hello + resumed shards + bye, strictly fewer than a full resend.
  EXPECT_LT(report.frames_sent, shards.size() + 2);
  const auto summaries = server.client_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].contiguous, 6u);
  EXPECT_TRUE(summaries[0].done);
}

TEST(IngestSession, GiveUpUnderRelentlessCorruptionIsGraceful) {
  // corrupt_p = 1: every frame is damaged, so no progress is possible.
  // The client must terminate via its retry budget — never spin — and
  // report why it degraded.
  support::FaultPlan plan = support::FaultPlan::parse("frame-corrupt=1.0");
  IngestServer server;
  LoopbackTransport loop(server);
  ClientOptions client_options;
  client_options.client_id = 1;
  client_options.faults = &plan;
  client_options.retry.max_attempts = 4;
  client_options.retry.deadline = 4096;
  IngestClient client(loop, client_options);
  const SendReport report = client.send_shards(test_shards(3));
  EXPECT_FALSE(report.complete);
  EXPECT_FALSE(report.give_up_reason.empty());
  EXPECT_EQ(report.shards_delivered, 0u);
  EXPECT_GT(server.stats().corrupt_regions, 0u);
}

// ----------------------------------------------- merge-level degradation

core::SessionData record_session() {
  simrt::Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 25;
  core::Profiler profiler(m, cfg);
  parallel_region(m, 2, "w", {},
                  [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                    const simos::VAddr v = t.malloc(4096, "x");
                    for (int k = 0; k < 200; ++k) {
                      t.load(v + ((i + k) % 512) * 8);
                    }
                    co_return;
                  });
  return profiler.snapshot();
}

TEST(IngestMerge, CleanSessionMergesWithoutDegradation) {
  TempDir dir("numaprof_ingest_merge_clean");
  const core::SessionData data = record_session();
  IngestServer server;
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 1});
  const SendReport report = client.send_session(data);
  ASSERT_TRUE(report.complete) << report.give_up_reason;
  const core::MergeResult merged = server.merge(dir.file("spool"));
  EXPECT_EQ(merged.summary.files_merged, merged.summary.files_total);
  EXPECT_TRUE(merged.summary.skipped.empty());
  for (const core::DegradationEvent& event : merged.data.degradations) {
    EXPECT_NE(event.kind, core::DegradationKind::kIngestShardMissing);
    EXPECT_NE(event.kind, core::DegradationKind::kIngestShardCorrupt);
  }
}

TEST(IngestMerge, LostShardsSurfaceAsDegradationWithFaultContext) {
  TempDir dir("numaprof_ingest_merge_lossy");
  const core::SessionData data = record_session();
  const std::vector<std::string> shards = core::ProfileWriter().thread_shards(data);
  ASSERT_GE(shards.size(), 2u);

  // A one-way spool stream with dropped frames: nobody can retransmit, so
  // the losses must surface in the merged analysis. Which frames the seed
  // drops varies, so scan a small seed range until a drop lands on a
  // shard (it must, well within the range, or the fault is broken).
  bool found_missing = false;
  for (std::uint64_t seed = 1; seed <= 32 && !found_missing; ++seed) {
    support::FaultPlan plan = support::FaultPlan::parse(
        "seed=" + std::to_string(seed) + ";frame-drop=0.5");
    const std::string stream = encode_client_stream(shards, 1, &plan);
    ServerOptions options;
    options.faults = &plan;
    IngestServer server(options);
    server.ingest_stream(stream);
    PipelineOptions pipeline;
    pipeline.quorum = 0.0;
    core::MergeResult merged;
    try {
      merged = server.merge(dir.file("spool"), pipeline);
    } catch (const Error&) {
      continue;  // this seed dropped every shard: nothing to merge
    }
    for (const core::DegradationEvent& event : merged.data.degradations) {
      if (event.kind != core::DegradationKind::kIngestShardMissing) continue;
      found_missing = true;
      EXPECT_NE(event.detail.find("lost in transport"), std::string::npos);
      // Satellite: every ingest degradation names the active fault plan
      // and seed so the run can be reproduced from the report alone.
      EXPECT_NE(event.detail.find("[faults: seed=" + std::to_string(seed)),
                std::string::npos)
          << event.detail;
    }
  }
  EXPECT_TRUE(found_missing);
}

TEST(IngestMerge, WalDiskFullDegradesDurabilityNotData) {
  TempDir dir("numaprof_ingest_merge_full");
  const std::string wal = dir.file("log.wal");
  const core::SessionData data = record_session();
  // A budget big enough for the hello record but not for any shard.
  support::FaultPlan plan = support::FaultPlan::parse("disk-full=64");
  ServerOptions options;
  options.wal_path = wal;
  options.faults = &plan;
  IngestServer server(options);
  LoopbackTransport loop(server);
  IngestClient client(loop, {.client_id = 1});
  const SendReport report = client.send_session(data);
  EXPECT_TRUE(report.complete) << report.give_up_reason;

  const ServerStats stats = server.stats();
  EXPECT_GT(stats.wal_rejections, 0u);
  // Every shard still merged; only durability degraded.
  const core::MergeResult merged = server.merge(dir.file("spool"));
  EXPECT_EQ(merged.summary.files_merged, merged.summary.files_total);
  bool found = false;
  for (const core::DegradationEvent& event : merged.data.degradations) {
    if (event.kind != core::DegradationKind::kIngestWalDegraded) continue;
    found = true;
    EXPECT_NE(event.detail.find("not crash-durable"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------- crash-restart byte-identity

struct CaseStudy {
  std::string name;
  std::function<core::SessionData()> run;
};

core::ProfilerConfig case_config() {
  core::ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 200;
  return pc;
}

/// The four paper case studies, sized down for test runtime (the full
/// configurations are locked by golden_equiv_test).
std::vector<CaseStudy> case_studies() {
  return {
      {"minilulesh",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, case_config());
         apps::run_minilulesh(m, {.threads = 8,
                                  .pages_per_thread = 8,
                                  .timesteps = 4,
                                  .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniamg",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, case_config());
         apps::run_miniamg(m, {.threads = 8,
                               .rows_per_thread = 512,
                               .relax_sweeps = 3,
                               .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniblackscholes",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, case_config());
         apps::run_miniblackscholes(m, {.threads = 8,
                                        .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniumt",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, case_config());
         apps::run_miniumt(m, {.threads = 8,
                               .groups = 16,
                               .corners = 8,
                               .angles = 32,
                               .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
  };
}

std::string merged_bytes(IngestServer& server, const std::string& spool) {
  std::ostringstream out;
  core::ProfileWriter().write(server.merge(spool).data, out);
  return std::move(out).str();
}

TEST(IngestRecovery, CrashRestartMergesByteIdenticalForAllCaseStudies) {
  TempDir dir("numaprof_ingest_recovery");
  for (const CaseStudy& cs : case_studies()) {
    SCOPED_TRACE(cs.name);
    const core::SessionData data = cs.run();
    const std::vector<std::string> shards =
        core::ProfileWriter().thread_shards(data);
    const std::string stream = encode_client_stream(shards, 1);

    // Reference: one uninterrupted daemon run.
    const std::string wal_ok = dir.file(cs.name + "_ok.wal");
    std::string reference;
    {
      ServerOptions options;
      options.wal_path = wal_ok;
      IngestServer server(options);
      server.ingest_stream(stream);
      reference = merged_bytes(server, dir.file(cs.name + "_ok.spool"));
    }

    // Crash run: the daemon dies mid-ingest — its WAL holds a prefix of
    // the shards plus a torn half-record (exactly what a kill during an
    // append leaves behind).
    const std::string wal_crash = dir.file(cs.name + "_crash.wal");
    {
      ServerOptions options;
      options.wal_path = wal_crash;
      IngestServer server(options);
      // Feed roughly the first half of the stream, cut mid-byte.
      const IngestServer::ConnectionId conn = server.connect();
      server.feed(conn, std::string_view(stream).substr(0, stream.size() / 2),
                  nullptr);
      // The server object dies here; the WAL stays on disk.
    }
    {
      // Tear the tail the way a mid-append crash would.
      WalRecord torn;
      torn.client = 1;
      torn.sequence = 999;
      torn.payload = "torn";
      std::string half =
          encode_wal_record(torn, replay_wal(wal_crash).records.size() + 1);
      half.resize(half.size() / 2);
      std::ofstream out(wal_crash, std::ios::binary | std::ios::app);
      out << half;
    }

    // Restart: recover the WAL, re-ingest the full stream (retransmits
    // are idempotent), merge. Must be byte-identical to the reference.
    ServerOptions options;
    options.wal_path = wal_crash;
    IngestServer server(options);
    const ServerStats stats = server.stats();
    EXPECT_GT(stats.wal_records_replayed, 0u);
    EXPECT_GT(stats.wal_torn_bytes, 0u);
    server.ingest_stream(stream);
    EXPECT_GT(server.stats().frames_duplicate, 0u)
        << "recovery must absorb re-sent shards idempotently";
    const std::string recovered =
        merged_bytes(server, dir.file(cs.name + "_crash.spool"));
    EXPECT_EQ(recovered, reference)
        << cs.name << ": recovered merge differs from uninterrupted merge";
  }
}

}  // namespace
}  // namespace numaprof::ingest
