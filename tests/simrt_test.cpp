#include <gtest/gtest.h>

#include <vector>

#include "numasim/topology.hpp"
#include "simrt/machine.hpp"

namespace numaprof::simrt {
namespace {

using numasim::test_machine;

Machine small() { return Machine(test_machine(2, 2)); }

TEST(FrameRegistry, InternsAndDedupes) {
  FrameRegistry reg;
  const FrameId a = reg.intern("foo", "a.c", 10);
  const FrameId b = reg.intern("foo", "a.c", 10);
  const FrameId c = reg.intern("foo", "a.c", 11);
  const FrameId d = reg.intern("foo", "a.c", 10, FrameKind::kLoop);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(reg.info(a).name, "foo");
  EXPECT_EQ(reg.describe(a), "foo (a.c:10)");
  EXPECT_EQ(reg.describe(reg.intern("bare")), "bare");
}

TEST(Machine, SpawnRunsKernelToCompletion) {
  Machine m = small();
  int steps = 0;
  m.spawn([&steps](SimThread& t) -> Task {
    for (int i = 0; i < 5; ++i) {
      t.exec(10);
      ++steps;
      co_await t.tick();
    }
  });
  m.run();
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(m.thread(0).instructions(), 50u);
  EXPECT_GE(m.elapsed(), 50u);
}

TEST(Machine, LoadAdvancesClockByLatency) {
  Machine m = small();
  numasim::Cycles latency = 0;
  m.spawn([&](SimThread& t) -> Task {
    const auto before = t.now();
    latency = t.load(simos::kHeapBase);  // cold: DRAM
    EXPECT_EQ(t.now(), before + latency + 1);
    co_return;
  });
  m.run();
  EXPECT_GT(latency, 100u);
  EXPECT_EQ(m.thread(0).memory_accesses(), 1u);
}

TEST(Machine, CoreBindingAndDomains) {
  Machine m = small();
  m.spawn([](SimThread&) -> Task { co_return; }, 3);
  EXPECT_EQ(m.thread(0).core(), 3u);
  EXPECT_EQ(m.thread(0).domain(), 1u);
  EXPECT_THROW(m.spawn([](SimThread&) -> Task { co_return; }, 99),
               std::out_of_range);
}

TEST(Machine, DefaultBindingIsRoundRobin) {
  Machine m = small();
  for (int i = 0; i < 6; ++i) {
    m.spawn([](SimThread&) -> Task { co_return; });
  }
  EXPECT_EQ(m.thread(0).core(), 0u);
  EXPECT_EQ(m.thread(3).core(), 3u);
  EXPECT_EQ(m.thread(4).core(), 0u);  // wraps
}

TEST(Machine, SequentialPhasesAccumulateTime) {
  Machine m = small();
  m.spawn([](SimThread& t) -> Task {
    t.exec(100);
    co_return;
  });
  m.run();
  const auto after_first = m.elapsed();
  m.spawn([](SimThread& t) -> Task {
    t.exec(100);
    co_return;
  });
  m.run();
  EXPECT_GE(m.elapsed(), after_first + 100);
}

TEST(Machine, LeastClockSchedulingInterleavesFairly) {
  Machine m(test_machine(1, 4), MachineConfig{.quantum = 10});
  std::vector<int> order;
  for (int id = 0; id < 2; ++id) {
    m.spawn([&order, id](SimThread& t) -> Task {
      for (int i = 0; i < 3; ++i) {
        t.exec(10);
        order.push_back(id);
        co_await t.tick();
      }
    });
  }
  m.run();
  // With equal quanta, threads alternate rather than running to completion.
  ASSERT_EQ(order.size(), 6u);
  EXPECT_NE(order[0], order[1]);
}

TEST(Machine, CallStackMaintenance) {
  Machine m = small();
  const FrameId f1 = m.frames().intern("outer");
  const FrameId f2 = m.frames().intern("inner");
  std::vector<std::size_t> depths;
  m.spawn(
      [&](SimThread& t) -> Task {
        depths.push_back(t.call_stack().size());
        {
          ScopedFrame a(t, f1);
          depths.push_back(t.call_stack().size());
          {
            ScopedFrame b(t, f2);
            depths.push_back(t.call_stack().size());
            EXPECT_EQ(t.leaf_frame(), f2);
          }
        }
        depths.push_back(t.call_stack().size());
        co_return;
      },
      std::nullopt, {m.frames().intern("main")});
  m.run();
  EXPECT_EQ(depths, (std::vector<std::size_t>{1, 2, 3, 1}));
}

TEST(Machine, MallocFreeEventsReachObservers) {
  struct Recorder : MachineObserver {
    std::vector<std::string> allocs;
    int frees = 0;
    void on_alloc(const AllocEvent& e) override {
      allocs.push_back(e.name);
      EXPECT_FALSE(e.stack.empty());
    }
    void on_free(const FreeEvent&) override { ++frees; }
  } recorder;

  Machine m = small();
  m.add_observer(recorder);
  const FrameId main_f = m.frames().intern("main");
  m.spawn(
      [&](SimThread& t) -> Task {
        const simos::VAddr a = t.malloc(100, "thing");
        t.free(a);
        co_return;
      },
      std::nullopt, {main_f});
  m.run();
  ASSERT_EQ(recorder.allocs.size(), 1u);
  EXPECT_EQ(recorder.allocs[0], "thing");
  EXPECT_EQ(recorder.frees, 1);
}

TEST(Machine, FreeOfBogusPointerThrows) {
  Machine m = small();
  m.spawn([](SimThread& t) -> Task {
    t.free(simos::kHeapBase + 12345);
    co_return;
  });
  EXPECT_THROW(m.run(), std::invalid_argument);
}

TEST(Machine, ProtectedAccessWithoutHandlerFaults) {
  Machine m = small();
  m.set_protect_on_alloc(true);
  m.spawn([](SimThread& t) -> Task {
    const simos::VAddr a = t.malloc(100, "x");
    t.store(a);  // traps, no handler -> simulated crash
    co_return;
  });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, FaultHandlerUnprotectsAndAccessProceeds) {
  Machine m = small();
  m.set_protect_on_alloc(true);
  int faults = 0;
  m.set_fault_handler([&](const FaultEvent& f) {
    ++faults;
    EXPECT_TRUE(f.is_write);
    m.memory().page_table().unprotect(simos::page_of(f.addr));
  });
  m.spawn([](SimThread& t) -> Task {
    const simos::VAddr a = t.malloc(2 * simos::kPageBytes, "x");
    t.store(a);                          // fault 1
    t.store(a + 8);                      // same page: no fault
    t.store(a + simos::kPageBytes);      // fault 2
    co_return;
  });
  m.run();
  EXPECT_EQ(faults, 2);
}

TEST(Machine, HandlerThatDoesNotUnprotectIsFatal) {
  Machine m = small();
  m.set_protect_on_alloc(true);
  m.set_fault_handler([](const FaultEvent&) {});
  m.spawn([](SimThread& t) -> Task {
    const simos::VAddr a = t.malloc(100, "x");
    t.store(a);
    co_return;
  });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, AccessObserverSeesEventFields) {
  struct Recorder : MachineObserver {
    std::vector<AccessEvent> events;
    void on_access(const SimThread&, const AccessEvent& e) override {
      AccessEvent copy = e;
      copy.stack = {};
      events.push_back(copy);
    }
  } recorder;

  Machine m = small();
  m.add_observer(recorder);
  m.spawn(
      [](SimThread& t) -> Task {
        t.load(simos::kHeapBase + 0x100, 4);
        t.store(simos::kHeapBase + 0x100);
        co_return;
      },
      2);  // core 2 -> domain 1
  m.run();
  ASSERT_EQ(recorder.events.size(), 2u);
  EXPECT_FALSE(recorder.events[0].is_write);
  EXPECT_TRUE(recorder.events[1].is_write);
  EXPECT_EQ(recorder.events[0].size, 4u);
  EXPECT_EQ(recorder.events[0].thread_domain, 1u);
  EXPECT_EQ(recorder.events[0].home_domain, 1u);  // first touch: local
  EXPECT_GT(recorder.events[0].latency, recorder.events[1].latency);
}

TEST(Machine, RemoveObserverStopsDelivery) {
  struct Counter : MachineObserver {
    int execs = 0;
    void on_exec(const SimThread&, std::uint64_t) override { ++execs; }
  } counter;
  Machine m = small();
  m.add_observer(counter);
  m.spawn([](SimThread& t) -> Task {
    t.exec(1);
    co_return;
  });
  m.run();
  m.remove_observer(counter);
  m.spawn([](SimThread& t) -> Task {
    t.exec(1);
    co_return;
  });
  m.run();
  EXPECT_EQ(counter.execs, 1);
}

TEST(Machine, ParallelRegionSpawnsAndJoins) {
  Machine m = small();
  std::vector<std::uint32_t> seen;
  const FrameId main_f = m.frames().intern("main");
  parallel_region(m, 4, "region._omp", {main_f},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    t.exec(10);
                    seen.push_back(index);
                    EXPECT_EQ(t.call_stack().size(), 2u);  // main + region
                    co_return;
                  });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(m.thread_count(), 4u);
}

TEST(Machine, DeterministicReplay) {
  const auto run_once = []() {
    Machine m(test_machine(2, 4), MachineConfig{.quantum = 100});
    parallel_region(m, 8, "r", {},
                    [&](SimThread& t, std::uint32_t index) -> Task {
                      for (int i = 0; i < 50; ++i) {
                        t.load(simos::kStaticBase + (index * 50 + i) * 64);
                        t.exec(3);
                        co_await t.tick();
                      }
                    });
    return m.elapsed();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Machine, ExceptionFromKernelPropagates) {
  Machine m = small();
  m.spawn([](SimThread& t) -> Task {
    t.exec(1);
    throw std::logic_error("kernel bug");
    co_return;
  });
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Machine, TotalsAggregateAcrossThreads) {
  Machine m = small();
  for (int i = 0; i < 3; ++i) {
    m.spawn([](SimThread& t) -> Task {
      t.exec(10);
      t.load(simos::kStaticBase);
      co_return;
    });
  }
  m.run();
  EXPECT_EQ(m.total_instructions(), 33u);
  EXPECT_EQ(m.total_accesses(), 3u);
}

}  // namespace
}  // namespace numaprof::simrt
