// Shared cell machinery for the scenario x topology x page-policy
// regression grid (tests/matrix_grid_test.cpp) and the matrix bench
// (bench/matrix_kernels.cpp): one place defines which axes the grid spans
// and how a single cell is recorded, so test and bench cannot diverge.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "apps/scenarios.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"
#include "simos/page_policy.hpp"
#include "support/error.hpp"

namespace numaprof::matrix {

/// The topology axis: two Table-1 machines plus the three new presets
/// (SNC, CXL far memory, NUMAscope ccNUMA). Referenced BY NAME — vector
/// positions carry no meaning anywhere in the grid.
inline const std::vector<std::string>& grid_topologies() {
  static const std::vector<std::string> kNames = {
      "magny-cours", "ivy-bridge", "snc", "cxl-far-memory", "numascope"};
  return kNames;
}

/// The page-policy axis applied to each scenario's hot variable.
struct PolicyAxis {
  std::string_view name;
  simos::PolicySpec spec;
};

inline const std::vector<PolicyAxis>& grid_policies() {
  static const std::vector<PolicyAxis> kPolicies = {
      {"first-touch", simos::PolicySpec::first_touch()},
      {"interleave", simos::PolicySpec::interleave()},
      {"blockwise", simos::PolicySpec::blockwise()},
  };
  return kPolicies;
}

inline const PolicyAxis& policy_by_name(std::string_view name) {
  for (const PolicyAxis& p : grid_policies()) {
    if (p.name == name) return p;
  }
  throw Error(ErrorKind::kUsage, /*file=*/"", /*field=*/"policy", /*line=*/0,
              "unknown grid policy '" + std::string(name) + "'");
}

/// Worker threads used on `topo`: every core up to a cap that keeps the
/// 60-cell grid fast (the 48-core Magny-Cours does not need all 48 cores
/// to exhibit its NUMA behavior in a regression cell).
inline std::uint32_t cell_threads(const numasim::Topology& topo) {
  return std::min<std::uint32_t>(topo.core_count(), 12);
}

struct CellResult {
  core::SessionData data;
  numasim::Cycles cycles = 0;
  std::uint32_t threads = 0;
};

/// Records one grid cell: scenario x topology x policy, broken or fixed.
/// Deterministic: fixed seeds, prime sampling period (shared with
/// tests/matrix_test.cpp — a composite period aliases onto regular loops),
/// no host-work knobs.
inline CellResult run_cell(const apps::Scenario& scenario,
                           std::string_view topology_name,
                           const simos::PolicySpec& policy, bool fixed) {
  const numasim::Topology topo =
      numasim::topology_by_name(topology_name);
  simrt::Machine machine(topo);
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 293;
  cfg.event.min_sample_gap = 0;
  cfg.event.instrumentation_work = 0;
  cfg.event.skid_correction_work = 0;
  cfg.track_first_touch = true;
  core::Profiler profiler(machine, cfg);

  CellResult result;
  result.threads = cell_threads(topo);
  result.cycles = scenario.run(machine, result.threads, fixed, policy);
  result.data = profiler.snapshot();
  return result;
}

/// Program-level mismatch fraction M_r / (M_l + M_r) of a recorded cell.
inline double mismatch_fraction(const core::Analyzer& analyzer) {
  const core::ProgramSummary& p = analyzer.program();
  const std::uint64_t total = p.match + p.mismatch;
  return total == 0 ? 0.0
                    : static_cast<double>(p.mismatch) /
                          static_cast<double>(total);
}

/// Name of the variable carrying the largest share of the program's
/// mismatched accesses (ties broken by sample count, then name for
/// determinism).
inline std::string top_mismatch_variable(const core::Analyzer& analyzer) {
  std::string best;
  std::uint64_t best_mismatch = 0;
  std::uint64_t best_samples = 0;
  for (const core::VariableReport& r : analyzer.variables()) {
    if (r.mismatch > best_mismatch ||
        (r.mismatch == best_mismatch &&
         (r.samples > best_samples ||
          (r.samples == best_samples && r.name < best)))) {
      best = r.name;
      best_mismatch = r.mismatch;
      best_samples = r.samples;
    }
  }
  return best;
}

}  // namespace numaprof::matrix
