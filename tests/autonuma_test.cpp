#include <gtest/gtest.h>

#include "apps/common.hpp"
#include "apps/minilulesh.hpp"
#include "numasim/topology.hpp"
#include "osopt/autonuma.hpp"
#include "simos/numa_api.hpp"

namespace numaprof::osopt {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

TEST(MachineMigration, MigratePageMovesHomeInvalidatesAndCharges) {
  Machine m(numasim::test_machine(2, 2));
  simos::VAddr addr = 0;
  m.spawn(
      [&](SimThread& t) -> Task {
        addr = t.malloc(simos::kPageBytes, "page");
        t.store(addr);  // first touch: domain 0, line cached
        const auto before = t.now();
        const auto cost = t.machine().migrate_page(addr, 1, t.tid());
        EXPECT_GT(cost, 0u);
        EXPECT_EQ(t.now(), before + cost);  // charged synchronously
        // Home moved; the cached line is stale so the next access misses.
        const auto latency = t.load(addr);
        EXPECT_GT(latency, t.machine().topology().l1.hit_latency);
        co_return;
      },
      0);
  m.run();
  EXPECT_EQ(simos::domain_of_addr(m.memory().page_table(), addr).value(), 1u);
}

TEST(AutoNuma, MigratesConsistentlyRemotePagesToTheirUser) {
  Machine m(numasim::test_machine(4, 2));
  AutoNumaConfig cfg;
  cfg.scan_interval = 20'000;
  cfg.fault_threshold = 2;
  AutoNumaBalancer balancer(m, cfg);

  constexpr std::uint64_t kPages = 16;
  constexpr std::uint64_t kElems = kPages * apps::kElemsPerPage;
  simos::VAddr data = 0;
  // Master (domain 0) first-touches everything...
  parallel_region(m, 1, "init", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(kElems * 8, "grid");
                    apps::store_lines(t, data, 0, kElems);
                    co_return;
                  });
  // ...then ONE thread in domain 2 hammers it for a long time.
  m.spawn(
      [&](SimThread& t) -> Task {
        for (int sweep = 0; sweep < 40; ++sweep) {
          apps::load_lines(t, data, 0, kElems);
          co_await t.yield();
        }
      },
      /*core=*/4);  // domain 2
  m.run();

  EXPECT_GT(balancer.scans(), 0u);
  EXPECT_GT(balancer.hint_faults(), 0u);
  EXPECT_GT(balancer.migrations(), kPages / 2);
  // Most pages now live with their user.
  auto& table = m.memory().page_table();
  std::uint64_t in_domain2 = 0;
  for (std::uint64_t p = 0; p < kPages; ++p) {
    if (table.query_home(simos::page_of(data) + p).value() == 2u) {
      ++in_domain2;
    }
  }
  EXPECT_GT(in_domain2, kPages / 2);
}

TEST(AutoNuma, LeavesLocalOnlyPagesAlone) {
  Machine m(numasim::test_machine(4, 2));
  AutoNumaConfig cfg;
  cfg.scan_interval = 10'000;
  AutoNumaBalancer balancer(m, cfg);
  simos::VAddr data = 0;
  m.spawn(
      [&](SimThread& t) -> Task {
        data = t.malloc(8 * simos::kPageBytes, "local");
        for (int sweep = 0; sweep < 30; ++sweep) {
          apps::store_lines(t, data, 0, 8 * apps::kElemsPerPage);
          co_await t.yield();
        }
      },
      0);
  m.run();
  EXPECT_GT(balancer.hint_faults(), 0u);  // hints fire...
  EXPECT_EQ(balancer.migrations(), 0u);   // ...but nothing moves
}

TEST(AutoNuma, DestructorUnprotectsSweptPages) {
  Machine m(numasim::test_machine(2, 2));
  simos::VAddr data = 0;
  {
    AutoNumaConfig cfg;
    cfg.scan_interval = 1'000;
    AutoNumaBalancer balancer(m, cfg);
    m.spawn(
        [&](SimThread& t) -> Task {
          data = t.malloc(4 * simos::kPageBytes, "x");
          apps::store_lines(t, data, 0, 4 * apps::kElemsPerPage);
          t.exec(50'000);  // trigger a scan, leaving pages protected
          co_return;
        },
        0);
    m.run();
  }  // balancer destroyed: must clean up
  EXPECT_FALSE(m.memory().page_table().any_protected());
  // Accesses proceed without a handler.
  m.spawn(
      [&](SimThread& t) -> Task {
        t.load(data);
        co_return;
      },
      0);
  EXPECT_NO_THROW(m.run());
}

TEST(AutoNuma, HelpsButLessThanTheSourceFix) {
  // The §9 claim, measured on LULESH: OS migration recovers part of the
  // loss; the tool-guided source fix (block-wise first touch) beats it.
  const apps::LuleshConfig cfg{.threads = 16,
                               .pages_per_thread = 3,
                               .timesteps = 10,
                               .variant = apps::Variant::kBaseline};
  const auto compute = [&](bool autonuma, apps::Variant variant) {
    simrt::Machine m(numasim::amd_magny_cours());
    std::optional<AutoNumaBalancer> balancer;
    if (autonuma) balancer.emplace(m);
    apps::LuleshConfig c = cfg;
    c.variant = variant;
    return run_minilulesh(m, c).compute_cycles;
  };
  const auto baseline = compute(false, apps::Variant::kBaseline);
  const auto migrated = compute(true, apps::Variant::kBaseline);
  const auto fixed = compute(false, apps::Variant::kBlockwise);
  EXPECT_LT(migrated, baseline);  // the OS route helps...
  EXPECT_LT(fixed, migrated);     // ...the source route wins (§9)
}

}  // namespace
}  // namespace numaprof::osopt
