#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/common.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

namespace fs = std::filesystem;
using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

SessionData make_session(bool with_trace) {
  Machine m(numasim::test_machine(4, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 15;
  cfg.record_trace = with_trace;
  Profiler profiler(m, cfg);
  simos::VAddr data = 0;
  const std::uint64_t elems = 8 * 6 * apps::kElemsPerPage;
  parallel_region(m, 1, "init", {m.frames().intern("main")},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(elems * 8, "grid");
                    apps::store_lines(t, data, 0, elems);
                    co_return;
                  });
  parallel_region(m, 8, "work._omp", {m.frames().intern("main")},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const apps::Slice s = apps::block_slice(elems, index, 8);
                    apps::load_lines(t, data, s.begin, s.end);
                    co_return;
                  });
  return profiler.snapshot();
}

std::string slurp(const fs::path& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Report, WritesFullDirectoryTree) {
  const SessionData data = make_session(true);
  const Analyzer analyzer(data);
  const fs::path dir =
      fs::path(::testing::TempDir()) / "numaprof_report_test";
  fs::remove_all(dir);

  const std::string main_file = write_report(analyzer, dir.string());
  EXPECT_TRUE(fs::exists(main_file));
  EXPECT_TRUE(fs::exists(dir / "data_centric.csv"));
  EXPECT_TRUE(fs::exists(dir / "code_centric.csv"));
  EXPECT_TRUE(fs::exists(dir / "domains.csv"));
  EXPECT_TRUE(fs::exists(dir / "timeline.txt"));  // trace recorded
  EXPECT_TRUE(fs::exists(dir / "var_grid" / "ranges.csv"));
  EXPECT_TRUE(fs::exists(dir / "var_grid" / "ranges.txt"));
  EXPECT_TRUE(fs::exists(dir / "var_grid" / "first_touch.txt"));
  EXPECT_TRUE(fs::exists(dir / "var_grid" / "data_sources.txt"));

  const std::string report = slurp(main_file);
  EXPECT_NE(report.find("lpi_NUMA"), std::string::npos);
  EXPECT_NE(report.find("recommendations"), std::string::npos);
  EXPECT_NE(report.find("grid"), std::string::npos);
  EXPECT_NE(report.find("first touch"), std::string::npos);

  const std::string csv = slurp(dir / "data_centric.csv");
  EXPECT_NE(csv.find("variable,kind"), std::string::npos);
  EXPECT_NE(csv.find("grid"), std::string::npos);
}

TEST(Report, NoTimelineWithoutTrace) {
  const SessionData data = make_session(false);
  const Analyzer analyzer(data);
  const fs::path dir =
      fs::path(::testing::TempDir()) / "numaprof_report_notrace";
  fs::remove_all(dir);
  write_report(analyzer, dir.string());
  EXPECT_FALSE(fs::exists(dir / "timeline.txt"));
  EXPECT_TRUE(fs::exists(dir / "report.txt"));
}

TEST(Report, OverwritesExistingReport) {
  const SessionData data = make_session(false);
  const Analyzer analyzer(data);
  const fs::path dir =
      fs::path(::testing::TempDir()) / "numaprof_report_twice";
  fs::remove_all(dir);
  write_report(analyzer, dir.string());
  EXPECT_NO_THROW(write_report(analyzer, dir.string()));
}

TEST(Report, UnwritableDirectoryThrows) {
  const SessionData data = make_session(false);
  const Analyzer analyzer(data);
  EXPECT_THROW(write_report(analyzer, "/proc/definitely/not/writable"),
               std::exception);
}

TEST(Report, VariableNamesSanitizedForFilesystem) {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 5;
  Profiler profiler(m, cfg);
  parallel_region(m, 1, "init", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    const simos::VAddr v =
                        t.malloc(8 * simos::kPageBytes, "weird/name with *");
                    apps::store_lines(t, v, 0, 8 * apps::kElemsPerPage);
                    apps::load_lines(t, v, 0, 8 * apps::kElemsPerPage);
                    co_return;
                  });
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const fs::path dir =
      fs::path(::testing::TempDir()) / "numaprof_report_sanitize";
  fs::remove_all(dir);
  EXPECT_NO_THROW(write_report(analyzer, dir.string()));
  EXPECT_TRUE(fs::exists(dir / "var_weird_name_with__" / "ranges.csv"));
}

}  // namespace
}  // namespace numaprof::core
