// Tests for the interprocedural dataflow engine (src/lint/ir +
// src/lint/dataflow): cross-TU first-touch provenance (L5), schedule
// mismatch (L6), alias-hidden first touch (L7), read-mostly replication
// (L8), plus the production driver contracts — --jobs determinism, the
// incremental cache, SARIF export (golden-locked for the four case-study
// workloads), and the baseline gate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/export/schema.hpp"
#include "lint/baseline.hpp"
#include "lint/numalint.hpp"
#include "lint/sarif.hpp"

namespace numaprof::lint {
namespace {

namespace fs = std::filesystem;

using core::Action;
using core::LintKind;
using core::PatternKind;
using core::StaticFinding;

// --- fixtures ------------------------------------------------------------

// The canonical cross-TU shape from ISSUE acceptance: allocation in
// a.cpp, serial first touch in b.cpp, parallel consumption in c.cpp —
// only visible to an analysis that follows the pointer across files.
constexpr const char* kXtuA = R"lint(double* make_grid(long n);
void init_grid(double* g, long n);
void relax(double* g, long n);

double* grid_global = nullptr;

int main() {
  long n = 1 << 20;
  grid_global = make_grid(n);
  init_grid(grid_global, n);
  relax(grid_global, n);
}
)lint";

constexpr const char* kXtuB = R"lint(#include <cstdlib>

double* make_grid(long n) {
  double* g = (double*)malloc(n * sizeof(double));
  return g;
}

void init_grid(double* g, long n) {
  for (long i = 0; i < n; ++i) g[i] = 0.0;
}
)lint";

constexpr const char* kXtuC = R"lint(void relax(double* g, long n) {
  #pragma omp parallel for schedule(static)
  for (long i = 0; i < n; ++i) {
    g[i] = g[i] * 0.5 + 1.0;
  }
}
)lint";

// L6: parallel init with schedule(static,4), parallel consume with
// schedule(dynamic) — different first-touch and consuming threads.
constexpr const char* kL6Source = R"lint(static double field[1 << 18];

void init_field(long n) {
  #pragma omp parallel for schedule(static, 4)
  for (long i = 0; i < n; ++i) field[i] = 0.0;
}

void consume_field(long n) {
  #pragma omp parallel for schedule(dynamic)
  for (long i = 0; i < n; ++i) field[i] += 1.0;
}
)lint";

// L7: the serial first touch happens through a pointer alias (`p`), so
// the allocation site looks clean to a per-declaration scan.
constexpr const char* kL7Source = R"lint(#include <cstdlib>
static double* big = nullptr;

void fill() {
  double* p = big;
  for (long i = 0; i < 100000; ++i) p[i] = 0.0;
}

void setup() {
  big = (double*)malloc(100000 * sizeof(double));
  fill();
}

void consume(long n) {
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) big[i] *= 2.0;
}
)lint";

// L8: one serial writer, parallel readers whose index is data-dependent
// (every thread reaches the whole extent) — replication candidate.
constexpr const char* kL8Source = R"lint(static double lut[4096];

void build_lut() {
  for (long i = 0; i < 4096; ++i) lut[i] = i * 0.5;
}

double apply(const double* in, double* out, long n) {
  double acc = 0.0;
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) {
    out[i] = lut[(int)(in[i] * 4096) & 4095];
  }
  return acc;
}
)lint";

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name, const std::string& body) const {
    const std::string full = (fs::path(path) / name).string();
    std::ofstream out(full, std::ios::binary);
    out << body;
    return full;
  }
  std::string path;
};

const StaticFinding* find(const std::vector<StaticFinding>& findings,
                          std::string_view variable, LintKind kind) {
  for (const StaticFinding& f : findings) {
    if (f.variable == variable && f.kind == kind) return &f;
  }
  return nullptr;
}

// --- cross-TU propagation (L5) -------------------------------------------

TEST(LintDataflow, CrossTuSerialFirstTouchCarriesProvenance) {
  TempDir dir("numaprof_lint_xtu");
  const std::vector<std::string> paths = {dir.file("a.cpp", kXtuA),
                                          dir.file("b.cpp", kXtuB),
                                          dir.file("c.cpp", kXtuC)};
  const LintResult result = lint_paths(paths);
  const StaticFinding* f =
      find(result.findings, "grid_global", LintKind::kCrossSerialInit);
  ASSERT_NE(f, nullptr) << render_findings(result.findings);
  // The finding anchors at the actual first-touch site, not the alloc.
  EXPECT_EQ(f->file, "b.cpp");
  EXPECT_EQ(f->line, 9u);
  EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch);
  EXPECT_EQ(f->expected, PatternKind::kBlocked);
  // Full provenance chain in the message: alloc site, serial touch site
  // with the call path that reached it, and the parallel consumer.
  EXPECT_NE(f->message.find("allocated at a.cpp:5"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("first touched serially at b.cpp:9"),
            std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("via main -> init_grid"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("consumed in parallel at c.cpp:4"),
            std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("schedule(static)"), std::string::npos)
      << f->message;
}

TEST(LintDataflow, MergedTranslationUnitFindsTheSameDefect) {
  // The same program concatenated into one file must produce an
  // equivalent L5 on the same variable with the same fix vocabulary.
  const std::string merged =
      std::string(kXtuB) + "\n" + kXtuC + "\n" + kXtuA;
  const LintResult result = lint_source(merged, "merged.cpp");
  const StaticFinding* f =
      find(result.findings, "grid_global", LintKind::kCrossSerialInit);
  ASSERT_NE(f, nullptr) << render_findings(result.findings);
  EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch);
  EXPECT_EQ(f->expected, PatternKind::kBlocked);
  EXPECT_NE(f->message.find("via main -> init_grid"), std::string::npos)
      << f->message;
}

TEST(LintDataflow, JobsCountNeverChangesOutput) {
  TempDir dir("numaprof_lint_jobs");
  const std::vector<std::string> paths = {
      dir.file("a.cpp", kXtuA), dir.file("b.cpp", kXtuB),
      dir.file("c.cpp", kXtuC), dir.file("l6.cpp", kL6Source),
      dir.file("l7.cpp", kL7Source), dir.file("l8.cpp", kL8Source)};
  std::string first;
  for (unsigned jobs : {1u, 2u, 8u}) {
    PipelineOptions options;
    options.jobs = jobs;
    const LintResult result = lint_paths(paths, options);
    const std::string rendered = render_findings(result.findings);
    if (first.empty()) {
      first = rendered;
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(rendered, first) << "jobs=" << jobs;
    }
  }
}

// --- L6/L7/L8 ------------------------------------------------------------

TEST(LintDataflow, ScheduleMismatchBetweenInitAndConsume) {
  const LintResult result = lint_source(kL6Source, "l6.cpp");
  const StaticFinding* f =
      find(result.findings, "field", LintKind::kScheduleMismatch);
  ASSERT_NE(f, nullptr) << render_findings(result.findings);
  EXPECT_EQ(f->line, 5u);  // anchored at the initializing loop
  EXPECT_NE(f->message.find("schedule(static-chunk,4)"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("schedule(dynamic)"), std::string::npos)
      << f->message;
  // A dynamic consumer has no stable partitioning to match: interleave.
  EXPECT_EQ(f->suggested, Action::kInterleave);
  EXPECT_EQ(f->expected, PatternKind::kIrregular);
}

TEST(LintDataflow, AliasObscuredFirstTouch) {
  const LintResult result = lint_source(kL7Source, "l7.cpp");
  const StaticFinding* f =
      find(result.findings, "big", LintKind::kAliasHiddenInit);
  ASSERT_NE(f, nullptr) << render_findings(result.findings);
  EXPECT_EQ(f->line, 6u);  // the aliased store, not the handoff
  EXPECT_NE(f->message.find("pointer alias"), std::string::npos)
      << f->message;
  EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch);
  // The plain L5 must NOT double-report the same defect.
  EXPECT_EQ(find(result.findings, "big", LintKind::kCrossSerialInit),
            nullptr);
}

TEST(LintDataflow, ReadMostlyReplicationCandidate) {
  const LintResult result = lint_source(kL8Source, "l8.cpp");
  const StaticFinding* f =
      find(result.findings, "lut", LintKind::kReadMostly);
  ASSERT_NE(f, nullptr) << render_findings(result.findings);
  EXPECT_NE(f->message.find("replication candidate"), std::string::npos)
      << f->message;
  EXPECT_EQ(f->expected, PatternKind::kFullRange);
  EXPECT_EQ(f->suggested, Action::kInterleave);
  // Read-mostly is the weaker claim; it must not also escalate to L5.
  EXPECT_EQ(find(result.findings, "lut", LintKind::kCrossSerialInit),
            nullptr);
}

// --- incremental cache ---------------------------------------------------

TEST(LintDataflow, CacheColdAndWarmRunsAreByteIdentical) {
  TempDir src("numaprof_lint_cache_src");
  TempDir cache("numaprof_lint_cache_dir");
  const std::vector<std::string> paths = {src.file("a.cpp", kXtuA),
                                          src.file("b.cpp", kXtuB),
                                          src.file("c.cpp", kXtuC)};
  PipelineOptions options;
  options.jobs = 4;
  options.lint_cache_dir = cache.path;
  const LintResult cold = lint_paths(paths, options);
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(cache.path)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 3u);  // one artifact per file
  const LintResult warm = lint_paths(paths, options);
  EXPECT_EQ(render_findings(warm.findings),
            render_findings(cold.findings));
  EXPECT_EQ(warm.stats.tokens, cold.stats.tokens);

  // No cache at all must agree too.
  PipelineOptions plain;
  plain.jobs = 4;
  const LintResult uncached = lint_paths(paths, plain);
  EXPECT_EQ(render_findings(uncached.findings),
            render_findings(cold.findings));
}

// --- SARIF export --------------------------------------------------------

void check_sarif_golden(const std::string& app) {
  const LintResult result =
      lint_paths({NUMAPROF_SOURCE_DIR "/src/apps/" + app + ".cpp"});
  const std::string sarif = render_sarif(result.findings);
  // The bundled schema checker must accept our own emission.
  const std::vector<std::string> problems = core::check_sarif_json(sarif);
  EXPECT_TRUE(problems.empty())
      << app << ": " << (problems.empty() ? "" : problems.front());
  const std::string golden_path = NUMAPROF_SOURCE_DIR
      "/tests/golden/export/lint_" + app + ".sarif";
  if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << sarif;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(sarif, buffer.str())
      << app << " SARIF drifted; if intentional, rerun with "
      << "NUMAPROF_REGEN_GOLDEN=1";
}

TEST(LintSarif, GoldenLulesh) { check_sarif_golden("minilulesh"); }
TEST(LintSarif, GoldenAmg) { check_sarif_golden("miniamg"); }
TEST(LintSarif, GoldenUmt) { check_sarif_golden("miniumt"); }
TEST(LintSarif, GoldenBlackscholes) { check_sarif_golden("miniblackscholes"); }

TEST(LintSarif, DocumentShapeAndRuleTable) {
  const LintResult result = lint_source(kL7Source, "l7.cpp");
  const std::string sarif = render_sarif(result.findings);
  EXPECT_TRUE(core::check_sarif_json(sarif).empty());
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  // The full rule table is present even for rules that did not fire.
  for (const char* rule :
       {"\"id\":\"L1\"", "\"id\":\"L2\"", "\"id\":\"L3\"", "\"id\":\"L4\"",
        "\"id\":\"L5\"", "\"id\":\"L6\"", "\"id\":\"L7\"", "\"id\":\"L8\""}) {
    EXPECT_NE(sarif.find(rule), std::string::npos) << rule;
  }
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);  // L7
}

TEST(LintSarif, SeverityTiers) {
  EXPECT_EQ(severity_of(LintKind::kSerialFirstTouch), Severity::kError);
  EXPECT_EQ(severity_of(LintKind::kCrossSerialInit), Severity::kError);
  EXPECT_EQ(severity_of(LintKind::kAliasHiddenInit), Severity::kError);
  EXPECT_EQ(severity_of(LintKind::kFalseSharing), Severity::kWarning);
  EXPECT_EQ(severity_of(LintKind::kStackEscape), Severity::kWarning);
  EXPECT_EQ(severity_of(LintKind::kInterleaveMisuse), Severity::kWarning);
  EXPECT_EQ(severity_of(LintKind::kScheduleMismatch), Severity::kWarning);
  EXPECT_EQ(severity_of(LintKind::kReadMostly), Severity::kNote);
}

// --- baseline ------------------------------------------------------------

TEST(LintBaseline, RoundTripSuppressesExactlyTheAcceptedSet) {
  const LintResult result = lint_source(kL6Source, "l6.cpp");
  ASSERT_FALSE(result.findings.empty());
  const Baseline baseline = make_baseline(result.findings);
  const std::string rendered = render_baseline(baseline);
  std::string error;
  const auto reparsed = parse_baseline(rendered, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->counts, baseline.counts);
  EXPECT_EQ(render_baseline(*reparsed), rendered);

  std::size_t suppressed = 0;
  const auto remaining =
      apply_baseline(*reparsed, result.findings, &suppressed);
  EXPECT_TRUE(remaining.empty()) << render_findings(remaining);
  EXPECT_EQ(suppressed, result.findings.size());
}

TEST(LintBaseline, NewFindingSurvivesTheBaseline) {
  const Baseline baseline =
      make_baseline(lint_source(kL6Source, "l6.cpp").findings);
  // Inject a fresh antipattern: the same file grows a second defect on a
  // new variable — the baseline must let exactly that one through.
  const std::string grown =
      std::string(kL6Source) +
      "static double fresh[1 << 10];\n"
      "void init_fresh(long n) { for (long i = 0; i < n; ++i) fresh[i] = "
      "1.0; }\n"
      "void use_fresh(long n) {\n"
      "  #pragma omp parallel for\n"
      "  for (long i = 0; i < n; ++i) fresh[i] += 1.0;\n"
      "}\n";
  std::size_t suppressed = 0;
  const auto remaining = apply_baseline(
      baseline, lint_source(grown, "l6.cpp").findings, &suppressed);
  ASSERT_FALSE(remaining.empty());
  EXPECT_GT(suppressed, 0u);
  for (const StaticFinding& f : remaining) {
    EXPECT_EQ(f.variable, "fresh") << render_findings({f});
  }
}

TEST(LintBaseline, MalformedInputsAreRejectedWithAMessage) {
  std::string error;
  EXPECT_FALSE(parse_baseline("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_baseline("{\"version\":2,\"suppressions\":[]}", &error)
                   .has_value());
  EXPECT_FALSE(
      parse_baseline("{\"version\":1,\"suppressions\":[{\"file\":1}]}",
                     &error)
          .has_value());
  const auto empty =
      parse_baseline("{\"version\":1,\"suppressions\":[]}", &error);
  ASSERT_TRUE(empty.has_value()) << error;
  EXPECT_TRUE(empty->counts.empty());
}

}  // namespace
}  // namespace numaprof::lint
