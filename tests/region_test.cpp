// Region-scoped analysis (§4.2: lpi "can be computed for the whole program
// or any code region") and multi-profiler coexistence.
#include <gtest/gtest.h>

#include "apps/common.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

/// Workload with a NUMA-sick region and a NUMA-healthy region.
SessionData two_region_session() {
  Machine m(numasim::test_machine(4, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 20;
  Profiler profiler(m, cfg);

  const std::uint64_t elems = 8 * 6 * apps::kElemsPerPage;
  simos::VAddr shared = 0;
  parallel_region(m, 1, "init", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    shared = t.malloc(elems * 8, "shared");
                    apps::store_lines(t, shared, 0, elems);
                    co_return;
                  });
  // Sick region: every worker reads the master-homed array.
  parallel_region(m, 8, "sick._omp", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const apps::Slice s = apps::block_slice(elems, index, 8);
                    for (int sweep = 0; sweep < 2; ++sweep) {
                      apps::load_lines(t, shared, s.begin, s.end);
                      co_await t.yield();
                    }
                    co_return;
                  });
  // Healthy region: workers touch their own freshly-allocated blocks.
  parallel_region(m, 8, "healthy._omp", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    const simos::VAddr local =
                        t.malloc(6 * simos::kPageBytes, "local");
                    for (int sweep = 0; sweep < 3; ++sweep) {
                      apps::store_lines(t, local, 0,
                                        6 * apps::kElemsPerPage);
                      apps::load_lines(t, local, 0, 6 * apps::kElemsPerPage);
                      co_await t.yield();
                    }
                    co_return;
                  });
  return profiler.snapshot();
}

TEST(RegionLpi, SickRegionFarAboveHealthyRegion) {
  const SessionData data = two_region_session();
  const Analyzer analyzer(data);
  const auto sick = analyzer.find_region("sick._omp");
  const auto healthy = analyzer.find_region("healthy._omp");
  ASSERT_TRUE(sick.has_value());
  ASSERT_TRUE(healthy.has_value());
  const auto sick_lpi = analyzer.region_lpi(*sick);
  const auto healthy_lpi = analyzer.region_lpi(*healthy);
  ASSERT_TRUE(sick_lpi.has_value());
  ASSERT_TRUE(healthy_lpi.has_value());
  EXPECT_GT(*sick_lpi, kLpiThreshold);
  EXPECT_GT(*sick_lpi, 10 * (*healthy_lpi + 1e-9));
  // Program lpi sits between the two regions' values.
  ASSERT_TRUE(analyzer.program().lpi.has_value());
  EXPECT_LT(*healthy_lpi, *analyzer.program().lpi);
}

TEST(RegionLpi, UnknownRegionAndUnsampledNode) {
  const SessionData data = two_region_session();
  const Analyzer analyzer(data);
  EXPECT_FALSE(analyzer.find_region("no_such_region").has_value());
  // The root of an unsampled subtree: first-touch dummy has no kSamples.
  const auto ft = data.cct.find_child(kRootNode, NodeKind::kFirstTouch, 0);
  ASSERT_TRUE(ft.has_value());
  EXPECT_FALSE(analyzer.region_lpi(*ft).has_value());
}

TEST(RegionLpi, NoLatencyMechanismYieldsNothing) {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kMrk);
  cfg.event.min_sample_gap = 0;
  Profiler profiler(m, cfg);
  parallel_region(m, 2, "r._omp", {},
                  [&](SimThread& t, std::uint32_t i) -> Task {
                    const simos::VAddr v = t.malloc(4 * simos::kPageBytes, "v");
                    apps::store_lines(t, v, 0, 4 * apps::kElemsPerPage);
                    (void)i;
                    co_return;
                  });
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const auto region = analyzer.find_region("r._omp");
  ASSERT_TRUE(region.has_value());
  EXPECT_FALSE(analyzer.region_lpi(*region).has_value());
}

TEST(MultiProfiler, TwoMechanismsObserveOneRun) {
  // HPCToolkit can monitor with several event sets at once; here an
  // IBS-like profiler (with first-touch tracking) and an MRK-like one
  // (metrics only) attach to the same machine and both collect.
  Machine m(numasim::test_machine(4, 2));
  ProfilerConfig ibs_cfg;
  ibs_cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  ibs_cfg.event.period = 25;
  Profiler ibs(m, ibs_cfg);

  ProfilerConfig mrk_cfg;
  mrk_cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kMrk);
  mrk_cfg.event.min_sample_gap = 0;
  mrk_cfg.track_first_touch = false;  // only one fault handler may own §6
  Profiler mrk(m, mrk_cfg);

  const std::uint64_t elems = 8 * 4 * apps::kElemsPerPage;
  simos::VAddr data_addr = 0;
  parallel_region(m, 1, "init", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data_addr = t.malloc(elems * 8, "grid");
                    apps::store_lines(t, data_addr, 0, elems);
                    co_return;
                  });
  parallel_region(m, 8, "work._omp", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const apps::Slice s = apps::block_slice(elems, index, 8);
                    apps::load_lines(t, data_addr, s.begin, s.end);
                    co_return;
                  });

  const SessionData ibs_data = ibs.snapshot();
  const SessionData mrk_data = mrk.snapshot();
  const Analyzer ibs_an(ibs_data);
  const Analyzer mrk_an(mrk_data);
  EXPECT_GT(ibs_an.program().memory_samples, 50u);
  EXPECT_GT(mrk_an.program().memory_samples, 50u);
  EXPECT_TRUE(ibs_an.program().lpi.has_value());
  EXPECT_FALSE(mrk_an.program().lpi.has_value());
  // First-touch records belong to the tracking profiler only.
  EXPECT_GT(ibs_data.first_touches.size(), 0u);
  EXPECT_TRUE(mrk_data.first_touches.empty());
  // Both agree on the move_pages-based classification direction.
  EXPECT_GT(ibs_an.program().mismatch, ibs_an.program().match / 2);
  EXPECT_GT(mrk_an.program().mismatch, 0u);
}

TEST(Eq3Verdict, PebsLlSeparatesTheWorkloadsLikeThePaper) {
  // Eq. 3 scales by the absolute qualifying-event counter and the
  // conventional instruction counter, so its lpi magnitudes are directly
  // comparable to the paper's; the verdicts must match §8: LULESH far
  // above the 0.1 threshold, Blackscholes below it.
  const auto lpi_of = [](auto&& workload) {
    Machine m(numasim::amd_magny_cours());
    ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kPebsLl);
    cfg.event.period = 50;
    Profiler profiler(m, cfg);
    workload(m);
    const SessionData data = profiler.snapshot();
    return Analyzer(data).program().lpi;
  };
  const auto lulesh_lpi = lpi_of([](Machine& m) {
    apps::run_minilulesh(m, {.threads = 24,
                             .pages_per_thread = 3,
                             .timesteps = 8,
                             .variant = apps::Variant::kBaseline});
  });
  const auto bs_lpi = lpi_of([](Machine& m) {
    apps::BlackscholesConfig cfg;
    cfg.threads = 24;
    apps::run_miniblackscholes(m, cfg);
  });
  ASSERT_TRUE(lulesh_lpi.has_value());
  ASSERT_TRUE(bs_lpi.has_value());
  EXPECT_GT(*lulesh_lpi, kLpiThreshold);
  EXPECT_LT(*bs_lpi, kLpiThreshold);
}

}  // namespace
}  // namespace numaprof::core
