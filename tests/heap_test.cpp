#include <gtest/gtest.h>

#include <new>

#include "simos/heap.hpp"

namespace numaprof::simos {
namespace {

constexpr VAddr kBase = 0x1000000;
constexpr std::uint64_t kCap = 64 * kPageBytes;

TEST(Heap, AllocationsArePageAligned) {
  Heap heap(kBase, kCap);
  const HeapBlock a = heap.allocate(100);
  const HeapBlock b = heap.allocate(5000);
  EXPECT_EQ(a.start % kPageBytes, 0u);
  EXPECT_EQ(b.start % kPageBytes, 0u);
  EXPECT_EQ(a.page_count, 1u);
  EXPECT_EQ(b.page_count, 2u);
}

TEST(Heap, BlockIdsAreUniqueAndStable) {
  Heap heap(kBase, kCap);
  const HeapBlock a = heap.allocate(10);
  heap.free(a.start);
  const HeapBlock b = heap.allocate(10);
  EXPECT_NE(a.id, b.id);     // never reused
  EXPECT_EQ(a.start, b.start);  // but the space is
}

TEST(Heap, ZeroByteAllocationGetsAPage) {
  Heap heap(kBase, kCap);
  const HeapBlock a = heap.allocate(0);
  EXPECT_EQ(a.page_count, 1u);
}

TEST(Heap, FindLocatesContainingBlock) {
  Heap heap(kBase, kCap);
  const HeapBlock a = heap.allocate(3 * kPageBytes);
  EXPECT_EQ(heap.find(a.start)->id, a.id);
  EXPECT_EQ(heap.find(a.start + 3 * kPageBytes - 1)->id, a.id);
  EXPECT_FALSE(heap.find(a.start + 3 * kPageBytes).has_value());
  EXPECT_FALSE(heap.find(kBase - 1).has_value());
}

TEST(Heap, DoubleFreeIsDetected) {
  Heap heap(kBase, kCap);
  const HeapBlock a = heap.allocate(10);
  EXPECT_TRUE(heap.free(a.start).has_value());
  EXPECT_FALSE(heap.free(a.start).has_value());
  EXPECT_FALSE(heap.free(a.start + 8).has_value());  // interior pointer
}

TEST(Heap, ExhaustionThrowsBadAlloc) {
  Heap heap(kBase, 4 * kPageBytes);
  heap.allocate(3 * kPageBytes);
  EXPECT_THROW(heap.allocate(2 * kPageBytes), std::bad_alloc);
  EXPECT_NO_THROW(heap.allocate(kPageBytes));
}

TEST(Heap, FreeCoalescesNeighbours) {
  Heap heap(kBase, 8 * kPageBytes);
  const HeapBlock a = heap.allocate(2 * kPageBytes);
  const HeapBlock b = heap.allocate(2 * kPageBytes);
  const HeapBlock c = heap.allocate(2 * kPageBytes);
  const HeapBlock d = heap.allocate(2 * kPageBytes);
  heap.free(a.start);
  heap.free(c.start);
  heap.free(b.start);  // merges a+b+c into one 6-page hole
  heap.free(d.start);  // and with d: the whole heap
  EXPECT_NO_THROW(heap.allocate(8 * kPageBytes));
}

TEST(Heap, FirstFitReusesEarliestHole) {
  Heap heap(kBase, 8 * kPageBytes);
  const HeapBlock a = heap.allocate(2 * kPageBytes);
  heap.allocate(2 * kPageBytes);  // keeps the middle occupied
  heap.free(a.start);
  const HeapBlock c = heap.allocate(kPageBytes);
  EXPECT_EQ(c.start, a.start);
}

TEST(Heap, BytesInUseTracksLifecycle) {
  Heap heap(kBase, kCap);
  EXPECT_EQ(heap.bytes_in_use(), 0u);
  const HeapBlock a = heap.allocate(kPageBytes + 1);
  EXPECT_EQ(heap.bytes_in_use(), 2 * kPageBytes);
  heap.free(a.start);
  EXPECT_EQ(heap.bytes_in_use(), 0u);
  EXPECT_EQ(heap.live_blocks(), 0u);
}

TEST(Heap, MisalignedConstructionThrows) {
  EXPECT_THROW(Heap(kBase + 1, kCap), std::invalid_argument);
  EXPECT_THROW(Heap(kBase, kCap + 1), std::invalid_argument);
}

TEST(PagesCovering, Math) {
  EXPECT_EQ(pages_covering(0, 0), 0u);
  EXPECT_EQ(pages_covering(0, 1), 1u);
  EXPECT_EQ(pages_covering(0, kPageBytes), 1u);
  EXPECT_EQ(pages_covering(0, kPageBytes + 1), 2u);
  EXPECT_EQ(pages_covering(kPageBytes - 1, 2), 2u);  // straddles
}

}  // namespace
}  // namespace numaprof::simos
