// FaultPlan: spec parsing, determinism, and the sample/stream fault hooks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/faultinject.hpp"

namespace numaprof::support {
namespace {

TEST(FaultSpec, EmptySpecIsDisabled) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.fails_init("ibs"));
}

TEST(FaultSpec, ParsesFullGrammar) {
  FaultPlan plan = FaultPlan::parse(
      "seed=42;init-fail=ibs,pebs-ll;drop=0.5;corrupt=0.25;"
      "spike=0.1:900;truncate=128;bitflip=3");
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_TRUE(plan.fails_init("ibs"));
  EXPECT_TRUE(plan.fails_init("pebs-ll"));
  EXPECT_FALSE(plan.fails_init("mrk"));
  EXPECT_FALSE(plan.fails_init("soft-ibs"));
  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultSpec, WildcardFailsEveryMechanism) {
  FaultPlan plan = FaultPlan::parse("init-fail=*");
  for (const char* name :
       {"ibs", "mrk", "pebs", "dear", "pebs-ll", "soft-ibs"}) {
    EXPECT_TRUE(plan.fails_init(name)) << name;
  }
}

TEST(FaultSpec, MalformedSpecsThrow) {
  EXPECT_THROW(FaultPlan::parse("unknown-key=1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("drop=nope"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("drop=-0.1"), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("spike=0.5"), FaultSpecError);  // no cycles
  EXPECT_THROW(FaultPlan::parse("seed="), FaultSpecError);
  EXPECT_THROW(FaultPlan::parse("justnoise"), FaultSpecError);
}

TEST(FaultSpec, FromEnvReadsAndValidates) {
  ::unsetenv("NUMAPROF_FAULTS");
  EXPECT_FALSE(FaultPlan::from_env().enabled());
  ::setenv("NUMAPROF_FAULTS", "seed=9;drop=0.5", 1);
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_TRUE(plan.enabled());
  EXPECT_EQ(plan.seed(), 9u);
  ::setenv("NUMAPROF_FAULTS", "bogus=1", 1);
  EXPECT_THROW(FaultPlan::from_env(), FaultSpecError);
  ::unsetenv("NUMAPROF_FAULTS");
}

TEST(FaultPlanDeterminism, SameSeedSameDecisions) {
  FaultPlan a = FaultPlan::parse("seed=7;drop=0.5");
  FaultPlan b = FaultPlan::parse("seed=7;drop=0.5");
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.drop_sample(), b.drop_sample()) << "decision " << i;
  }
  EXPECT_EQ(a.counters().dropped_samples, b.counters().dropped_samples);
}

TEST(FaultPlanDeterminism, ProbabilityExtremes) {
  FaultPlan always = FaultPlan::parse("drop=1.0;corrupt=1.0;spike=1.0:500");
  FaultPlan never = FaultPlan::parse("drop=0.0");
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(always.drop_sample());
    EXPECT_TRUE(always.corrupt_sample());
    const auto spike = always.latency_outlier();
    ASSERT_TRUE(spike.has_value());
    EXPECT_EQ(*spike, 500u);
    EXPECT_FALSE(never.drop_sample());
    EXPECT_FALSE(never.latency_outlier().has_value());
  }
  EXPECT_EQ(always.counters().dropped_samples, 50u);
  EXPECT_EQ(always.counters().latency_spikes, 50u);
  EXPECT_EQ(never.counters().dropped_samples, 0u);
}

TEST(FaultPlanStreams, TruncateCutsAtOffset) {
  FaultPlan plan = FaultPlan::parse("truncate=10");
  const std::string out = plan.mutate_stream("0123456789ABCDEF");
  EXPECT_EQ(out, "0123456789");
  EXPECT_EQ(plan.counters().stream_truncations, 1u);
  // Truncation beyond the end is a no-op.
  FaultPlan big = FaultPlan::parse("truncate=1000");
  EXPECT_EQ(big.mutate_stream("short"), "short");
}

TEST(FaultPlanStreams, BitflipChangesAtMostNBits) {
  FaultPlan plan = FaultPlan::parse("seed=3;bitflip=4");
  const std::string original(64, 'a');
  const std::string mutated = plan.mutate_stream(original);
  ASSERT_EQ(mutated.size(), original.size());
  int bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(mutated[i]);
    while (diff) {
      bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_GT(bits, 0);
  EXPECT_LE(bits, 4);
  EXPECT_EQ(plan.counters().stream_bitflips, 4u);
}

TEST(FaultPlanStreams, MutationIsDeterministicPerSeed) {
  FaultPlan a = FaultPlan::parse("seed=11;bitflip=8");
  FaultPlan b = FaultPlan::parse("seed=11;bitflip=8");
  const std::string payload(256, 'x');
  EXPECT_EQ(a.mutate_stream(payload), b.mutate_stream(payload));
}

TEST(FaultPlanCounters, ScrambleChangesValue) {
  FaultPlan plan = FaultPlan::parse("corrupt=1.0");
  const std::uint64_t scrambled = plan.scramble(0x1234u);
  EXPECT_NE(scrambled, 0x1234u);
}

}  // namespace
}  // namespace numaprof::support
