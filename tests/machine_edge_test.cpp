// Edge cases and failure injection for the simulated runtime + OS layers.
#include <gtest/gtest.h>

#include <new>

#include "numasim/topology.hpp"
#include "simrt/machine.hpp"

namespace numaprof::simrt {
namespace {

using numasim::test_machine;

TEST(MachineEdge, HeapExhaustionSurfacesAsBadAlloc) {
  Machine m(test_machine(2, 2));
  m.spawn([](SimThread& t) -> Task {
    // The heap segment is 8 GiB; ask for more.
    t.malloc(9ULL << 30, "too-big");
    co_return;
  });
  EXPECT_THROW(m.run(), std::bad_alloc);
}

TEST(MachineEdge, ManySmallAllocationsAndFrees) {
  Machine m(test_machine(2, 2));
  m.spawn([](SimThread& t) -> Task {
    std::vector<simos::VAddr> blocks;
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 50; ++i) {
        blocks.push_back(t.malloc(100 + i, "tmp"));
      }
      // Free in a scrambled order to exercise coalescing.
      for (std::size_t i = 0; i < blocks.size(); i += 2) t.free(blocks[i]);
      for (std::size_t i = 1; i < blocks.size(); i += 2) t.free(blocks[i]);
      blocks.clear();
      co_await t.tick();
    }
  });
  m.run();
  EXPECT_EQ(m.memory().heap().live_blocks(), 0u);
  EXPECT_EQ(m.memory().heap().bytes_in_use(), 0u);
}

TEST(MachineEdge, FaultInsideParallelRegionAttributesFaultingThread) {
  Machine m(test_machine(4, 2));
  m.set_protect_on_alloc(true);
  std::vector<ThreadId> fault_tids;
  m.set_fault_handler([&](const FaultEvent& f) {
    fault_tids.push_back(f.tid);
    m.memory().page_table().unprotect(simos::page_of(f.addr));
  });
  simos::VAddr block = 0;
  parallel_region(m, 1, "alloc", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    block = t.malloc(8 * simos::kPageBytes, "shared");
                    co_return;
                  });
  parallel_region(m, 8, "touch._omp", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    t.store(block + index * simos::kPageBytes);
                    co_return;
                  });
  ASSERT_EQ(fault_tids.size(), 8u);
  std::sort(fault_tids.begin(), fault_tids.end());
  EXPECT_EQ(fault_tids.front(), 1u);  // workers are tids 1..8
  EXPECT_EQ(fault_tids.back(), 8u);
}

TEST(MachineEdge, ScopedFramesSurviveSuspension) {
  Machine m(test_machine(1, 2), MachineConfig{.quantum = 5});
  const FrameId outer = m.frames().intern("outer");
  bool checked = false;
  m.spawn([&](SimThread& t) -> Task {
    ScopedFrame frame(t, outer);
    for (int i = 0; i < 20; ++i) {
      t.exec(10);           // forces several quantum expiries
      co_await t.tick();    // suspension with the frame on the stack
    }
    checked = t.leaf_frame() == outer;
  });
  // A second thread to force real interleaving.
  m.spawn([](SimThread& t) -> Task {
    for (int i = 0; i < 20; ++i) {
      t.exec(10);
      co_await t.tick();
    }
  });
  m.run();
  EXPECT_TRUE(checked);
}

TEST(MachineEdge, SpawnAfterRunStartsAtCurrentTime) {
  Machine m(test_machine(1, 1));
  m.spawn([](SimThread& t) -> Task {
    t.exec(500);
    co_return;
  });
  m.run();
  const auto phase1 = m.elapsed();
  ASSERT_GE(phase1, 500u);
  numasim::Cycles start_time = 0;
  m.spawn([&](SimThread& t) -> Task {
    start_time = t.now();
    co_return;
  });
  m.run();
  EXPECT_EQ(start_time, phase1);  // serial-phase semantics
}

TEST(MachineEdge, EmptyRunIsHarmless) {
  Machine m(test_machine(1, 1));
  m.run();
  EXPECT_EQ(m.elapsed(), 0u);
  m.run();  // idempotent
}

TEST(MachineEdge, ZeroThreadParallelRegionCompletes) {
  Machine m(test_machine(2, 2));
  parallel_region(m, 0, "empty", {},
                  [](SimThread&, std::uint32_t) -> Task { co_return; });
  EXPECT_EQ(m.thread_count(), 0u);
}

TEST(MachineEdge, ObserverAddedMidRunSeesOnlyLaterPhases) {
  struct Counter : MachineObserver {
    std::uint64_t accesses = 0;
    void on_access(const SimThread&, const AccessEvent&) override {
      ++accesses;
    }
  } counter;

  Machine m(test_machine(2, 2));
  m.spawn([](SimThread& t) -> Task {
    for (int i = 0; i < 10; ++i) t.load(simos::kStaticBase + i * 64);
    co_return;
  });
  m.run();
  m.add_observer(counter);
  m.spawn([](SimThread& t) -> Task {
    for (int i = 0; i < 7; ++i) t.load(simos::kStaticBase + i * 64);
    co_return;
  });
  m.run();
  EXPECT_EQ(counter.accesses, 7u);
}

TEST(MachineEdge, AccessSpanningPagesUsesFirstByteHome) {
  // A multi-byte access whose address sits at a page boundary resolves by
  // its first byte (documented simplification).
  Machine m(test_machine(2, 2));
  m.set_protect_on_alloc(false);
  simos::VAddr block = 0;
  m.spawn(
      [&](SimThread& t) -> Task {
        block = t.malloc(2 * simos::kPageBytes, "two-pages");
        t.store(block + simos::kPageBytes - 4, 8);  // straddles
        co_return;
      },
      0);
  m.run();
  // Only the first page was touched/homed.
  const auto& pt = m.memory().page_table();
  EXPECT_TRUE(pt.query_home(simos::page_of(block)).has_value());
  EXPECT_FALSE(pt.query_home(simos::page_of(block) + 1).has_value());
}

TEST(MachineEdge, DeterministicUnderDifferentQuanta) {
  // Quantum changes interleaving granularity, not the work performed:
  // instruction totals are invariant even though timing shifts.
  const auto instructions = [](std::uint64_t quantum) {
    Machine m(test_machine(2, 4), MachineConfig{.quantum = quantum});
    parallel_region(m, 8, "work", {},
                    [](SimThread& t, std::uint32_t index) -> Task {
                      for (int i = 0; i < 100; ++i) {
                        t.load(simos::kStaticBase + (index * 100 + i) * 64);
                        t.exec(2);
                        co_await t.tick();
                      }
                    });
    return m.total_instructions();
  };
  EXPECT_EQ(instructions(10), instructions(1000));
}

TEST(MachineEdge, StaticDefinitionWithPolicyHonored) {
  Machine m(test_machine(4, 2));
  const auto symbol =
      m.define_static("interleaved_table", 8 * simos::kPageBytes,
                      simos::PolicySpec::interleave());
  m.spawn(
      [&](SimThread& t) -> Task {
        for (std::uint64_t p = 0; p < 8; ++p) {
          t.load(symbol.start + p * simos::kPageBytes);
        }
        co_return;
      },
      0);
  m.run();
  const auto& pt = m.memory().page_table();
  for (std::uint64_t p = 0; p < 8; ++p) {
    EXPECT_EQ(pt.query_home(simos::page_of(symbol.start) + p).value(),
              p % 4);
  }
}

}  // namespace
}  // namespace numaprof::simrt
