// Randomized (seeded, reproducible) property tests: allocator soundness
// under chaotic workloads, page-table/policy invariants, and profile
// parser robustness against corrupted input.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "apps/common.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "ingest/server.hpp"
#include "ingest/wal.hpp"
#include "lint/dataflow.hpp"
#include "lint/numalint.hpp"
#include "numasim/topology.hpp"
#include "simos/heap.hpp"
#include "support/faultinject.hpp"
#include "support/rng.hpp"

namespace numaprof {
namespace {

TEST(HeapFuzz, RandomAllocFreeKeepsInvariants) {
  simos::Heap heap(simos::kHeapBase, 512 * simos::kPageBytes);
  support::Rng rng(0xF00D);
  std::map<simos::VAddr, simos::HeapBlock> live;
  std::uint64_t expected_bytes = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc = live.empty() || rng.next_bool(0.55);
    if (do_alloc) {
      const std::uint64_t size = rng.next_in(1, 6 * simos::kPageBytes);
      simos::HeapBlock block;
      try {
        block = heap.allocate(size);
      } catch (const std::bad_alloc&) {
        continue;  // fragmentation/full: fine
      }
      // No overlap with any live block.
      for (const auto& [start, other] : live) {
        const bool disjoint =
            block.start + block.page_count * simos::kPageBytes <= start ||
            other.start + other.page_count * simos::kPageBytes <= block.start;
        ASSERT_TRUE(disjoint) << "overlap at step " << step;
      }
      live[block.start] = block;
      expected_bytes += block.page_count * simos::kPageBytes;
    } else {
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      const auto block = heap.free(it->first);
      ASSERT_TRUE(block.has_value());
      expected_bytes -= block->page_count * simos::kPageBytes;
      live.erase(it);
    }
    ASSERT_EQ(heap.bytes_in_use(), expected_bytes);
    ASSERT_EQ(heap.live_blocks(), live.size());

    // Random interior lookups resolve to the right block.
    if (!live.empty() && step % 7 == 0) {
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      const auto offset =
          rng.next_below(it->second.page_count * simos::kPageBytes);
      const auto found = heap.find(it->first + offset);
      ASSERT_TRUE(found.has_value());
      EXPECT_EQ(found->id, it->second.id);
    }
  }
  // Drain and confirm the whole segment is reusable.
  for (const auto& [start, block] : live) heap.free(start);
  EXPECT_NO_THROW(heap.allocate(512 * simos::kPageBytes));
}

TEST(PageTableFuzz, PolicyHomesAreStableAndInRange) {
  support::Rng rng(0xBEEF);
  simos::PageTable table(8);
  struct Region {
    simos::PageId start;
    std::uint64_t pages;
  };
  std::vector<Region> regions;
  simos::PageId cursor = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t pages = rng.next_in(1, 64);
    simos::PolicySpec policy;
    switch (rng.next_below(4)) {
      case 0: policy = simos::PolicySpec::first_touch(); break;
      case 1: policy = simos::PolicySpec::interleave(); break;
      case 2:
        policy = simos::PolicySpec::bind(
            static_cast<numasim::DomainId>(rng.next_below(8)));
        break;
      default: policy = simos::PolicySpec::blockwise(); break;
    }
    table.register_region(cursor, pages, policy);
    regions.push_back({cursor, pages});
    cursor += pages + rng.next_below(4);  // gaps allowed
  }

  // Touch every page twice from random domains: homes are in range and
  // sticky.
  std::map<simos::PageId, numasim::DomainId> homes;
  for (const Region& region : regions) {
    for (simos::PageId p = region.start; p < region.start + region.pages;
         ++p) {
      const auto toucher =
          static_cast<numasim::DomainId>(rng.next_below(8));
      const auto home = table.home_of(p, toucher);
      ASSERT_LT(home, 8u);
      homes[p] = home;
    }
  }
  for (const auto& [page, home] : homes) {
    const auto again = table.home_of(
        page, static_cast<numasim::DomainId>(rng.next_below(8)));
    EXPECT_EQ(again, home) << "page " << page << " moved";
  }
}

/// Corrupt a serialized profile at many positions; the loader must throw
/// or return, never crash or hang.
TEST(ProfileIoFuzz, CorruptedInputNeverCrashes) {
  // Build a small real profile first.
  simrt::Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 25;
  core::Profiler profiler(m, cfg);
  parallel_region(m, 2, "w", {},
                  [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                    const simos::VAddr v = t.malloc(4096, "x");
                    for (int k = 0; k < 200; ++k) {
                      t.load(v + ((i + k) % 512) * 8);
                    }
                    co_return;
                  });
  std::stringstream out;
  core::ProfileWriter().write(profiler.snapshot(), out);
  const std::string good = out.str();

  support::Rng rng(0xC0FFEE);
  int threw = 0, loaded = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string bad = good;
    switch (trial % 3) {
      case 0:  // truncate
        bad.resize(rng.next_below(bad.size()));
        break;
      case 1: {  // flip a byte
        const auto pos = rng.next_below(bad.size());
        bad[pos] = static_cast<char>(rng.next_below(256));
        break;
      }
      default: {  // splice a random chunk out
        const auto pos = rng.next_below(bad.size());
        const auto len = rng.next_below(bad.size() - pos);
        bad.erase(pos, len);
        break;
      }
    }
    std::stringstream in(bad);
    try {
      const core::SessionData data = core::ProfileReader().read(in).data;
      ++loaded;  // corruption happened to keep the grammar valid
      (void)data;
    } catch (const std::exception&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw + loaded, 300);
  EXPECT_GT(threw, 100);  // most corruptions are detected
}

/// The fault injector's stream faults (truncation + bit flips) drive both
/// load modes over the same corrupted bytes. Strict must throw a typed
/// ProfileError or load; lenient must (almost) always return, and any
/// partial SessionData it returns must uphold the analyzer's invariants.
TEST(ProfileIoFuzz, FaultInjectedStreamsStrictAndLenient) {
  simrt::Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 25;
  core::Profiler profiler(m, cfg);
  parallel_region(m, 2, "w", {},
                  [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                    const simos::VAddr v = t.malloc(4096, "x");
                    for (int k = 0; k < 200; ++k) {
                      t.load(v + ((i + k) % 512) * 8);
                    }
                    co_return;
                  });
  std::stringstream out;
  core::ProfileWriter().write(profiler.snapshot(), out);
  const std::string good = out.str();

  int lenient_returned = 0, lenient_threw = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Alternate truncation and bit flips, all seeded through the plan.
    const std::string spec =
        trial % 2 == 0
            ? "seed=" + std::to_string(trial) + ";bitflip=8"
            : "seed=" + std::to_string(trial) + ";truncate=" +
                  std::to_string((trial * 977) % good.size());
    support::FaultPlan plan = support::FaultPlan::parse(spec);
    const std::string bad = plan.mutate_stream(good);

    // Strict: a typed error naming field and line, or a clean load.
    std::stringstream strict_in(bad);
    try {
      (void)core::ProfileReader().read(strict_in).data;
    } catch (const core::ProfileError& e) {
      EXPECT_FALSE(e.field().empty()) << spec;
    }

    // Lenient: returns partial data unless the header itself is destroyed.
    std::stringstream lenient_in(bad);
    try {
      const core::LoadResult result =
          core::ProfileReader(core::LoadOptions{.lenient = true}).read(lenient_in);
      ++lenient_returned;
      const core::SessionData& d = result.data;
      ASSERT_EQ(d.stores.size(), d.totals.size()) << spec;
      for (const core::ThreadTotals& t : d.totals) {
        ASSERT_EQ(t.per_domain.size(), d.domain_count) << spec;
      }
      for (const core::Variable& v : d.variables) {
        ASSERT_LT(v.variable_node, d.cct.size()) << spec;
      }
      for (const core::FirstTouchRecord& r : d.first_touches) {
        ASSERT_LT(r.node, d.cct.size()) << spec;
      }
      // The partial data must be analyzable end-to-end.
      const core::Analyzer analyzer(d);
      (void)analyzer.program();
    } catch (const core::ProfileError&) {
      ++lenient_threw;  // header (magic/version) was hit: not a profile
    }
  }
  EXPECT_EQ(lenient_returned + lenient_threw, 200);
  // Damage rarely lands on the first line; lenient mode recovers the rest.
  EXPECT_GT(lenient_returned, 150);
}

namespace {

/// Truncate, flip a byte, or duplicate a chunk of `bytes` — the three
/// shapes of damage a transport stream or log file actually suffers.
std::string mutate_bytes(std::string bytes, support::Rng& rng, int trial) {
  switch (trial % 3) {
    case 0:
      bytes.resize(rng.next_below(bytes.size()));
      break;
    case 1: {
      const auto pos = rng.next_below(bytes.size());
      bytes[pos] = static_cast<char>(bytes[pos] ^
                                     (1u << rng.next_below(8)));
      break;
    }
    default: {  // duplicate a chunk (a retransmit landing twice)
      const auto pos = rng.next_below(bytes.size());
      const auto len = rng.next_below(bytes.size() - pos) + 1;
      bytes.insert(pos, bytes.substr(pos, len));
      break;
    }
  }
  return bytes;
}

}  // namespace

/// Frame decoder robustness: any mutation of a valid multi-frame stream
/// must decode to a mix of frames and counted damage — always making
/// forward progress (no hang), never crashing, and never "decoding" a
/// frame that was not in the original stream.
TEST(IngestFuzz, MutatedFrameStreamsNeverCrashOrStall) {
  std::string good;
  for (std::uint64_t seq = 1; seq <= 12; ++seq) {
    ingest::Frame frame;
    frame.type = seq == 1 ? ingest::FrameType::kHello
                          : ingest::FrameType::kShard;
    frame.client = 3;
    frame.sequence = seq;
    frame.payload = "shard " + std::to_string(seq) +
                    std::string(seq * 7 % 64, '#');
    good += ingest::encode_frame(frame);
  }

  support::Rng rng(0xF7A3E);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string bad = mutate_bytes(good, rng, trial);
    std::size_t at = 0;
    int ok = 0, damaged = 0;
    while (at < bad.size()) {
      const ingest::DecodeResult result =
          ingest::decode_frame(std::string_view(bad).substr(at));
      if (result.status == ingest::DecodeStatus::kNeedMore) break;
      ASSERT_GT(result.consumed, 0u)
          << "trial " << trial << ": decoder made no progress at " << at;
      at += result.consumed;
      if (result.status == ingest::DecodeStatus::kOk) {
        ++ok;
        EXPECT_EQ(result.frame.client, 3u);
        EXPECT_GE(result.frame.sequence, 1u);
        EXPECT_LE(result.frame.sequence, 12u);
      } else {
        ++damaged;
      }
    }
    // A bit flip damages at most the frame it hits; a duplication only
    // repeats valid frames. Something must always be classified.
    EXPECT_GT(ok + damaged + (at < bad.size() ? 1 : 0), 0) << trial;

    // The server must absorb the same bytes without throwing.
    ingest::IngestServer server;
    server.ingest_stream(bad);
  }
}

/// WAL replay robustness: any mutation of a valid log must yield a clean
/// prefix of the original records plus a quantified torn tail, and
/// recovery must truncate to a log that then replays clean.
TEST(IngestFuzz, MutatedWalAlwaysRecoversToValidPrefix) {
  std::vector<ingest::WalRecord> records;
  std::string good;
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    ingest::WalRecord record;
    record.type = seq == 1 ? ingest::WalRecordType::kHello
                           : ingest::WalRecordType::kShard;
    record.client = 1;
    record.sequence = seq;
    record.payload = "payload " + std::to_string(seq) +
                     std::string(seq * 11 % 48, '@');
    records.push_back(record);
    good += ingest::encode_wal_record(record, seq);
  }

  const auto dir = std::filesystem::temp_directory_path() / "numaprof_walfuzz";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "fuzz.wal").string();
  support::Rng rng(0x3A11);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string bad = mutate_bytes(good, rng, trial);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << bad;
    }
    const ingest::WalReplay replay = ingest::replay_wal(path);
    ASSERT_EQ(replay.valid_bytes + replay.torn_bytes, bad.size()) << trial;
    ASSERT_LE(replay.records.size(), records.size()) << trial;
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      ASSERT_EQ(replay.records[i].sequence, records[i].sequence)
          << "trial " << trial << ": record " << i
          << " is not a prefix of the original log";
      ASSERT_EQ(replay.records[i].payload, records[i].payload) << trial;
    }
    // Recovery truncates; the truncated log must replay clean.
    const ingest::WalReplay recovered = ingest::recover_wal(path);
    EXPECT_EQ(recovered.records.size(), replay.records.size()) << trial;
    const ingest::WalReplay again = ingest::replay_wal(path);
    EXPECT_EQ(again.torn_bytes, 0u) << trial;
    EXPECT_EQ(again.records.size(), replay.records.size()) << trial;
  }
  std::filesystem::remove_all(dir);
}

TEST(LintFuzz, MutatedSourcesNeverCrashTheDataflowEngine) {
  // The lexer -> IR -> summary -> cross-TU propagation chain must accept
  // arbitrary bytes: lint inputs are whatever the user points the tool
  // at. Start from a real antipattern TU so mutations explore the
  // interesting grammar neighborhood, not just noise.
  const std::string good = R"lint(
#include <cstdlib>
static double* big = nullptr;
double* make_grid(long n) { return (double*)malloc(n * 8); }
void fill(double* p, long n) {
  for (long i = 0; i < n; ++i) p[i] = 0.0;
}
void setup(long n) { big = make_grid(n); fill(big, n); }
void consume(long n) {
  #pragma omp parallel for schedule(static, 1'6)
  for (long i = 0; i < n; ++i) big[i] *= 2.0;
}
)lint";
  support::Rng rng(0xDA7AF70);
  for (int trial = 0; trial < 300; ++trial) {
    std::string bad = good;
    switch (trial % 4) {
      case 0:  // truncate
        bad.resize(rng.next_below(bad.size()));
        break;
      case 1: {  // flip a byte
        const auto pos = rng.next_below(bad.size());
        bad[pos] = static_cast<char>(rng.next_below(256));
        break;
      }
      case 2: {  // splice a random chunk out
        const auto pos = rng.next_below(bad.size());
        bad.erase(pos, rng.next_below(bad.size() - pos));
        break;
      }
      default: {  // duplicate a random chunk (unbalances nesting)
        const auto pos = rng.next_below(bad.size());
        const auto len = rng.next_below(bad.size() - pos);
        bad.insert(pos, bad.substr(pos, len));
        break;
      }
    }
    // Per-file phase 1 (lex + IR + summary), then whole-program
    // propagation over the mutant paired with an intact TU.
    lint::FilePhase1 phase1 = lint::lint_file_phase1(bad, "mutant.cpp");
    lint::FilePhase1 anchor = lint::lint_file_phase1(good, "anchor.cpp");
    const auto findings = lint::dataflow::propagate_and_check(
        {phase1.summary, anchor.summary});
    for (const auto& f : findings) {
      ASSERT_FALSE(f.variable.empty());
      ASSERT_LT(static_cast<int>(f.kind), core::kLintKindCount);
    }
  }
}

}  // namespace
}  // namespace numaprof
