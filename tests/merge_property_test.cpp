// Property-based lockdown of the §7.2 profile reductions: the [min,max]
// BinStats merge, the MetricStore sum merge, and the multi-shard session
// merge. All inputs are generated from seeded support::Rng streams (no
// wall-clock entropy), so every run exercises the identical cases.
//
// Two kinds of properties:
//  - algebraic: commutativity, associativity, and empty-merge idempotence
//    of the reductions. Double sums are only associative when the addends
//    are exactly representable, so associativity cases use integer-valued
//    metrics; commutativity and identity hold bitwise for ANY doubles.
//  - equivalence: the parallel merge paths (MetricStore::merge_all, the
//    Analyzer's row-parallel fold, merge_profile_files with jobs > 1)
//    must produce BITWISE identical results to the serial reference path
//    for jobs in {1, 2, 8}, even with arbitrary (non-integer) latencies.
//
// Also holds the regression test for the analyzer's domain-count guard: a
// per-thread store sized for the wrong machine must raise a typed
// ProfileError instead of being silently truncated into the merge.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/session.hpp"
#include "support/rng.hpp"
#include "support/threadpool.hpp"

namespace numaprof::core {
namespace {

namespace fs = std::filesystem;

// --- generators ------------------------------------------------------

/// Integer-valued double (exact under addition, any order).
double int_valued(support::Rng& rng) {
  return static_cast<double>(rng.next_below(1000));
}

/// Arbitrary positive double (not exactly representable sums).
double messy(support::Rng& rng) { return rng.next_double() * 997.0; }

BinStats random_bin(support::Rng& rng, bool integer_latency) {
  BinStats s;
  const simos::VAddr base = 0x1000 + rng.next_below(1 << 20);
  s.lo = base;
  s.hi = base + rng.next_below(1 << 16);
  s.count = rng.next_below(1 << 20);
  s.latency = integer_latency ? int_valued(rng) : messy(rng);
  return s;
}

MetricStore random_store(support::Rng& rng, std::uint32_t domains,
                         NodeId max_node, bool integer_values) {
  MetricStore store(domains);
  const std::size_t touches = 5 + rng.next_below(40);
  for (std::size_t t = 0; t < touches; ++t) {
    const NodeId node = static_cast<NodeId>(rng.next_below(max_node));
    const auto metric = static_cast<std::uint32_t>(
        rng.next_below(kFixedMetricCount + domains));
    store.add(node, metric,
              integer_values ? int_valued(rng) : messy(rng));
  }
  return store;
}

bool bitwise_equal(const BinStats& a, const BinStats& b) {
  return a.lo == b.lo && a.hi == b.hi && a.count == b.count &&
         a.latency == b.latency;  // exact, not approximate
}

/// Bitwise store comparison over the union of allocated rows.
void expect_stores_identical(const MetricStore& a, const MetricStore& b) {
  ASSERT_EQ(a.width(), b.width());
  const std::size_t rows = std::max(a.node_capacity(), b.node_capacity());
  for (NodeId node = 0; node < rows; ++node) {
    for (std::uint32_t m = 0; m < a.width(); ++m) {
      ASSERT_EQ(a.get(node, m), b.get(node, m))
          << "node " << node << " metric " << m;
    }
  }
}

/// A structurally valid multi-thread session with randomized measurements.
/// Per-thread data is disjoint by construction (as real shards are), and
/// latencies are arbitrary doubles — across-jobs equivalence must hold
/// because the addition ORDER matches, not because values are exact.
SessionData random_session(std::uint64_t seed, std::uint32_t threads) {
  support::Rng rng(seed);
  SessionData data;
  data.machine_name = "property-machine";
  data.domain_count = 3;
  data.core_count = 6;
  data.mechanism = pmu::Mechanism::kIbs;
  data.requested_mechanism = pmu::Mechanism::kIbs;
  data.sampling_period = 128;
  data.pebs_ll_events = rng.next_below(1 << 20);

  for (std::uint32_t f = 0; f < 6; ++f) {
    data.frames.push_back(simrt::FrameInfo{
        .name = "fn" + std::to_string(f),
        .file = "property.cpp",
        .line = 10 * f,
        .kind = simrt::FrameKind::kFunction});
  }
  // A small CCT: an allocation segment with frame chains under it.
  const NodeId alloc = data.cct.child(kRootNode, NodeKind::kAllocation, 0);
  std::vector<NodeId> leaves;
  for (std::uint32_t f = 0; f < 6; ++f) {
    const NodeId frame = data.cct.child(alloc, NodeKind::kFrame, f);
    leaves.push_back(data.cct.child(frame, NodeKind::kVariable, f));
  }
  for (std::uint32_t v = 0; v < 4; ++v) {
    Variable var;
    var.id = v;
    var.kind = VariableKind::kHeap;
    var.name = "var" + std::to_string(v);
    var.start = 0x10000 + 0x40000ull * v;
    var.page_count = 8;
    var.size = var.page_count * simos::kPageBytes;
    var.variable_node = leaves[v];
    data.variables.push_back(var);
  }

  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    ThreadTotals t;
    t.samples = rng.next_below(1 << 16);
    t.memory_samples = rng.next_below(1 << 14);
    t.match = rng.next_below(1 << 12);
    t.mismatch = rng.next_below(1 << 12);
    t.remote_latency = messy(rng);
    t.total_latency = t.remote_latency + messy(rng);
    t.l3_miss_samples = rng.next_below(1 << 10);
    t.remote_l3_miss_samples = rng.next_below(1 << 9);
    t.instructions = rng.next_below(1 << 20);
    t.memory_instructions = rng.next_below(1 << 18);
    t.per_domain.resize(data.domain_count);
    for (auto& d : t.per_domain) d = rng.next_below(1 << 12);
    data.totals.push_back(std::move(t));
    data.stores.push_back(random_store(
        rng, data.domain_count,
        static_cast<NodeId>(data.cct.size()), /*integer_values=*/false));

    const std::size_t bins = 1 + rng.next_below(6);
    for (std::size_t b = 0; b < bins; ++b) {
      const auto v =
          static_cast<VariableId>(rng.next_below(data.variables.size()));
      BinKey key{.context = static_cast<simrt::FrameId>(rng.next_below(6)),
                 .variable = v,
                 .bin = static_cast<std::uint32_t>(rng.next_below(5)),
                 .tid = tid};
      data.address_centric.insert(key, random_bin(rng, false));
    }
    data.first_touches.push_back(FirstTouchRecord{
        .variable = static_cast<VariableId>(
            rng.next_below(data.variables.size())),
        .tid = tid,
        .domain = static_cast<std::uint32_t>(
            rng.next_below(data.domain_count)),
        .node = leaves[tid % leaves.size()],
        .page = rng.next_below(64)});
  }
  return data;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string profile_bytes(const SessionData& data) {
  std::ostringstream os;
  ProfileWriter().write(data, os);
  return os.str();
}

// --- BinStats ([min,max] reduction) algebra --------------------------

TEST(MergeProperty, BinStatsMergeCommutes) {
  support::Rng rng(0xb1135701);
  for (int trial = 0; trial < 200; ++trial) {
    const BinStats a = random_bin(rng, false);
    const BinStats b = random_bin(rng, false);
    BinStats ab = a;
    ab.merge(b);
    BinStats ba = b;
    ba.merge(a);
    // min/max/count are order-free; the latency SUM commutes bitwise too
    // (IEEE addition is commutative, just not associative).
    ASSERT_TRUE(bitwise_equal(ab, ba)) << "trial " << trial;
  }
}

TEST(MergeProperty, BinStatsMergeAssociatesOnExactValues) {
  support::Rng rng(0xb1135702);
  for (int trial = 0; trial < 200; ++trial) {
    const BinStats a = random_bin(rng, true);
    const BinStats b = random_bin(rng, true);
    const BinStats c = random_bin(rng, true);
    BinStats left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    BinStats right = b;  // a + (b + c)
    right.merge(c);
    BinStats a_first = a;
    a_first.merge(right);
    ASSERT_TRUE(bitwise_equal(left, a_first)) << "trial " << trial;
  }
}

TEST(MergeProperty, EmptyBinStatsIsMergeIdentity) {
  support::Rng rng(0xb1135703);
  for (int trial = 0; trial < 100; ++trial) {
    const BinStats a = random_bin(rng, false);
    BinStats merged = a;
    merged.merge(BinStats{});  // default-constructed = never updated
    ASSERT_TRUE(bitwise_equal(merged, a));
    BinStats from_empty;
    from_empty.merge(a);
    ASSERT_TRUE(bitwise_equal(from_empty, a));
  }
}

// --- MetricStore merge algebra ---------------------------------------

TEST(MergeProperty, MetricStoreMergeCommutes) {
  support::Rng rng(0x57040001);
  for (int trial = 0; trial < 50; ++trial) {
    const MetricStore a = random_store(rng, 3, 40, false);
    const MetricStore b = random_store(rng, 3, 40, false);
    MetricStore ab = a;
    ab.merge(b);
    MetricStore ba = b;
    ba.merge(a);
    expect_stores_identical(ab, ba);
  }
}

TEST(MergeProperty, MetricStoreMergeAssociatesOnExactValues) {
  support::Rng rng(0x57040002);
  for (int trial = 0; trial < 50; ++trial) {
    const MetricStore a = random_store(rng, 3, 40, true);
    const MetricStore b = random_store(rng, 3, 40, true);
    const MetricStore c = random_store(rng, 3, 40, true);
    MetricStore left = a;
    left.merge(b);
    left.merge(c);
    MetricStore bc = b;
    bc.merge(c);
    MetricStore right = a;
    right.merge(bc);
    expect_stores_identical(left, right);
  }
}

TEST(MergeProperty, EmptyMetricStoreIsMergeIdentity) {
  support::Rng rng(0x57040003);
  const MetricStore empty(3);
  for (int trial = 0; trial < 50; ++trial) {
    const MetricStore a = random_store(rng, 3, 40, false);
    MetricStore merged = a;
    merged.merge(empty);
    expect_stores_identical(merged, a);
    MetricStore from_empty(3);
    from_empty.merge(a);
    expect_stores_identical(from_empty, a);
  }
}

// --- serial vs parallel bitwise equivalence --------------------------

TEST(MergeProperty, MergeAllMatchesSerialFoldBitwiseAcrossJobs) {
  support::Rng rng(0x57040004);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<MetricStore> parts;
    const std::size_t count = 2 + rng.next_below(15);
    for (std::size_t i = 0; i < count; ++i) {
      parts.push_back(random_store(rng, 3, 2000, false));
    }
    MetricStore serial(3);
    for (const MetricStore& p : parts) serial.merge(p);

    std::vector<const MetricStore*> pointers;
    for (const MetricStore& p : parts) pointers.push_back(&p);
    for (const unsigned jobs : {1u, 2u, 8u}) {
      support::ThreadPool pool(jobs);
      MetricStore parallel(3);
      parallel.merge_all(pointers, &pool);
      expect_stores_identical(parallel, serial);
    }
  }
}

TEST(MergeProperty, ShardFileMergeIsBitwiseIdenticalAcrossJobs) {
  const SessionData original = random_session(0x57040005, 9);
  const std::string dir = fresh_dir("numaprof_property_shards");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  ASSERT_EQ(paths.size(), 9u);

  PipelineOptions serial_options;
  serial_options.jobs = 1;
  const std::string reference =
      profile_bytes(merge_profile_files(paths, serial_options).data);
  for (const unsigned jobs : {2u, 8u}) {
    PipelineOptions options;
    options.jobs = jobs;
    const MergeResult merged = merge_profile_files(paths, options);
    EXPECT_EQ(merged.summary.files_merged, paths.size());
    EXPECT_EQ(profile_bytes(merged.data), reference)
        << "jobs=" << jobs << " diverged from the serial merge";
  }
}

TEST(MergeProperty, AnalyzerParallelMergeIsBitwiseIdenticalAcrossJobs) {
  const SessionData data = random_session(0x57040006, 9);
  const Analyzer serial(data);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    PipelineOptions parallel_options;
    parallel_options.jobs = jobs;
    const Analyzer parallel(data, parallel_options);
    expect_stores_identical(parallel.merged(), serial.merged());
    EXPECT_EQ(parallel.program().samples, serial.program().samples);
    EXPECT_EQ(parallel.program().remote_latency,
              serial.program().remote_latency);
  }
}

// --- regression: domain-count mismatch is a typed error --------------

TEST(MergeProperty, AnalyzerRejectsStoreWithMismatchedDomainCount) {
  SessionData data = random_session(0x57040007, 3);
  ASSERT_EQ(data.domain_count, 3u);
  // Thread 1's store claims a 2-domain machine: every per-domain column
  // would silently misalign if this merged.
  data.stores[1] = MetricStore(2);
  data.stores[1].add(1, kNumaMismatch, 7.0);
  try {
    const Analyzer analyzer(data);
    FAIL() << "mismatched store domain count must not merge silently";
  } catch (const ProfileError& e) {
    EXPECT_EQ(e.field(), "stores");
    EXPECT_NE(std::string(e.what()).find("thread 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("domains"), std::string::npos);
  }
}

TEST(MergeProperty, AnalyzerAcceptsMatchingDomainCounts) {
  const SessionData data = random_session(0x57040008, 3);
  EXPECT_NO_THROW({
    const Analyzer analyzer(data);
    (void)analyzer;
  });
}

}  // namespace
}  // namespace numaprof::core
