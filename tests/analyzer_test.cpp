#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

/// Runs the first-touch pathology and returns the analyzed session.
SessionData run_session(pmu::Mechanism mechanism, std::uint32_t threads = 8,
                        std::uint32_t pages_per_thread = 6) {
  Machine m(numasim::test_machine(4, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(mechanism);
  cfg.event.period = 20;
  cfg.event.min_sample_gap = 0;
  cfg.event.instrumentation_work = 0;
  cfg.event.skid_correction_work = 0;
  Profiler profiler(m, cfg);

  simos::VAddr data = 0;
  const std::uint64_t elems =
      threads * pages_per_thread * (simos::kPageBytes / 8);
  const auto main_f = m.frames().intern("main");
  parallel_region(m, 1, "init", {main_f},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(elems * 8, "data");
                    for (std::uint64_t i = 0; i < elems; i += 8) {
                      t.store(data + i * 8);
                    }
                    co_return;
                  });
  parallel_region(m, threads, "work._omp", {main_f},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const std::uint64_t begin = elems * index / threads;
                    const std::uint64_t end = elems * (index + 1) / threads;
                    for (int sweep = 0; sweep < 4; ++sweep) {
                      for (std::uint64_t i = begin; i < end; i += 8) {
                        t.load(data + i * 8);
                        co_await t.tick();
                      }
                      co_await t.yield();
                    }
                  });
  return profiler.snapshot();
}

TEST(Analyzer, ProgramSummaryAggregatesThreads) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const Analyzer analyzer(data);
  const ProgramSummary& p = analyzer.program();
  EXPECT_GT(p.samples, 100u);
  EXPECT_EQ(p.match + p.mismatch, p.memory_samples);
  EXPECT_GT(p.instructions, 0u);
  EXPECT_GT(p.memory_instructions, 0u);
  std::uint64_t domain_sum = 0;
  for (const auto v : p.per_domain) domain_sum += v;
  EXPECT_EQ(domain_sum, p.memory_samples);
}

TEST(Analyzer, IbsLpiComputedViaEq2) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const Analyzer analyzer(data);
  const ProgramSummary& p = analyzer.program();
  ASSERT_TRUE(p.lpi.has_value());
  EXPECT_NEAR(*p.lpi, p.remote_latency / static_cast<double>(p.samples),
              1e-9);
  // The pathology is remote-dominated: well above the 0.1 threshold.
  EXPECT_TRUE(p.warrants_optimization);
  EXPECT_GT(p.remote_latency_fraction, 0.5);
}

TEST(Analyzer, MrkHasNoLpiButFlagsViaMr) {
  const SessionData data = run_session(pmu::Mechanism::kMrk);
  const Analyzer analyzer(data);
  const ProgramSummary& p = analyzer.program();
  EXPECT_FALSE(p.lpi.has_value());  // MRK reports no latency
  EXPECT_GT(p.remote_l3_fraction, 0.5);  // the §8.1 POWER7-style readout
  EXPECT_TRUE(p.warrants_optimization);  // via the M_r fallback
}

TEST(Analyzer, PebsLlUsesEq3WithAbsoluteEvents) {
  const SessionData data = run_session(pmu::Mechanism::kPebsLl);
  ASSERT_GT(data.pebs_ll_events, 0u);
  const Analyzer analyzer(data);
  const ProgramSummary& p = analyzer.program();
  ASSERT_TRUE(p.lpi.has_value());
  EXPECT_GT(*p.lpi, 0.0);
}

TEST(Analyzer, VariableReportRanksDataByCost) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const Analyzer analyzer(data);
  ASSERT_FALSE(analyzer.variables().empty());
  const VariableReport& top = analyzer.variables().front();
  EXPECT_EQ(top.name, "data");
  EXPECT_GT(top.remote_latency_share, 0.5);
  EXPECT_GT(top.mismatch, top.match);
  ASSERT_TRUE(top.lpi.has_value());
  EXPECT_GT(*top.lpi, 0.0);
  EXPECT_GT(top.first_touch_pages, 0u);
}

TEST(Analyzer, SingleHomeDomainDetected) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const Analyzer analyzer(data);
  const VariableReport& top = analyzer.variables().front();
  // All pages were first-touched by the master in domain 0: the "all
  // accesses come from NUMA domain 0" diagnosis of §8.1.
  ASSERT_TRUE(top.single_home_domain.has_value());
  EXPECT_EQ(*top.single_home_domain, 0u);
  EXPECT_EQ(top.per_domain[0], top.match + top.mismatch);
}

TEST(Analyzer, KindSharesSumBelowOne) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const Analyzer analyzer(data);
  const double heap = analyzer.kind_remote_share(VariableKind::kHeap);
  EXPECT_GT(heap, 0.5);  // the workload's only hot data is heap
  double total = 0.0;
  for (const auto kind :
       {VariableKind::kHeap, VariableKind::kStatic, VariableKind::kStack,
        VariableKind::kStackVar, VariableKind::kUnknown}) {
    total += analyzer.kind_remote_share(kind);
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(Analyzer, MergedStoreSumsThreadStores) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const Analyzer analyzer(data);
  double per_thread_sum = 0.0;
  for (const MetricStore& store : data.stores) {
    for (const NodeId node : store.nodes()) {
      per_thread_sum += store.get(node, kMemorySamples);
    }
  }
  double merged_sum = 0.0;
  for (const NodeId node : analyzer.merged().nodes()) {
    merged_sum += analyzer.merged().get(node, kMemorySamples);
  }
  EXPECT_DOUBLE_EQ(merged_sum, per_thread_sum);
}

TEST(Analyzer, ReportForUnsampledVariableIsZeroed) {
  SessionData data = run_session(pmu::Mechanism::kIbs);
  // Invent a variable that was never sampled.
  Variable ghost;
  ghost.id = static_cast<VariableId>(data.variables.size());
  ghost.name = "ghost";
  ghost.page_count = 1;
  ghost.variable_node = kRootNode;
  data.variables.push_back(ghost);
  const Analyzer analyzer(data);
  const VariableReport r = analyzer.report(ghost.id);
  EXPECT_EQ(r.samples, 0u);
  EXPECT_FALSE(r.single_home_domain.has_value());
  for (const VariableReport& listed : analyzer.variables()) {
    EXPECT_NE(listed.name, "ghost");  // unsampled: not listed
  }
}

TEST(SessionData, FirstTouchSitesMergeThreads) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const auto id = [&]() {
    for (const Variable& v : data.variables) {
      if (v.name == "data") return v.id;
    }
    return VariableId{0};
  }();
  const auto sites = data.first_touch_sites(id);
  ASSERT_EQ(sites.size(), 1u);  // one init site
  EXPECT_EQ(sites[0].threads.size(), 1u);  // master only
  EXPECT_EQ(sites[0].pages, 48u);          // 8 threads * 6 pages
}

TEST(SessionData, PathStringsAreReadable) {
  const SessionData data = run_session(pmu::Mechanism::kIbs);
  const auto id = [&]() {
    for (const Variable& v : data.variables) {
      if (v.name == "data") return v.id;
    }
    return VariableId{0};
  }();
  const std::string path = data.path_string(data.variables[id].variable_node);
  EXPECT_NE(path.find("[ALLOCATION]"), std::string::npos);
  EXPECT_NE(path.find("main"), std::string::npos);
  EXPECT_NE(path.find("VAR data"), std::string::npos);
  EXPECT_EQ(data.frame_name(kWholeProgram), "<whole program>");
}

}  // namespace
}  // namespace numaprof::core
