// Unit tests for the numalint lexer and antipattern recognizer on
// inline translation units (both recognized idioms: OpenMP-style C/C++
// and the repository's simulator workload DSL).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lint/lexer.hpp"
#include "lint/numalint.hpp"

namespace numaprof::lint {
namespace {

using core::Action;
using core::LintKind;
using core::PatternKind;
using core::StaticFinding;

// --- lexer ---------------------------------------------------------------

TEST(Lexer, TokenKindsAndLines) {
  const LexResult r = lex("int x = 42;\ndouble y = 1.5e-3;\n");
  ASSERT_GE(r.tokens.size(), 10u);
  EXPECT_EQ(r.tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(r.tokens[0].text, "int");
  EXPECT_EQ(r.tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(r.tokens[3].text, "42");
  EXPECT_EQ(r.tokens[3].line, 1u);
  // The float with exponent lexes as one token on line 2.
  const auto f = std::find_if(r.tokens.begin(), r.tokens.end(),
                              [](const Token& t) { return t.text == "1.5e-3"; });
  ASSERT_NE(f, r.tokens.end());
  EXPECT_EQ(f->kind, TokKind::kNumber);
  EXPECT_EQ(f->line, 2u);
}

TEST(Lexer, CommentsVanishButPreprocessorStays) {
  const LexResult r = lex("// line\n/* block\nspanning */ #pragma omp x\n");
  ASSERT_GE(r.tokens.size(), 4u);
  EXPECT_TRUE(r.tokens[0].is_punct("#"));
  EXPECT_TRUE(r.tokens[1].is_ident("pragma"));
  EXPECT_EQ(r.tokens[1].line, 3u);  // block comment counted its newline
}

TEST(Lexer, StringsHoldUnescapedContents) {
  const LexResult r = lex(R"src(auto s = "a\"b"; auto c = 'x';)src");
  const auto str = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kString;
                                });
  ASSERT_NE(str, r.tokens.end());
  EXPECT_EQ(str->text, "a\"b");
  const auto chr = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kChar;
                                });
  ASSERT_NE(chr, r.tokens.end());
  EXPECT_EQ(chr->text, "x");
}

TEST(Lexer, RawStrings) {
  const LexResult r = lex("auto s = R\"(no \" escape)\";");
  const auto str = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kString;
                                });
  ASSERT_NE(str, r.tokens.end());
  EXPECT_EQ(str->text, "no \" escape");
}

TEST(Lexer, MultiCharPunctuationMerges) {
  const LexResult r = lex("a->b :: c += d << e <<= f");
  auto has = [&](std::string_view p) {
    return std::any_of(r.tokens.begin(), r.tokens.end(),
                       [&](const Token& t) { return t.is_punct(p); });
  };
  EXPECT_TRUE(has("->"));
  EXPECT_TRUE(has("::"));
  EXPECT_TRUE(has("+="));
  EXPECT_TRUE(has("<<"));
  EXPECT_TRUE(has("<<="));
}

TEST(Lexer, MalformedInputNeverThrows) {
  EXPECT_NO_THROW(lex("\"unterminated"));
  EXPECT_NO_THROW(lex("/* unterminated"));
  EXPECT_NO_THROW(lex("R\"(unterminated raw"));
  EXPECT_NO_THROW(lex(std::string(3, '\0') + "\x01\xff"));
}

// --- recognizer: OpenMP idiom -------------------------------------------

const StaticFinding* find(const LintResult& r, std::string_view variable,
                          LintKind kind) {
  for (const StaticFinding& f : r.findings) {
    if (f.variable == variable && f.kind == kind) return &f;
  }
  return nullptr;
}

TEST(Lint, SerialInitThenOmpParallelIsL1) {
  const LintResult r = lint_source(R"src(
static double grid[4096];
void init(long n) {
  for (long i = 0; i < n; ++i) grid[i] = 0.0;
}
void work(long n) {
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) grid[i] += 1.0;
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "grid", LintKind::kSerialFirstTouch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, "t.cpp");
  EXPECT_EQ(f->line, 4u);       // the serial write
  EXPECT_EQ(f->decl_line, 2u);  // the declaration
  EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch);
}

TEST(Lint, ParallelInitIsClean) {
  const LintResult r = lint_source(R"src(
static double grid[4096];
void init(long n) {
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) grid[i] = 0.0;
}
void work(long n) {
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) grid[i] += 1.0;
}
)src",
                                   "t.cpp");
  EXPECT_EQ(find(r, "grid", LintKind::kSerialFirstTouch), nullptr);
}

TEST(Lint, PerThreadCountersAreL2) {
  const LintResult r = lint_source(R"src(
static int hits[64];
void work() {
  #pragma omp parallel
  {
    int tid = omp_get_thread_num();
    hits[tid] += 1;
  }
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "hits", LintKind::kFalseSharing);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->suggested, Action::kPadAlign);
}

TEST(Lint, CacheLineSizedElementsAreNotL2) {
  // 64-byte elements cannot false-share.
  const LintResult r = lint_source(R"src(
struct alignas(64) Pad { double v; char fill[56]; };
static Pad hits[64];
void work() {
  #pragma omp parallel
  {
    int tid = omp_get_thread_num();
    hits[tid].v += 1;
  }
}
)src",
                                   "t.cpp");
  EXPECT_EQ(find(r, "hits", LintKind::kFalseSharing), nullptr);
}

TEST(Lint, StackArrayEscapingIsL3) {
  const LintResult r = lint_source(R"src(
void work(long n) {
  double scratch[1024];
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) scratch[i % 1024] += 1.0;
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "scratch", LintKind::kStackEscape);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->decl_line, 3u);
}

TEST(Lint, OmpSingleAndNumThreadsOneAreSerial) {
  const LintResult r = lint_source(R"src(
static double a[64];
static double b[64];
void work(long n) {
  #pragma omp parallel num_threads(1)
  for (long i = 0; i < n; ++i) a[i] = 0.0;
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) b[i] = a[i];
}
)src",
                                   "t.cpp");
  // The num_threads(1) loop is a serial init; the consumer is parallel.
  EXPECT_NE(find(r, "a", LintKind::kSerialFirstTouch), nullptr);
  // b is only written in parallel: clean.
  EXPECT_EQ(find(r, "b", LintKind::kSerialFirstTouch), nullptr);
}

// --- recognizer: simulator DSL idiom ------------------------------------

TEST(Lint, DslSerialRegionThenParallelIsL1) {
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, const Config& cfg) {
  simos::VAddr data = 0;
  parallel_region(m, 1, "init", 0, [&](SimThread& t, uint32_t index) {
    data = t.malloc(cfg.elements * 8, "data", simos::PolicySpec::first_touch());
    store_lines(t, data, 0, cfg.elements);
  });
  parallel_region(m, cfg.threads, "compute", 0,
                  [&](SimThread& t, uint32_t index) {
    auto [b, e] = block_slice(cfg.elements, index, cfg.threads);
    load_lines(t, data, b, e);
  });
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "data", LintKind::kSerialFirstTouch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->line, 6u);
  EXPECT_EQ(f->expected, PatternKind::kBlocked);
  EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch);
}

TEST(Lint, DslThreadGuardedWriteCountsAsSerial) {
  // A master-guarded write inside a parallel region is still a serial
  // first touch (the miniamg rap_init idiom).
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, const Config& cfg) {
  simos::VAddr data = 0;
  parallel_region(m, cfg.threads, "setup", 0,
                  [&](SimThread& t, uint32_t index) {
    if (index == 0) {
      data = t.malloc(cfg.elements * 8, "data", simos::PolicySpec::first_touch());
      store_lines(t, data, 0, cfg.elements);
    }
    load_lines(t, data, index, index + 1);
  });
}
)src",
                                   "t.cpp");
  EXPECT_NE(find(r, "data", LintKind::kSerialFirstTouch), nullptr);
}

TEST(Lint, IndirectIndexingSuggestsInterleave) {
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, const Config& cfg) {
  simos::VAddr vec = 0;
  parallel_region(m, 1, "init", 0, [&](SimThread& t, uint32_t index) {
    vec = t.malloc(cfg.rows * 8, "vec", simos::PolicySpec::first_touch());
    store_lines(t, vec, 0, cfg.rows);
  });
  parallel_region(m, cfg.threads, "solve", 0,
                  [&](SimThread& t, uint32_t index) {
    t.load(elem_addr(vec, column_of(index, cfg.rows)));
  });
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "vec", LintKind::kSerialFirstTouch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->expected, PatternKind::kFullRange);
  EXPECT_EQ(f->suggested, Action::kInterleave);
  // Indirect accesses also suppress L4 even for interleaved policies.
  EXPECT_EQ(find(r, "vec", LintKind::kInterleaveMisuse), nullptr);
}

TEST(Lint, SoaStrideSuggestsRegroupAos) {
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, const Config& cfg) {
  simos::VAddr buffer = 0;
  const auto field_addr = [&](uint64_t option, uint32_t field) {
    return buffer + (field * cfg.options + option) * 8;
  };
  parallel_region(m, 1, "init", 0, [&](SimThread& t, uint32_t index) {
    buffer = t.malloc(cfg.options * 5 * 8, "buffer", simos::PolicySpec::first_touch());
    store_lines(t, buffer, 0, cfg.options * 5);
  });
  parallel_region(m, cfg.threads, "price", 0,
                  [&](SimThread& t, uint32_t index) {
    t.load(field_addr(index, 2));
  });
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "buffer", LintKind::kSerialFirstTouch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->expected, PatternKind::kStaggeredOverlap);
  EXPECT_EQ(f->suggested, Action::kRegroupAos);
}

TEST(Lint, InterleavedBlockLocalAccessIsL4) {
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, const Config& cfg) {
  simos::PolicySpec policy = simos::PolicySpec::interleave();
  simos::VAddr grid = 0;
  parallel_region(m, cfg.threads, "relax", 0,
                  [&](SimThread& t, uint32_t index) {
    if (index == 0) grid = t.malloc(cfg.elements * 8, "grid", policy);
    auto [b, e] = block_slice(cfg.elements, index, cfg.threads);
    store_lines(t, grid, b, e);
  });
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "grid", LintKind::kInterleaveMisuse);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch);
}

TEST(Lint, FirstTouchPolicyIsNotL4) {
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, const Config& cfg) {
  simos::PolicySpec policy = simos::PolicySpec::first_touch();
  simos::VAddr grid = 0;
  parallel_region(m, cfg.threads, "relax", 0,
                  [&](SimThread& t, uint32_t index) {
    if (index == 0) grid = t.malloc(cfg.elements * 8, "grid", policy);
    auto [b, e] = block_slice(cfg.elements, index, cfg.threads);
    store_lines(t, grid, b, e);
  });
}
)src",
                                   "t.cpp");
  EXPECT_EQ(find(r, "grid", LintKind::kInterleaveMisuse), nullptr);
}

TEST(Lint, RegisteredStackVariableEscapingIsL3) {
  const LintResult r = lint_source(R"src(
void workload(simrt::Machine& m, Profiler& profiler, const Config& cfg) {
  simos::VAddr nodes = 0x7000;
  profiler.registry().register_stack_variable("nodes(stack)", 0, nodes,
                                              cfg.elements * 8);
  parallel_region(m, cfg.threads, "compute", 0,
                  [&](SimThread& t, uint32_t index) {
    load_lines(t, nodes, 0, cfg.elements);
  });
}
)src",
                                   "t.cpp");
  const StaticFinding* f = find(r, "nodes(stack)", LintKind::kStackEscape);
  ASSERT_NE(f, nullptr);
}

// --- plumbing ------------------------------------------------------------

TEST(Lint, FindingsAreSortedAndRendered) {
  const LintResult r = lint_source(R"src(
static double b[64];
static double a[64];
void init(long n) {
  for (long i = 0; i < n; ++i) { a[i] = 0.0; b[i] = 0.0; }
}
void work(long n) {
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) a[i] += b[i];
}
)src",
                                   "t.cpp");
  ASSERT_GE(r.findings.size(), 2u);
  EXPECT_TRUE(std::is_sorted(
      r.findings.begin(), r.findings.end(),
      [](const StaticFinding& x, const StaticFinding& y) {
        return std::tie(x.file, x.line, x.variable) <
               std::tie(y.file, y.line, y.variable);
      }));
  const std::string text = render_findings(r.findings);
  EXPECT_NE(text.find("t.cpp:5"), std::string::npos);
  EXPECT_NE(text.find("[L1 serial-first-touch]"), std::string::npos);
  EXPECT_EQ(render_findings({}), "no findings\n");
}

TEST(Lint, KindCodesAreStable) {
  EXPECT_EQ(kind_code(LintKind::kSerialFirstTouch), "L1");
  EXPECT_EQ(kind_code(LintKind::kFalseSharing), "L2");
  EXPECT_EQ(kind_code(LintKind::kStackEscape), "L3");
  EXPECT_EQ(kind_code(LintKind::kInterleaveMisuse), "L4");
  EXPECT_EQ(kind_code(LintKind::kCrossSerialInit), "L5");
  EXPECT_EQ(kind_code(LintKind::kScheduleMismatch), "L6");
  EXPECT_EQ(kind_code(LintKind::kAliasHiddenInit), "L7");
  EXPECT_EQ(kind_code(LintKind::kReadMostly), "L8");
}

// --- lexer regressions ---------------------------------------------------

TEST(Lexer, DigitSeparatorsStayOneToken) {
  const LexResult r = lex("long n = 1'000'000; auto c = 'x'; int h = 0x1'F;");
  const auto num = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kNumber;
                                });
  ASSERT_NE(num, r.tokens.end());
  EXPECT_EQ(num->text, "1'000'000");
  // The separator-hardened number scan must not swallow the following
  // char literal's opening quote.
  const auto chr = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kChar;
                                });
  ASSERT_NE(chr, r.tokens.end());
  EXPECT_EQ(chr->text, "x");
  const auto hex = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.text == "0x1'F";
                                });
  EXPECT_NE(hex, r.tokens.end());
}

TEST(Lexer, SeparatorExtentParsesAsFullStructSize) {
  // strtoull("1'6") used to stop at the quote (extent 1), shrinking the
  // struct to one cache line and mis-firing L2 on a 128-byte element.
  const char* src = R"lint(
struct Slot { double v[1'6]; };
static Slot slots[64];
void tally(long n) {
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) {
    int tid = omp_get_thread_num();
    slots[tid].v[0] += 1.0;
  }
}
)lint";
  const LintResult r = lint_source(src, "sep.cpp");
  for (const StaticFinding& f : r.findings) {
    EXPECT_NE(f.kind, LintKind::kFalseSharing) << f.message;
  }
}

TEST(Lexer, BackslashNewlineInStringSplicesAndCountsLine) {
  const LexResult r = lex("auto s = \"ab\\\ncd\";\nint marker = 1;\n");
  const auto str = std::find_if(r.tokens.begin(), r.tokens.end(),
                                [](const Token& t) {
                                  return t.kind == TokKind::kString;
                                });
  ASSERT_NE(str, r.tokens.end());
  EXPECT_EQ(str->text, "abcd");  // spliced, not "ab\ncd"
  const auto marker = std::find_if(r.tokens.begin(), r.tokens.end(),
                                   [](const Token& t) {
                                     return t.is_ident("marker");
                                   });
  ASSERT_NE(marker, r.tokens.end());
  EXPECT_EQ(marker->line, 3u);  // the spliced newline still counts
}

TEST(Lint, ContinuedPragmaStillOpensParallelRegion) {
  // A backslash-continued `#pragma omp` directive spans two lines; the
  // region scan must follow the continuation instead of stopping cold.
  const char* src =
      "static double table[1 << 16];\n"
      "void setup(long n) {\n"
      "  for (long i = 0; i < n; ++i) table[i] = 0.0;\n"
      "}\n"
      "void consume(long n) {\n"
      "  #pragma omp parallel for \\\n"
      "      schedule(static)\n"
      "  for (long i = 0; i < n; ++i) table[i] += 1.0;\n"
      "}\n";
  const LintResult r = lint_source(src, "cont.cpp");
  const auto l1 = std::find_if(r.findings.begin(), r.findings.end(),
                               [](const StaticFinding& f) {
                                 return f.kind == LintKind::kSerialFirstTouch;
                               });
  ASSERT_NE(l1, r.findings.end());
  EXPECT_EQ(l1->variable, "table");
}

TEST(Lint, GarbageInputNeverThrows) {
  EXPECT_NO_THROW(lint_source("", "empty.cpp"));
  EXPECT_NO_THROW(lint_source("{{{{((((", "unbalanced.cpp"));
  EXPECT_NO_THROW(lint_source(")))}}}", "inverted.cpp"));
  EXPECT_NO_THROW(lint_source("#pragma omp parallel", "dangling.cpp"));
  EXPECT_NO_THROW(
      lint_source("int a[4]; void f() { a[0 = 1; }", "broken.cpp"));
}

TEST(Lint, StatsCountFilesLinesTokens) {
  const LintResult r = lint_source("int x;\nint y;\n", "t.cpp");
  EXPECT_EQ(r.stats.files, 1u);
  EXPECT_GE(r.stats.lines, 2u);
  EXPECT_EQ(r.stats.tokens, 6u);
}

}  // namespace
}  // namespace numaprof::lint
