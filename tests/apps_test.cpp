#include <gtest/gtest.h>

#include "apps/distributions.hpp"
#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::apps {
namespace {

using core::Advisor;
using core::Analyzer;
using core::PatternKind;
using core::Profiler;
using core::ProfilerConfig;
using core::SessionData;
using core::VariableId;

ProfilerConfig ibs(std::uint64_t period = 200) {
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = period;
  return cfg;
}

VariableId var_id(const SessionData& data, std::string_view name) {
  for (const core::Variable& v : data.variables) {
    if (v.name == name) return v.id;
  }
  ADD_FAILURE() << "variable not found: " << name;
  return 0;
}

LuleshConfig small_lulesh(Variant v) {
  return LuleshConfig{.threads = 16,
                      .pages_per_thread = 3,
                      .timesteps = 6,
                      .variant = v};
}

TEST(MiniLulesh, BaselineDiagnosis) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs());
  run_minilulesh(m, small_lulesh(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);

  // All seven variables visible to the tool.
  for (const char* name : {"x", "y", "z", "xd", "yd", "zd"}) {
    SCOPED_TRACE(name);
    var_id(data, name);
  }
  var_id(data, "nodelist");

  // z: master-initialized -> all accesses hit domain 0; M_r >> M_l (§8.1).
  const auto z = analyzer.report(var_id(data, "z"));
  ASSERT_TRUE(z.single_home_domain.has_value());
  EXPECT_EQ(*z.single_home_domain, 0u);
  EXPECT_GT(z.mismatch, 2 * z.match);

  // nodelist is a static variable and behaves the same way.
  const auto nodelist = analyzer.report(var_id(data, "nodelist"));
  EXPECT_EQ(nodelist.kind, core::VariableKind::kStatic);
  EXPECT_GT(nodelist.mismatch, nodelist.match);

  // xd/yd/zd were first-touched by the workers: mostly local.
  const auto xd = analyzer.report(var_id(data, "xd"));
  EXPECT_GT(xd.match, xd.mismatch);

  // Program-level: severe enough to warrant optimization.
  ASSERT_TRUE(analyzer.program().lpi.has_value());
  EXPECT_GT(*analyzer.program().lpi, core::kLpiThreshold);
}

TEST(MiniLulesh, AdvisorRecommendsBlockwiseForZ) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs());
  run_minilulesh(m, small_lulesh(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const Advisor advisor(analyzer);
  const auto rec = advisor.recommend(var_id(data, "z"));
  EXPECT_EQ(rec.guiding.kind, PatternKind::kBlocked);
  EXPECT_EQ(rec.action, core::Action::kBlockwiseFirstTouch);
  ASSERT_FALSE(rec.first_touch_sites.empty());
  // The pinpointed first-touch site is the master's init loop.
  EXPECT_NE(data.path_string(rec.first_touch_sites[0].node)
                .find("InitMeshDecomp"),
            std::string::npos);
}

TEST(MiniLulesh, BlockwiseFixesLocalityAndWinsOnAmd) {
  const LuleshConfig amd{.threads = 48,
                         .pages_per_thread = 2,
                         .timesteps = 6,
                         .variant = Variant::kBaseline};
  simrt::Machine base(numasim::amd_magny_cours());
  LuleshConfig c = amd;
  const LuleshRun baseline = run_minilulesh(base, c);

  simrt::Machine opt(numasim::amd_magny_cours());
  c.variant = Variant::kBlockwise;
  const LuleshRun blockwise = run_minilulesh(opt, c);

  simrt::Machine inter(numasim::amd_magny_cours());
  c.variant = Variant::kInterleave;
  const LuleshRun interleave = run_minilulesh(inter, c);

  // §8.1 AMD ordering: blockwise best, interleave helps less, baseline
  // worst (compute phase).
  EXPECT_LT(blockwise.compute_cycles, baseline.compute_cycles);
  EXPECT_LT(blockwise.compute_cycles, interleave.compute_cycles);
  EXPECT_LT(interleave.compute_cycles, baseline.compute_cycles);
}

TEST(MiniLulesh, BlockwiseMakesZLocal) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs());
  run_minilulesh(m, small_lulesh(Variant::kBlockwise));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const auto z = analyzer.report(var_id(data, "z"));
  EXPECT_GT(z.match, 3 * z.mismatch);  // co-located now
}

AmgConfig small_amg(Variant v) {
  return AmgConfig{.threads = 16,
                   .rows_per_thread = 256,
                   .nnz_per_row = 4,
                   .relax_sweeps = 4,
                   .matvec_sweeps = 1,
                   .variant = v};
}

TEST(MiniAmg, DrillDownFindsRelaxRegionPattern) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs());
  run_miniamg(m, small_amg(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const Advisor advisor(analyzer);

  const VariableId rap = var_id(data, "RAP_diag_data");
  // Whole-program pattern is smeared (Fig. 4)...
  const auto whole = advisor.classify(rap);
  EXPECT_NE(whole.kind, PatternKind::kBlocked);
  // ...the guiding context is a specific region with a blocked pattern
  // (Fig. 5), and it carries the majority of the cost.
  const auto rec = advisor.recommend(rap);
  EXPECT_EQ(rec.guiding.kind, PatternKind::kBlocked);
  EXPECT_EQ(rec.action, core::Action::kBlockwiseFirstTouch);
  EXPECT_NE(rec.guiding_context, core::kWholeProgram);
  EXPECT_GT(rec.guiding_context_share, 0.5);
}

TEST(MiniAmg, FullRangeVectorGetsInterleaveAdvice) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs());
  run_miniamg(m, small_amg(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const Advisor advisor(analyzer);
  const auto rec = advisor.recommend(var_id(data, "x_vec"));
  EXPECT_EQ(rec.action, core::Action::kInterleave);
}

TEST(MiniAmg, OptimizedBeatsInterleaveBeatsBaseline) {
  simrt::Machine base(numasim::amd_magny_cours());
  const AmgRun baseline = run_miniamg(base, small_amg(Variant::kBaseline));
  simrt::Machine opt(numasim::amd_magny_cours());
  const AmgRun optimized = run_miniamg(opt, small_amg(Variant::kBlockwise));
  simrt::Machine inter(numasim::amd_magny_cours());
  const AmgRun interleave =
      run_miniamg(inter, small_amg(Variant::kInterleave));

  // §8.2: solver time -51% (mixed fix) vs -36% (interleave everything).
  EXPECT_LT(optimized.solve_cycles, interleave.solve_cycles);
  EXPECT_LT(interleave.solve_cycles, baseline.solve_cycles);
}

BlackscholesConfig small_bs(Variant v) {
  BlackscholesConfig cfg;  // calibrated defaults
  cfg.threads = 16;
  cfg.variant = v;
  return cfg;
}

TEST(MiniBlackscholes, LpiBelowThresholdDespiteRemoteBuffer) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs());
  run_miniblackscholes(m, small_bs(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);

  // buffer is entirely in the master's domain and heavily mismatched...
  const auto buffer = analyzer.report(var_id(data, "buffer"));
  ASSERT_TRUE(buffer.single_home_domain.has_value());
  EXPECT_GT(buffer.mismatch, buffer.match);
  // ...yet the compute-heavy kernel keeps lpi below the threshold (§8.3).
  ASSERT_TRUE(analyzer.program().lpi.has_value());
  EXPECT_LT(*analyzer.program().lpi, core::kLpiThreshold);
  EXPECT_FALSE(analyzer.program().warrants_optimization);
}

TEST(MiniBlackscholes, BufferShowsStaggeredPattern) {
  simrt::Machine m(numasim::amd_magny_cours());
  Profiler profiler(m, ibs(100));
  run_miniblackscholes(m, small_bs(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  const Advisor advisor(analyzer);
  const auto pattern = advisor.classify(var_id(data, "buffer"));
  EXPECT_EQ(pattern.kind, PatternKind::kStaggeredOverlap);
  EXPECT_GT(pattern.mean_overlap, 0.35);
}

TEST(MiniBlackscholes, AosRegroupEliminatesRemoteButGainsLittle) {
  // The §8.3 claim: eliminating ALL of buffer's NUMA latency barely moves
  // end-to-end time. Isolate the NUMA component by comparing the AoS
  // layout with master init (buffer pages remote) against the AoS layout
  // with parallel first touch (co-located): same cache behaviour, only
  // the page placement differs.
  BlackscholesConfig remote_cfg = small_bs(Variant::kAosRegroup);
  remote_cfg.aos_with_master_init = true;
  simrt::Machine base(numasim::amd_magny_cours());
  const BlackscholesRun remote = run_miniblackscholes(base, remote_cfg);

  simrt::Machine opt(numasim::amd_magny_cours());
  Profiler profiler(opt, ibs());
  const BlackscholesRun fixed =
      run_miniblackscholes(opt, small_bs(Variant::kAosRegroup));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);

  // Remote accesses to buffer are gone...
  const auto buffer = analyzer.report(var_id(data, "buffer"));
  EXPECT_GT(buffer.match, buffer.mismatch);
  // ...but the compute-bound program barely speeds up (§8.3: under 0.1%
  // on real hardware; we allow 3% on the simulator).
  const double gain =
      1.0 - static_cast<double>(fixed.compute_cycles) /
                static_cast<double>(remote.compute_cycles);
  EXPECT_LT(gain, 0.03);
  EXPECT_GT(gain, -0.03);
}

UmtConfig small_umt(Variant v) {
  // STime must exceed one domain's L3 (1 MiB on the POWER7 preset) so
  // remote accesses actually miss (64*32*128*8B = 2 MiB), while angles
  // stays small enough relative to the thread count that the per-thread
  // round-robin plane sets remain visibly staggered.
  return UmtConfig{.threads = 16,
                   .groups = 64,
                   .corners = 32,
                   .angles = 128,
                   .sweeps = 6,
                   .variant = v};
}

TEST(MiniUmt, STimeRemoteWithStaggeredPattern) {
  simrt::Machine m(numasim::power7());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kMrk);
  cfg.event.min_sample_gap = 0;
  Profiler profiler(m, cfg);
  run_miniumt(m, small_umt(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);

  // §8.4 (MRK view): most L3 misses are remote.
  EXPECT_GT(analyzer.program().remote_l3_fraction, 0.5);
  const auto stime = analyzer.report(var_id(data, "STime"));
  EXPECT_GT(stime.mismatch, stime.match);

  const Advisor advisor(analyzer);
  const auto pattern = advisor.classify(stime.id);
  EXPECT_TRUE(pattern.kind == PatternKind::kStaggeredOverlap ||
              pattern.kind == PatternKind::kBlocked)
      << to_string(pattern.kind);
  EXPECT_GE(pattern.monotonic_fraction, 0.8);
}

TEST(MiniUmt, ParallelInitGivesModestSpeedup) {
  simrt::Machine base(numasim::power7());
  const UmtRun baseline = run_miniumt(base, small_umt(Variant::kBaseline));
  simrt::Machine opt(numasim::power7());
  const UmtRun fixed = run_miniumt(opt, small_umt(Variant::kParallelInit));
  EXPECT_LT(fixed.sweep_cycles, baseline.sweep_cycles);
  // Modest (§8.4: ~7% whole-program): the sweep phase improves by well
  // under 2x — the fix only touches STime, one of three hot arrays.
  EXPECT_GT(fixed.sweep_cycles, baseline.sweep_cycles / 2);
}

TEST(Distributions, Figure1Ordering) {
  const auto run = [](Distribution d) {
    simrt::Machine m(numasim::amd_magny_cours());
    return run_distribution(
        m, DistributionConfig{.threads = 24,
                              .pages_per_thread = 2,
                              .sweeps = 3,
                              .distribution = d});
  };
  const DistributionRun central = run(Distribution::kCentralized);
  const DistributionRun inter = run(Distribution::kInterleaved);
  const DistributionRun coloc = run(Distribution::kColocated);

  // Figure 1: centralized suffers locality AND bandwidth problems;
  // interleaving fixes balance but not locality; co-location fixes both.
  EXPECT_GT(central.controller_imbalance, 4.0);
  EXPECT_LT(inter.controller_imbalance, 1.5);
  EXPECT_LT(coloc.mean_access_latency, central.mean_access_latency);
  EXPECT_LT(coloc.mean_access_latency, inter.mean_access_latency);
  EXPECT_LT(coloc.remote_fraction, 0.05);
  EXPECT_GT(central.remote_fraction, 0.5);
  EXPECT_GT(inter.remote_fraction, 0.5);
  EXPECT_LT(coloc.compute_cycles, central.compute_cycles);
}

TEST(Variants, Names) {
  EXPECT_EQ(to_string(Variant::kBaseline), "baseline");
  EXPECT_EQ(to_string(Variant::kBlockwise), "blockwise");
  EXPECT_EQ(to_string(Variant::kInterleave), "interleave");
  EXPECT_EQ(to_string(Variant::kAosRegroup), "AoS-regroup");
  EXPECT_EQ(to_string(Variant::kParallelInit), "parallel-init");
  EXPECT_EQ(to_string(Distribution::kCentralized), "centralized");
}

}  // namespace
}  // namespace numaprof::apps
