#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

struct ViewerFixture : ::testing::Test {
  ViewerFixture() {
    Machine m(numasim::test_machine(4, 2));
    ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
    cfg.event.period = 15;
    Profiler profiler(m, cfg);

    simos::VAddr data = 0;
    const std::uint64_t elems = 8 * 6 * (simos::kPageBytes / 8);
    const auto main_f = m.frames().intern("main");
    parallel_region(m, 1, "init", {main_f},
                    [&](SimThread& t, std::uint32_t) -> Task {
                      data = t.malloc(elems * 8, "grid");
                      for (std::uint64_t i = 0; i < elems; i += 8) {
                        t.store(data + i * 8);
                      }
                      co_return;
                    });
    parallel_region(m, 8, "work._omp", {main_f},
                    [&](SimThread& t, std::uint32_t index) -> Task {
                      const std::uint64_t b = elems * index / 8;
                      const std::uint64_t e = elems * (index + 1) / 8;
                      for (std::uint64_t i = b; i < e; i += 8) {
                        t.load(data + i * 8);
                        co_await t.tick();
                      }
                    });
    data_ = profiler.snapshot();
    analyzer_ = std::make_unique<Analyzer>(data_);
    viewer_ = std::make_unique<Viewer>(*analyzer_);
    for (const Variable& v : data_.variables) {
      if (v.name == "grid") grid_ = v.id;
    }
  }

  SessionData data_;
  std::unique_ptr<Analyzer> analyzer_;
  std::unique_ptr<Viewer> viewer_;
  VariableId grid_ = 0;
};

TEST_F(ViewerFixture, ProgramSummaryMentionsKeyMetrics) {
  const std::string s = viewer_->program_summary();
  EXPECT_NE(s.find("mechanism: IBS"), std::string::npos);
  EXPECT_NE(s.find("M_l"), std::string::npos);
  EXPECT_NE(s.find("M_r"), std::string::npos);
  EXPECT_NE(s.find("lpi_NUMA"), std::string::npos);
  EXPECT_NE(s.find("WARRANTS NUMA optimization"), std::string::npos);
}

TEST_F(ViewerFixture, DataCentricTableListsGridFirst) {
  const auto table = viewer_->data_centric_table(10);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("grid"), std::string::npos);
  EXPECT_NE(text.find("M_l"), std::string::npos);
  EXPECT_NE(text.find("N0"), std::string::npos);  // per-domain columns
  EXPECT_NE(text.find("domain 0"), std::string::npos);  // single home
}

TEST_F(ViewerFixture, CodeCentricTableShowsCallPaths) {
  const auto table = viewer_->code_centric_table(10);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("[ACCESS]"), std::string::npos);
  EXPECT_NE(text.find("work._omp"), std::string::npos);
  EXPECT_NE(text.find("main"), std::string::npos);
}

TEST_F(ViewerFixture, AddressCentricTableHasPerThreadRows) {
  const auto table = viewer_->address_centric_table(grid_);
  EXPECT_GE(table.row_count(), 8u);
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("thread,lo,hi"), std::string::npos);
}

TEST_F(ViewerFixture, AddressCentricPlotDrawsBars) {
  const std::string plot = viewer_->address_centric_plot(grid_);
  EXPECT_NE(plot.find("grid"), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find("normalized"), std::string::npos);
  // One row per sampled thread (at least the 8 workers).
  std::size_t rows = 0;
  for (const char c : plot) rows += c == '\n';
  EXPECT_GE(rows, 8u);
}

TEST_F(ViewerFixture, PlotRespectsContextFilter) {
  const auto contexts = data_.address_centric.contexts_of(
      data_.variables[grid_]);
  ASSERT_FALSE(contexts.empty());
  const std::string plot =
      viewer_->address_centric_plot(grid_, contexts[0].first);
  EXPECT_NE(plot.find(data_.frame_name(contexts[0].first)),
            std::string::npos);
}

TEST_F(ViewerFixture, FirstTouchTableShowsInitSite) {
  const auto table = viewer_->first_touch_table(grid_);
  ASSERT_EQ(table.row_count(), 1u);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("[FIRST-TOUCH]"), std::string::npos);
  EXPECT_NE(text.find("init"), std::string::npos);
}

TEST_F(ViewerFixture, CctTreeShowsStructureWithInclusiveValues) {
  const std::string tree = viewer_->cct_tree(kMemorySamples);
  EXPECT_NE(tree.find("[ACCESS]"), std::string::npos);
  EXPECT_NE(tree.find("[ALLOCATION]"), std::string::npos);
  EXPECT_NE(tree.find("work._omp"), std::string::npos);
  EXPECT_NE(tree.find("VAR grid"), std::string::npos);
  EXPECT_NE(tree.find("(100.0%)"), std::string::npos);  // the root line
  // Indentation grows along paths.
  EXPECT_NE(tree.find("\n  "), std::string::npos);
  EXPECT_NE(tree.find("\n    "), std::string::npos);
}

TEST_F(ViewerFixture, CctTreePrunesByShareAndDepth) {
  const std::string shallow = viewer_->cct_tree(kMemorySamples, kRootNode,
                                                /*max_depth=*/1);
  // Depth 1: dummies visible, no frames below them.
  EXPECT_NE(shallow.find("[ACCESS]"), std::string::npos);
  EXPECT_EQ(shallow.find("work._omp"), std::string::npos);
  const std::string strict = viewer_->cct_tree(kMemorySamples, kRootNode, 10,
                                               /*min_share=*/0.99);
  // 99% share floor: only the root survives.
  std::size_t lines = 0;
  for (const char c : strict) lines += c == '\n';
  EXPECT_LE(lines, 3u);
}

TEST_F(ViewerFixture, DomainBalanceTableSumsToHundredPercent) {
  const auto table = viewer_->domain_balance_table();
  EXPECT_EQ(table.row_count(), 4u);  // one per domain
  EXPECT_NE(table.to_text().find("100.0%"), std::string::npos);  // domain 0
}

}  // namespace
}  // namespace numaprof::core
