#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

ProfilerConfig dense_ibs() {
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 20;
  cfg.address_bins = 5;
  return cfg;
}

/// Master init (domain 0) + block-partitioned workers: the canonical
/// first-touch pathology.
simos::VAddr run_pathology(Machine& m, std::uint32_t threads,
                           std::uint32_t pages_per_thread) {
  simos::VAddr data = 0;
  const std::uint64_t elems =
      threads * pages_per_thread * (simos::kPageBytes / 8);
  const auto main_f = m.frames().intern("main");
  parallel_region(m, 1, "init", {main_f},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(elems * 8, "data");
                    for (std::uint64_t i = 0; i < elems; i += 8) {
                      t.store(data + i * 8);
                    }
                    co_return;
                  });
  parallel_region(m, threads, "work._omp", {main_f},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const std::uint64_t begin = elems * index / threads;
                    const std::uint64_t end = elems * (index + 1) / threads;
                    for (int sweep = 0; sweep < 4; ++sweep) {
                      for (std::uint64_t i = begin; i < end; i += 8) {
                        t.load(data + i * 8);
                        co_await t.tick();
                      }
                      co_await t.yield();
                    }
                  });
  return data;
}

TEST(Profiler, TotalsAreConsistent) {
  Machine m(numasim::test_machine(4, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 8, 4);
  profiler.stop();

  std::uint64_t match = 0, mismatch = 0, memory = 0, samples = 0;
  std::uint64_t per_domain = 0;
  for (std::size_t tid = 0; tid < profiler.thread_count(); ++tid) {
    const ThreadTotals& t = profiler.totals(tid);
    match += t.match;
    mismatch += t.mismatch;
    memory += t.memory_samples;
    samples += t.samples;
    for (const auto v : t.per_domain) per_domain += v;
  }
  EXPECT_GT(memory, 50u);
  EXPECT_EQ(match + mismatch, memory);   // every memory sample classified
  EXPECT_EQ(per_domain, memory);         // ... and attributed to a domain
  EXPECT_GE(samples, memory);
  EXPECT_GT(mismatch, match);            // the pathology: mostly remote
}

TEST(Profiler, InstructionCountersFilledAtStop) {
  Machine m(numasim::test_machine(2, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 2, 2);
  profiler.stop();
  std::uint64_t instructions = 0;
  for (std::size_t tid = 0; tid < profiler.thread_count(); ++tid) {
    instructions += profiler.totals(tid).instructions;
  }
  EXPECT_EQ(instructions, m.total_instructions());
}

TEST(Profiler, HeapVariableDiscoveredWithAllocationPath) {
  Machine m(numasim::test_machine(2, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 2, 2);
  profiler.stop();
  const auto id = profiler.variables().find_by_name("data");
  ASSERT_TRUE(id.has_value());
  const Variable& var = profiler.variables().variable(*id);
  EXPECT_EQ(var.kind, VariableKind::kHeap);
  // Allocation path: [ALLOCATION] > main > init > VAR.
  const auto path = profiler.cct().path_to(var.variable_node);
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(profiler.cct().node(path[0]).kind, NodeKind::kAllocation);
}

TEST(Profiler, FirstTouchRecordsCoverAllPages) {
  Machine m(numasim::test_machine(2, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 2, 3);  // 2*3 = 6 pages
  profiler.stop();
  EXPECT_EQ(profiler.first_touches().size(), 6u);
  for (const FirstTouchRecord& r : profiler.first_touches()) {
    EXPECT_EQ(r.tid, 0u);     // master touched everything
    EXPECT_EQ(r.domain, 0u);
  }
}

TEST(Profiler, FirstTouchDisabledMeansNoRecords) {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg = dense_ibs();
  cfg.track_first_touch = false;
  Profiler profiler(m, cfg);
  run_pathology(m, 2, 2);
  profiler.stop();
  EXPECT_TRUE(profiler.first_touches().empty());
}

TEST(Profiler, ParallelFirstTouchRecordsEveryToucher) {
  Machine m(numasim::test_machine(4, 2));
  Profiler profiler(m, dense_ibs());
  simos::VAddr data = 0;
  const std::uint64_t pages = 8;
  parallel_region(m, 1, "alloc", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(pages * simos::kPageBytes, "shared");
                    co_return;
                  });
  parallel_region(m, 8, "init._omp", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    t.store(data + index * simos::kPageBytes);
                    co_return;
                  });
  profiler.stop();
  EXPECT_EQ(profiler.first_touches().size(), pages);
  std::set<simrt::ThreadId> touchers;
  for (const auto& r : profiler.first_touches()) touchers.insert(r.tid);
  EXPECT_EQ(touchers.size(), 8u);  // §6: concurrent first touches merge
}

// The §4.1 bias: a remote-homed page resident in the private cache keeps
// counting toward M_r (move_pages classification), but contributes no
// remote latency (data-source classification) — which is exactly why the
// latency metrics are needed to avoid over-reporting.
TEST(Profiler, CachedRemoteVariableHasMismatchButNoRemoteLatency) {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg = dense_ibs();
  cfg.event.period = 1;
  cfg.track_first_touch = false;
  Profiler profiler(m, cfg);

  simos::VAddr addr = 0;
  m.spawn(
      [&](SimThread& t) -> Task {
        addr = t.malloc(64, "hotword");
        t.store(addr);
        co_return;
      },
      /*core=*/0);
  m.run();
  m.spawn(
      [&](SimThread& t) -> Task {
        for (int i = 0; i < 100; ++i) t.load(addr);
        co_return;
      },
      /*core=*/2);  // domain 1
  m.run();
  profiler.stop();

  const auto id = profiler.variables().find_by_name("hotword");
  ASSERT_TRUE(id.has_value());
  const Variable& var = profiler.variables().variable(*id);
  const auto& cct = profiler.cct();
  double mismatch = 0, remote_latency = 0, total_latency = 0;
  for (std::size_t tid = 0; tid < profiler.thread_count(); ++tid) {
    // (store access has no store; use totals)
    const ThreadTotals& t = profiler.totals(tid);
    mismatch += static_cast<double>(t.mismatch);
    remote_latency += t.remote_latency;
    total_latency += t.total_latency;
  }
  (void)cct;
  (void)var;
  EXPECT_GT(mismatch, 90.0);  // M_r high: page lives in domain 0
  // But only the first load actually crossed domains: the remote latency
  // is one access's worth, not a hundred.
  EXPECT_LT(remote_latency, 300.0);
  EXPECT_GT(total_latency, remote_latency);
}

TEST(Profiler, SnapshotMatchesLiveState) {
  Machine m(numasim::test_machine(2, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 4, 2);
  const SessionData data = profiler.snapshot();
  EXPECT_FALSE(profiler.running());  // snapshot stops
  EXPECT_EQ(data.domain_count, 2u);
  EXPECT_EQ(data.mechanism, pmu::Mechanism::kIbs);
  EXPECT_EQ(data.thread_count(), profiler.thread_count());
  EXPECT_EQ(data.first_touches.size(), profiler.first_touches().size());
  EXPECT_EQ(data.cct.size(), profiler.cct().size());
  EXPECT_EQ(data.variables.size(), profiler.variables().size());
  EXPECT_GT(data.total_instructions(), 0u);
  EXPECT_EQ(data.frames.size(), m.frames().size());
}

TEST(Profiler, StopDetachesFromMachine) {
  Machine m(numasim::test_machine(2, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 2, 2);
  profiler.stop();
  const std::uint64_t samples_after_stop = profiler.sampler().samples_emitted();
  run_pathology(m, 2, 2);  // unmonitored
  EXPECT_EQ(profiler.sampler().samples_emitted(), samples_after_stop);
}

TEST(Profiler, BinNodesCreatedForLargeVariables) {
  Machine m(numasim::test_machine(2, 2));
  Profiler profiler(m, dense_ibs());
  run_pathology(m, 2, 8);  // 16 pages > 5-page threshold
  profiler.stop();
  const auto id = profiler.variables().find_by_name("data");
  ASSERT_TRUE(id.has_value());
  const Variable& var = profiler.variables().variable(*id);
  std::size_t bins = 0;
  for (const NodeId child : profiler.cct().children(var.variable_node)) {
    bins += profiler.cct().node(child).kind == NodeKind::kBin;
  }
  EXPECT_GT(bins, 1u);   // synthetic bin variables (§5.2)
  EXPECT_LE(bins, 5u);
}

}  // namespace
}  // namespace numaprof::core
