// The numa_top monitor (src/monitor/): frame primitives, key decoding,
// the pure MonitorModel's screen/sort/drill semantics, scripted-frames
// error reporting, and the golden lock — two case-study traces recorded
// in-test, driven through the shared keystroke script at two terminal
// sizes, byte-identical across runs and against the checked-in frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/miniamg.hpp"
#include "apps/minilulesh.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/telemetry_stream.hpp"
#include "monitor/frame.hpp"
#include "monitor/live.hpp"
#include "monitor/model.hpp"
#include "monitor/script.hpp"
#include "monitor/term.hpp"
#include "numasim/topology.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace numaprof::monitor {
namespace {

using support::HotCounter;
using support::TelemetryCounter;
using support::TelemetryHub;
using support::TelemetrySnapshot;
using support::ThreadTelemetry;

TEST(MonitorFrame, FitLineClipsAndTrims) {
  EXPECT_EQ(fit_line("hello", 10), "hello");
  EXPECT_EQ(fit_line("hello", 3), "hel");
  EXPECT_EQ(fit_line("pad   ", 10), "pad");
  EXPECT_EQ(fit_line("cut at c  ", 8), "cut at c");
  EXPECT_EQ(fit_line("", 4), "");
}

TEST(MonitorFrame, RenderFrameIsExactlyHeightLines) {
  const std::string frame = render_frame({"a", "bb"}, 4, 4);
  EXPECT_EQ(frame, "a\nbb\n\n\n");
  // Extra lines are dropped, long lines clipped.
  EXPECT_EQ(render_frame({"abcdef", "x", "y"}, 3, 2), "abc\nx\n");
  EXPECT_EQ(rule(4), "----");
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_left("wide", 2), "wide");
}

TEST(MonitorKeys, NamesRoundTripAndDecode) {
  for (const char* name :
       {"up", "down", "enter", "back", "quit", "t", "d", "p", "v", "s",
        "r"}) {
    Key key = Key::kNone;
    ASSERT_TRUE(key_from_name(name, key)) << name;
    EXPECT_EQ(to_string(key), name);
  }
  Key key = Key::kNone;
  EXPECT_FALSE(key_from_name("bogus", key));

  EXPECT_EQ(decode_key_bytes("\x1b[A"), Key::kUp);
  EXPECT_EQ(decode_key_bytes("\x1b[B"), Key::kDown);
  EXPECT_EQ(decode_key_bytes("k"), Key::kUp);
  EXPECT_EQ(decode_key_bytes("j"), Key::kDown);
  EXPECT_EQ(decode_key_bytes("q"), Key::kQuit);
  EXPECT_EQ(decode_key_bytes("\r"), Key::kEnter);
  EXPECT_EQ(decode_key_bytes("\x7f"), Key::kBack);
  EXPECT_EQ(decode_key_bytes("\x1b"), Key::kNone);
  EXPECT_EQ(decode_key_bytes("z"), Key::kNone);
  EXPECT_EQ(decode_key_bytes(""), Key::kNone);
}

/// A two-thread, two-domain snapshot with enough signal to exercise
/// every screen.
TelemetrySnapshot model_snapshot() {
  TelemetryHub hub;
  hub.set_domain_count(2);
  support::TelemetryRing& r1 = hub.ring(1);
  r1.add(TelemetryCounter::kSamples, 100);
  r1.add(TelemetryCounter::kMemorySamples, 90);
  r1.add(TelemetryCounter::kMatchSamples, 60);
  r1.add(TelemetryCounter::kMismatchSamples, 30);
  r1.add(TelemetryCounter::kRemoteLatencyCycles, 3000);
  r1.add(TelemetryCounter::kInstructions, 9000);
  r1.add_domain_sample(0, false);
  r1.add_domain_sample(1, true);
  r1.add_hot(support::HotTableKind::kPages, 0x40, 1, true);
  r1.add_hot(support::HotTableKind::kVariables, 2, 1, true, "mesh[]");
  r1.add_hot(support::HotTableKind::kPaths, 5, 0, true, "main>step>calc");
  support::TelemetryRing& r2 = hub.ring(2);
  r2.add(TelemetryCounter::kSamples, 40);
  r2.add(TelemetryCounter::kMemorySamples, 35);
  r2.add(TelemetryCounter::kMatchSamples, 30);
  r2.add(TelemetryCounter::kMismatchSamples, 5);
  r2.add_hot(support::HotTableKind::kPaths, 9, 0, false, "main>init");
  return hub.snapshot(10000);
}

TEST(MonitorModel, RenderBeforeFirstSnapshotIsAWaitScreen) {
  MonitorModel model;
  const std::string frame = model.render(40, 5);
  EXPECT_NE(frame.find("waiting for telemetry"), std::string::npos) << frame;
  // Exactly 5 lines regardless of content.
  EXPECT_EQ(std::count(frame.begin(), frame.end(), '\n'), 5);
}

TEST(MonitorModel, ThreadsScreenSortsByRmaAndDrillsDown) {
  MonitorModel model;
  model.set_mechanism(pmu::Mechanism::kIbs);
  model.feed(model_snapshot());

  const std::string home = model.render(100, 24);
  EXPECT_NE(home.find("[threads]"), std::string::npos) << home;
  EXPECT_NE(home.find("RMAv"), std::string::npos) << home;  // sort marker
  // Default sort: RMA descending, so tid 1 (RMA 30) outranks tid 2.
  EXPECT_LT(home.find("> "), home.find("30"));

  // Enter on the top row drills into tid 1's call paths.
  model.apply_key(Key::kEnter);
  EXPECT_EQ(model.state().screen, Screen::kPaths);
  EXPECT_EQ(model.state().drill_tid, 1u);
  const std::string paths = model.render(100, 24);
  EXPECT_NE(paths.find("[call paths tid 1]"), std::string::npos) << paths;
  EXPECT_NE(paths.find("main>step>calc"), std::string::npos) << paths;
  EXPECT_EQ(paths.find("main>init"), std::string::npos) << paths;

  model.apply_key(Key::kBack);
  EXPECT_EQ(model.state().screen, Screen::kThreads);

  // Reversing the sort puts tid 2 on top; enter then drills into tid 2.
  model.apply_key(Key::kReverse);
  model.apply_key(Key::kEnter);
  EXPECT_EQ(model.state().drill_tid, 2u);
  EXPECT_NE(model.render(100, 24).find("main>init"), std::string::npos);
}

TEST(MonitorModel, SelectionClampsAndSortCyclesPerScreen) {
  MonitorModel model;
  model.feed(model_snapshot());

  model.apply_key(Key::kUp);  // already at the top: clamps
  EXPECT_EQ(model.state().selected, 0u);
  model.apply_key(Key::kDown);
  EXPECT_EQ(model.state().selected, 1u);
  model.apply_key(Key::kDown);  // two rows only: clamps at the last
  EXPECT_EQ(model.state().selected, 1u);

  const std::size_t threads_idx =
      static_cast<std::size_t>(Screen::kThreads);
  const std::size_t before = model.state().sort_col[threads_idx];
  model.apply_key(Key::kSortNext);
  EXPECT_EQ(model.state().sort_col[threads_idx], before + 1);

  // Each screen keeps its own sort state; switching screens resets the
  // selection but not the sort.
  model.apply_key(Key::kDomains);
  EXPECT_EQ(model.state().screen, Screen::kDomains);
  EXPECT_EQ(model.state().selected, 0u);
  EXPECT_EQ(model.state().sort_col[threads_idx], before + 1);
  EXPECT_FALSE(
      model.state().sort_desc[static_cast<std::size_t>(Screen::kDomains)]);

  model.apply_key(Key::kQuit);
  EXPECT_TRUE(model.quit_requested());
}

TEST(MonitorModel, HotScreensShowDomainsPagesAndVariables) {
  MonitorModel model;
  model.feed(model_snapshot());

  model.apply_key(Key::kDomains);
  const std::string domains = model.render(100, 24);
  EXPECT_NE(domains.find("TOPPAGE"), std::string::npos) << domains;
  EXPECT_NE(domains.find("0x40"), std::string::npos) << domains;

  model.apply_key(Key::kPages);
  const std::string pages = model.render(100, 24);
  EXPECT_NE(pages.find("[hot pages]"), std::string::npos) << pages;
  EXPECT_NE(pages.find("0x40"), std::string::npos) << pages;

  model.apply_key(Key::kVars);
  const std::string vars = model.render(100, 24);
  EXPECT_NE(vars.find("mesh[]"), std::string::npos) << vars;
}

TEST(MonitorModel, SummaryRatesGuardZeroElapsedIntervals) {
  TelemetryHub hub;
  hub.ring(0).add(TelemetryCounter::kSamples, 100);
  const TelemetrySnapshot first = hub.snapshot(1000);
  hub.ring(0).add(TelemetryCounter::kSamples, 50);
  const TelemetrySnapshot moved = hub.snapshot(3000);

  MonitorModel model;
  model.feed(first);
  model.feed(moved);
  const std::string rated = model.render(120, 10);
  EXPECT_NE(rated.find("samples 150 (+50 25.0/kc)"), std::string::npos)
      << rated;

  // Same-timestamp snapshot (a flush right after an emit): delta without
  // a rate, never inf/nan.
  hub.ring(0).add(TelemetryCounter::kSamples, 7);
  TelemetrySnapshot frozen = hub.snapshot(3000);
  model.feed(frozen);
  const std::string guarded = model.render(120, 10);
  EXPECT_NE(guarded.find("samples 157 (+7)"), std::string::npos) << guarded;
  EXPECT_EQ(guarded.find("inf"), std::string::npos) << guarded;
  EXPECT_EQ(guarded.find("nan"), std::string::npos) << guarded;
}

TEST(MonitorScript, ErrorsNameTheScriptLine) {
  const auto expect_script_error = [](const std::string& text,
                                      std::size_t line,
                                      const std::string& needle) {
    MonitorModel model;
    const std::vector<TelemetrySnapshot> snapshots(1);
    std::istringstream script(text);
    ScriptOptions options;
    options.file = "drive.script";
    try {
      run_script(model, snapshots, script, options);
      FAIL() << "expected a script error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kMonitor);
      EXPECT_EQ(e.line(), line) << e.what();
      EXPECT_EQ(e.file(), "drive.script");
      const std::string want = "line " + std::to_string(line);
      EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_script_error("frame\nwarp 9\n", 2, "unknown command");
  expect_script_error("# comment\n\nkey sideways\n", 3, "unknown key");
  expect_script_error("key\n", 1, "requires a name");
  expect_script_error("feed 0\n", 1, "positive integer");
  expect_script_error("feed 2\n", 1, "past end of trace");
  expect_script_error("resize 80\n", 1, "two positive integers");
  expect_script_error("frame now\n", 1, "trailing token");
}

TEST(MonitorScript, FeedKeyResizeFrameDriveTheModel) {
  MonitorModel model;
  std::vector<TelemetrySnapshot> snapshots;
  snapshots.push_back(model_snapshot());
  snapshots.push_back(model_snapshot());
  std::istringstream script(
      "feed          # one snapshot\n"
      "frame\n"
      "resize 20 4\n"
      "key d\n"
      "feed 1\n"
      "frame\n");
  ScriptOptions options;
  options.width = 30;
  options.height = 5;
  const ScriptResult result =
      run_script(model, snapshots, script, options);
  EXPECT_EQ(result.frame_count, 2u);
  EXPECT_EQ(model.snapshots_fed(), 2u);
  EXPECT_EQ(model.state().screen, Screen::kDomains);
  EXPECT_NE(result.frames.find("== frame 1 (30x5) =="), std::string::npos)
      << result.frames;
  EXPECT_NE(result.frames.find("== frame 2 (20x4) =="), std::string::npos)
      << result.frames;
}

// ---------------------------------------------------------------------------
// The golden lock: record two case-study traces in-test (deterministic
// simulator, deterministic streamer), drive them through the shared
// keystroke script at two terminal sizes, and compare byte-for-byte
// against the checked-in frames. Regenerate deliberately with
// NUMAPROF_REGEN_GOLDEN=1 and review the diff.

core::TelemetryTrace record_trace(const std::string& app) {
  simrt::Machine machine(numasim::test_machine(2, 4));
  TelemetryHub hub;
  machine.set_telemetry(&hub);

  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 50;
  cfg.event.min_sample_gap = 10'000;
  cfg.telemetry = &hub;
  core::Profiler profiler(machine, cfg);

  std::ostringstream jsonl;
  core::TelemetryStreamer::Config stream_cfg;
  stream_cfg.interval_instructions = 5000;
  stream_cfg.jsonl = &jsonl;
  stream_cfg.mechanism = profiler.sampler().mechanism();
  core::TelemetryStreamer streamer(hub, stream_cfg);
  machine.add_observer(streamer);

  if (app == "lulesh") {
    apps::run_minilulesh(machine, {.threads = 8,
                                   .pages_per_thread = 2,
                                   .timesteps = 4,
                                   .variant = apps::Variant::kBaseline});
  } else {
    apps::run_miniamg(machine, {.threads = 8,
                                .rows_per_thread = 128,
                                .nnz_per_row = 4,
                                .relax_sweeps = 2,
                                .matvec_sweeps = 1,
                                .variant = apps::Variant::kBaseline});
  }

  streamer.flush(machine.elapsed());
  machine.remove_observer(streamer);

  std::istringstream is(jsonl.str());
  return core::load_telemetry_trace(is);
}

std::string drive_frames(const core::TelemetryTrace& trace,
                         std::size_t width, std::size_t height) {
  const std::string script_path =
      NUMAPROF_SOURCE_DIR "/tests/golden/monitor/drive.script";
  std::ifstream script(script_path);
  EXPECT_TRUE(script) << "missing " << script_path;
  MonitorModel model;
  if (trace.has_mechanism) model.set_mechanism(trace.mechanism);
  ScriptOptions options;
  options.width = width;
  options.height = height;
  options.file = script_path;
  return run_script(model, trace.snapshots, script, options).frames;
}

class MonitorGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(MonitorGolden, ScriptedFramesMatchCheckedInBytes) {
  const std::string app = GetParam();
  const core::TelemetryTrace trace = record_trace(app);
  ASSERT_GE(trace.snapshots.size(), 3u)
      << "the drive script feeds 3 snapshots";

  for (const auto& [width, height] :
       {std::pair<std::size_t, std::size_t>{80, 24}, {120, 40}}) {
    const std::string frames = drive_frames(trace, width, height);
    // Determinism first: a second run over the same trace must produce
    // the same bytes before they are worth locking.
    EXPECT_EQ(frames, drive_frames(trace, width, height));

    const std::string golden_path =
        std::string(NUMAPROF_SOURCE_DIR "/tests/golden/monitor/") + app +
        "_" + std::to_string(width) + "x" + std::to_string(height) + ".txt";
    if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(golden_path, std::ios::binary);
      out << frames;
      continue;
    }
    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << golden_path
                    << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(frames, want.str()) << golden_path;
  }
  if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
    GTEST_SKIP() << "regenerated monitor goldens for " << app;
  }
}

INSTANTIATE_TEST_SUITE_P(CaseStudies, MonitorGolden,
                         ::testing::Values("lulesh", "amg"));

// The end-to-end record_app --top contract in miniature: attaching the
// pull-only LiveTop observer must not perturb the recorded profile.
TEST(MonitorLive, AttachedMonitorDoesNotPerturbTheProfile) {
  const auto run_once = [](bool with_top, std::string* frames_out) {
    simrt::Machine machine(numasim::test_machine(2, 2));
    TelemetryHub hub;
    machine.set_telemetry(&hub);
    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
    cfg.event.period = 50;
    cfg.telemetry = &hub;
    core::Profiler profiler(machine, cfg);

    std::ostringstream frames;
    LiveTop::Config top_cfg;
    top_cfg.interval_instructions = 5000;
    top_cfg.width = 60;
    top_cfg.height = 12;
    top_cfg.out = &frames;
    LiveTop top(hub, top_cfg);
    if (with_top) machine.add_observer(top);

    apps::run_minilulesh(machine, {.threads = 4,
                                   .pages_per_thread = 2,
                                   .timesteps = 2,
                                   .variant = apps::Variant::kBaseline});
    if (with_top) {
      top.flush(machine.elapsed());
      top.flush(machine.elapsed());  // flush-once: second is a no-op
      machine.remove_observer(top);
      EXPECT_GT(top.frames_painted(), 0u);
      EXPECT_EQ(top.frames_painted(), top.model().snapshots_fed());
    }
    if (frames_out != nullptr) *frames_out = frames.str();

    std::ostringstream profile;
    core::ProfileWriter(ProfileFormat::kText)
        .write(profiler.snapshot(), profile);
    return profile.str();
  };

  std::string frames;
  const std::string with = run_once(true, &frames);
  const std::string without = run_once(false, nullptr);
  EXPECT_EQ(with, without)
      << "LiveTop must be read-only with respect to the profile";
  EXPECT_NE(frames.find("== frame 1 (60x12) =="), std::string::npos);
  EXPECT_NE(frames.find("numa_top - IBS"), std::string::npos) << frames;
}

}  // namespace
}  // namespace numaprof::monitor
