// The columnar binary profile format (src/core/format/, docs/format.md):
//
//  - the support::Arena bump allocator the zero-copy loader stages
//    decoded columns into;
//  - magic-byte autodetection (ProfileReader::detect / format::looks_binary);
//  - LOSSLESS ROUND-TRIP: text -> binary -> text is byte-identical for a
//    synthetic session exercising every section, all four paper case
//    studies, and all four matrix workload kernels;
//  - byte-DETERMINISM: equal sessions serialize to equal binary bytes,
//    and a binary round-trip reproduces the binary bytes;
//  - the MUTATION FUZZER: seeded bit flips, truncations, and section-table
//    corruption must produce typed ProfileErrors (strict) or a consistent
//    partial session (lenient) — never a crash, hang, or huge allocation
//    (the ASan/UBSan CI job runs this binary);
//  - lenient recovery semantics: damaged sections are dropped WHOLE with a
//    diagnostic, truncated files are clipped to their valid prefix, and
//    the quorum-checked merge skips unreadable binary shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common.hpp"
#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/analyzer.hpp"
#include "core/format/format.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "matrix_support.hpp"
#include "numasim/topology.hpp"
#include "support/arena.hpp"
#include "support/rng.hpp"

namespace numaprof {
namespace {

namespace fs = std::filesystem;
namespace format = core::format;

// --- Arena ---------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndValueInitialized) {
  support::Arena arena(256);
  for (const std::size_t align : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    void* p = arena.allocate(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
  const std::span<std::uint64_t> column = arena.make_span<std::uint64_t>(50);
  ASSERT_EQ(column.size(), 50u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(column.data()) %
                alignof(std::uint64_t),
            0u);
  for (const std::uint64_t v : column) EXPECT_EQ(v, 0u);
}

TEST(Arena, GrowsPastItsChunkSizeAndTracksUsage) {
  support::Arena arena(64);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // An allocation larger than the chunk still succeeds (dedicated chunk).
  const std::span<std::uint8_t> big = arena.make_span<std::uint8_t>(1000);
  ASSERT_EQ(big.size(), 1000u);
  big[999] = 42;  // writable end to end
  const std::size_t after_big = arena.used_bytes();
  EXPECT_GE(after_big, 1000u);
  // Many small allocations force chunk growth; earlier blocks stay valid.
  std::vector<std::span<std::uint32_t>> spans;
  for (int i = 0; i < 100; ++i) {
    spans.push_back(arena.make_span<std::uint32_t>(8));
    spans.back()[0] = static_cast<std::uint32_t>(i);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)][0],
              static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(big[999], 42);
}

TEST(Arena, MoveTransfersOwnership) {
  support::Arena a(128);
  const std::span<std::uint64_t> kept = a.make_span<std::uint64_t>(4);
  kept[0] = 7;
  support::Arena b = std::move(a);
  EXPECT_EQ(kept[0], 7u);  // memory lives on in the moved-to arena
  const std::span<std::uint64_t> more = b.make_span<std::uint64_t>(4);
  EXPECT_EQ(more[0], 0u);
}

// --- Sessions under test -------------------------------------------------

/// A small profiled run plus hand-planted fields so EVERY section of the
/// format carries data: trace on, first touches on, degradations and
/// fault context planted, pebs_ll_events set.
core::SessionData full_session() {
  simrt::Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 25;
  cfg.record_trace = true;
  core::Profiler profiler(m, cfg);
  parallel_region(m, 2, "w", {},
                  [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                    const simos::VAddr v = t.malloc(4 * 4096, "x");
                    for (int k = 0; k < 300; ++k) {
                      t.store(v + ((i + k) % 2048) * 8);
                    }
                    co_return;
                  });
  core::SessionData data = profiler.snapshot();
  data.pebs_ll_events = 123;
  data.fault_context = "seed=9;bitflip=0";
  data.degradations.push_back(core::DegradationEvent{
      .kind = core::DegradationKind::kMechanismFallback,
      .mechanism = pmu::Mechanism::kPebs,
      .value = 777,
      .detail = "planted fallback detail, with % and spaces"});
  return data;
}

std::string text_bytes(const core::SessionData& data) {
  return core::ProfileWriter(ProfileFormat::kText).bytes(data);
}

std::string binary_bytes(const core::SessionData& data) {
  return core::ProfileWriter(ProfileFormat::kBinary).bytes(data);
}

/// text -> binary -> text must reproduce the text bytes exactly, and
/// binary -> load -> binary must reproduce the binary bytes exactly.
void expect_lossless(const core::SessionData& data, const std::string& tag) {
  SCOPED_TRACE(tag);
  const std::string text1 = text_bytes(data);
  const std::string binary1 = binary_bytes(data);
  ASSERT_TRUE(format::looks_binary(binary1));
  ASSERT_FALSE(format::looks_binary(text1));

  const core::LoadResult loaded = core::ProfileReader().read(binary1);
  ASSERT_TRUE(loaded.complete) << "binary load incomplete";
  ASSERT_TRUE(loaded.diagnostics.empty());
  EXPECT_EQ(text_bytes(loaded.data), text1)
      << tag << ": text -> binary -> text is not byte-identical";
  EXPECT_EQ(binary_bytes(loaded.data), binary1)
      << tag << ": binary round-trip changed the binary bytes";
}

// --- Autodetection -------------------------------------------------------

TEST(BinaryFormat, DetectRequiresTheFullMagic) {
  const std::string binary = binary_bytes(full_session());
  EXPECT_EQ(core::ProfileReader::detect(binary), ProfileFormat::kBinary);
  EXPECT_EQ(core::ProfileReader::detect("numaprof-profile 3"),
            ProfileFormat::kText);
  EXPECT_EQ(core::ProfileReader::detect(""), ProfileFormat::kText);
  // A prefix shorter than the magic is not binary (the text loader owns
  // the error message for stubs).
  EXPECT_EQ(core::ProfileReader::detect(binary.substr(0, 7)),
            ProfileFormat::kText);
}

TEST(BinaryFormat, EveryReadEntryPointAutodetects) {
  const core::SessionData data = full_session();
  const std::string reference = text_bytes(data);
  for (const ProfileFormat format :
       {ProfileFormat::kText, ProfileFormat::kBinary}) {
    SCOPED_TRACE(format == ProfileFormat::kBinary ? "binary" : "text");
    const core::ProfileWriter writer(format);
    // read(string_view)
    EXPECT_EQ(text_bytes(core::ProfileReader().read(writer.bytes(data)).data),
              reference);
    // read(istream)
    std::stringstream stream;
    writer.write(data, stream);
    EXPECT_EQ(text_bytes(core::ProfileReader().read(stream).data), reference);
    // read_file (binary path memory-maps)
    const fs::path path = fs::path(::testing::TempDir()) /
                          (format == ProfileFormat::kBinary
                               ? "autodetect.npb"
                               : "autodetect.prof");
    writer.write_file(data, path.string());
    EXPECT_EQ(text_bytes(core::ProfileReader().read_file(path.string()).data),
              reference);
  }
}

// --- Lossless round-trips ------------------------------------------------

TEST(BinaryFormat, RoundTripIsLosslessForAFullSyntheticSession) {
  const core::SessionData data = full_session();
  // Every section must actually have content for this lock to mean much.
  ASSERT_FALSE(data.frames.empty());
  ASSERT_GT(data.cct.size(), 1u);
  ASSERT_FALSE(data.variables.empty());
  ASSERT_FALSE(data.totals.empty());
  ASSERT_FALSE(data.stores.empty());
  ASSERT_FALSE(data.first_touches.empty());
  ASSERT_FALSE(data.trace.empty());
  ASSERT_FALSE(data.degradations.empty());
  expect_lossless(data, "full_session");
}

TEST(BinaryFormat, RoundTripIsLosslessForAnEmptySession) {
  const core::SessionData empty;
  expect_lossless(empty, "empty");
}

TEST(BinaryFormat, RoundTripIsLosslessForAllCaseStudies) {
  core::ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 200;
  struct Case {
    std::string name;
    std::function<void(simrt::Machine&)> run;
  };
  const std::vector<Case> cases = {
      {"minilulesh",
       [](simrt::Machine& m) {
         apps::run_minilulesh(m, {.threads = 16,
                                  .pages_per_thread = 12,
                                  .timesteps = 6,
                                  .variant = apps::Variant::kBaseline});
       }},
      {"miniamg",
       [](simrt::Machine& m) {
         apps::run_miniamg(m, {.threads = 16,
                               .rows_per_thread = 1024,
                               .relax_sweeps = 5,
                               .variant = apps::Variant::kBaseline});
       }},
      {"miniblackscholes",
       [](simrt::Machine& m) {
         apps::run_miniblackscholes(m, {.threads = 16,
                                        .options_per_thread = 480,
                                        .iterations = 96,
                                        .variant = apps::Variant::kBaseline});
       }},
      {"miniumt",
       [](simrt::Machine& m) {
         apps::run_miniumt(m, {.threads = 16,
                               .angles = 32,
                               .sweeps = 4,
                               .variant = apps::Variant::kBaseline});
       }},
  };
  for (const Case& app : cases) {
    simrt::Machine m(numasim::amd_magny_cours());
    core::Profiler p(m, pc);
    app.run(m);
    expect_lossless(p.snapshot(), app.name);
  }
}

TEST(BinaryFormat, RoundTripIsLosslessForAllMatrixKernels) {
  for (const char* scenario : {"graph", "join", "kvcache", "orderbook"}) {
    const matrix::CellResult cell =
        matrix::run_cell(apps::scenario_by_name(scenario), "magny-cours",
                         simos::PolicySpec::first_touch(), /*fixed=*/false);
    expect_lossless(cell.data, scenario);
  }
}

TEST(BinaryFormat, WriterIsByteDeterministic) {
  const core::SessionData data = full_session();
  EXPECT_EQ(binary_bytes(data), binary_bytes(data));
  // Appending to a non-empty buffer lays the profile out relative to its
  // own first byte (offsets inside the profile are unchanged).
  std::string prefixed = "spool-header";
  format::write_binary_profile(data, prefixed);
  EXPECT_EQ(prefixed.substr(std::strlen("spool-header")),
            binary_bytes(data));
}

// --- Strict errors -------------------------------------------------------

TEST(BinaryFormat, StrictErrorsNameSectionFieldAndByteOffset) {
  const std::string good = binary_bytes(full_session());

  // Header magic damage: not binary anymore, the text loader rejects it.
  {
    std::string bad = good;
    bad[0] = 'x';
    EXPECT_THROW(core::ProfileReader().read(bad).data, core::ProfileError);
  }
  // Version bump: typed error naming the version field.
  {
    std::string bad = good;
    bad[8] = 99;  // version is the u32 at offset 8; CRC must match too
    // Recompute nothing: the header CRC now mismatches, which is the
    // point — header damage is fatal in BOTH modes.
    try {
      core::ProfileReader().read(bad);
      FAIL() << "damaged header must throw";
    } catch (const core::ProfileError& e) {
      EXPECT_NE(e.field().find("header"), std::string::npos) << e.field();
    }
    EXPECT_THROW(
        core::ProfileReader(core::LoadOptions{.lenient = true}).read(bad),
        core::ProfileError);
  }
  // Payload damage: strict names "<section>/<field>" and the byte offset.
  {
    std::string bad = good;
    bad[bad.size() - 3] ^= 0x40;  // inside the last section's payload
    try {
      core::ProfileReader().read(bad);
      FAIL() << "corrupt payload must throw in strict mode";
    } catch (const core::ProfileError& e) {
      EXPECT_NE(e.field().find('/'), std::string::npos)
          << "field should be section-qualified: " << e.field();
    }
  }
}

// --- Lenient recovery ----------------------------------------------------

TEST(BinaryFormat, LenientLoadDropsTheDamagedSectionWhole) {
  const core::SessionData data = full_session();
  const std::string good = binary_bytes(data);
  // Find the frames section's payload via a distinctive frame name byte:
  // flip a byte in the middle of the file until exactly the frames
  // section is reported damaged; simplest deterministic choice — damage a
  // byte inside the first third (frames come early).
  std::string bad = good;
  bad[format::kHeaderBytes + format::kSectionCount * format::kTableEntryBytes +
      64] ^= 0x01;

  const core::LoadResult result =
      core::ProfileReader(core::LoadOptions{.lenient = true}).read(bad);
  EXPECT_FALSE(result.complete);
  ASSERT_FALSE(result.diagnostics.empty());
  // Whichever section took the hit, the rest of the session survives and
  // the partial data upholds the invariants the analyzer needs.
  const core::SessionData& d = result.data;
  EXPECT_EQ(d.stores.size(), d.totals.size());
  for (const core::ThreadTotals& t : d.totals) {
    EXPECT_EQ(t.per_domain.size(), d.domain_count);
  }
  const core::Analyzer analyzer(d);
  (void)analyzer.program();
}

TEST(BinaryFormat, LenientLoadClipsATruncatedFileToItsValidPrefix) {
  const core::SessionData data = full_session();
  const std::string good = binary_bytes(data);
  // Cut the last 5 bytes: the final section's payload is now out of
  // bounds and must be dropped; earlier sections still load.
  const std::string bad = good.substr(0, good.size() - 5);

  EXPECT_THROW(core::ProfileReader().read(bad).data, core::ProfileError);

  const core::LoadResult result =
      core::ProfileReader(core::LoadOptions{.lenient = true}).read(bad);
  EXPECT_FALSE(result.complete);
  ASSERT_FALSE(result.diagnostics.empty());
  // Early sections survived the clip.
  EXPECT_EQ(result.data.domain_count, data.domain_count);
  EXPECT_EQ(result.data.machine_name, data.machine_name);
  EXPECT_EQ(result.data.cct.size(), data.cct.size());
}

TEST(BinaryFormat, CorruptSectionTableIsFatalInBothModes) {
  const std::string good = binary_bytes(full_session());
  std::string bad = good;
  bad[format::kHeaderBytes + 3] ^= 0xFF;  // first table entry's id bytes
  EXPECT_THROW(core::ProfileReader().read(bad).data, core::ProfileError);
  EXPECT_THROW(
      core::ProfileReader(core::LoadOptions{.lenient = true}).read(bad),
      core::ProfileError);
}

TEST(BinaryFormat, HugeClaimedCountsAreRejectedBeforeAllocation) {
  // A tiny max_count makes the full session's CCT "too big": the loader
  // must reject the count instead of reserving for it.
  const std::string good = binary_bytes(full_session());
  core::LoadOptions options;
  options.max_count = 4;
  try {
    core::ProfileReader(options).read(good);
    FAIL() << "count above max_count must be rejected";
  } catch (const core::ProfileError& e) {
    EXPECT_NE(e.field().find('/'), std::string::npos) << e.field();
  }
  options.lenient = true;
  const core::LoadResult result = core::ProfileReader(options).read(good);
  EXPECT_FALSE(result.complete);
}

// --- The mutation fuzzer -------------------------------------------------

/// Seeded mutations over the binary bytes: bit flips, truncations, chunk
/// splices, and targeted header/section-table corruption. Strict loads
/// must either succeed or throw a typed ProfileError; lenient loads must
/// additionally return consistent partial data whenever they return at
/// all. Runs under the ASan/UBSan CI job, so any out-of-bounds read in
/// the zero-copy column paths is fatal here.
TEST(BinaryFormatFuzz, MutatedInputNeverCrashes) {
  const std::string good = binary_bytes(full_session());
  ASSERT_GT(good.size(), format::kHeaderBytes +
                             format::kSectionCount * format::kTableEntryBytes);

  support::Rng rng(0xB16F02);
  const std::size_t table_end =
      format::kHeaderBytes + format::kSectionCount * format::kTableEntryBytes;
  int strict_threw = 0, strict_loaded = 0, lenient_returned = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad = good;
    switch (trial % 4) {
      case 0:  // truncate anywhere, including inside the header
        bad.resize(rng.next_below(bad.size()));
        break;
      case 1: {  // flip one bit anywhere
        const std::size_t pos = rng.next_below(bad.size());
        bad[pos] = static_cast<char>(
            static_cast<unsigned char>(bad[pos]) ^
            (1u << rng.next_below(8)));
        break;
      }
      case 2: {  // corrupt the header / section table specifically
        const std::size_t pos = rng.next_below(table_end);
        bad[pos] = static_cast<char>(rng.next_below(256));
        break;
      }
      default: {  // splice a chunk out of the middle
        const std::size_t pos = rng.next_below(bad.size());
        const std::size_t len = rng.next_below(bad.size() - pos);
        bad.erase(pos, len);
        break;
      }
    }

    try {
      (void)core::ProfileReader().read(std::string_view(bad));
      ++strict_loaded;
    } catch (const core::ProfileError& e) {
      EXPECT_FALSE(e.field().empty()) << "trial " << trial;
      ++strict_threw;
    }

    try {
      const core::LoadResult result =
          core::ProfileReader(core::LoadOptions{.lenient = true})
              .read(std::string_view(bad));
      ++lenient_returned;
      const core::SessionData& d = result.data;
      ASSERT_EQ(d.stores.size(), d.totals.size()) << "trial " << trial;
      for (const core::ThreadTotals& t : d.totals) {
        ASSERT_EQ(t.per_domain.size(), d.domain_count) << "trial " << trial;
      }
      for (const core::Variable& v : d.variables) {
        ASSERT_LT(v.variable_node, d.cct.size()) << "trial " << trial;
      }
      for (const core::FirstTouchRecord& r : d.first_touches) {
        ASSERT_LT(r.node, d.cct.size()) << "trial " << trial;
      }
      const core::Analyzer analyzer(d);
      (void)analyzer.program();
    } catch (const core::ProfileError&) {
      // Header/table damage is fatal even leniently — fine.
    }
  }
  EXPECT_EQ(strict_threw + strict_loaded, 400);
  EXPECT_GT(strict_threw, 100);     // CRCs catch most mutations
  EXPECT_GT(lenient_returned, 50);  // payload damage is recoverable
}

/// Flipping any single byte of the section TABLE must never load
/// silently: the table CRC covers all of it.
TEST(BinaryFormatFuzz, EverySectionTableByteIsCovered) {
  const std::string good = binary_bytes(full_session());
  for (std::size_t pos = format::kHeaderBytes;
       pos <
       format::kHeaderBytes + format::kSectionCount * format::kTableEntryBytes;
       ++pos) {
    std::string bad = good;
    bad[pos] = static_cast<char>(static_cast<unsigned char>(bad[pos]) ^ 0x10);
    EXPECT_THROW(core::ProfileReader().read(bad).data, core::ProfileError)
        << "table byte " << pos << " not covered by a checksum";
  }
}

// --- Quorum-checked merge over binary shards -----------------------------

TEST(BinaryFormat, MergeSkipsDamagedBinaryShardsAndChecksQuorum) {
  const core::SessionData data = full_session();
  const fs::path dir = fs::path(::testing::TempDir()) / "binary_shards";
  fs::remove_all(dir);
  const std::vector<std::string> paths =
      core::ProfileWriter(ProfileFormat::kBinary)
          .write_thread_shards(data, dir.string());
  ASSERT_GE(paths.size(), 2u);

  // Reference: merge the intact binary shards.
  PipelineOptions options;
  options.lenient = true;
  const core::MergeResult intact = core::merge_profile_files(paths, options);
  EXPECT_EQ(intact.summary.files_merged, paths.size());

  // Destroy one shard's header: it is skipped, the rest merge.
  {
    std::ofstream os(paths.back(), std::ios::binary | std::ios::trunc);
    os << "not a profile of either encoding";
  }
  const core::MergeResult merged = core::merge_profile_files(paths, options);
  EXPECT_EQ(merged.summary.files_merged, paths.size() - 1);
  ASSERT_EQ(merged.summary.skipped.size(), 1u);
  EXPECT_EQ(merged.summary.skipped.front().path, paths.back());

  // Quorum: with every shard but one destroyed, a 0.5 quorum fails even
  // leniently.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    std::ofstream os(paths[i], std::ios::binary | std::ios::trunc);
    os << "xx";
  }
  options.quorum = 0.5;
  if (paths.size() > 2) {
    EXPECT_THROW(core::merge_profile_files(paths, options),
                 core::ProfileError);
  }
}

}  // namespace
}  // namespace numaprof
