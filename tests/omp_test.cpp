#include <gtest/gtest.h>

#include <set>

#include "apps/common.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"
#include "simrt/omp.hpp"

namespace numaprof::simrt {
namespace {

using numasim::test_machine;

TEST(ParallelFor, EveryIterationRunsExactlyOnce) {
  for (const Schedule schedule :
       {Schedule::kStatic, Schedule::kCyclic, Schedule::kDynamic}) {
    Machine m(test_machine(2, 4));
    std::vector<int> hits(1000, 0);
    parallel_for(m, 8, "loop", {}, hits.size(), schedule, 16,
                 [&](SimThread& t, std::uint64_t i) {
                   ++hits[i];
                   t.exec(3);
                 });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << to_string(schedule) << " iteration " << i;
    }
  }
}

TEST(ParallelFor, StaticAssignsContiguousBlocks) {
  Machine m(test_machine(2, 4));
  std::vector<ThreadId> owner(800);
  parallel_for(m, 8, "loop", {}, owner.size(), Schedule::kStatic, 8,
               [&](SimThread& t, std::uint64_t i) {
                 owner[i] = t.tid();
                 t.exec(1);
               });
  // Each thread's iterations form one contiguous run.
  for (std::size_t i = 1; i < owner.size(); ++i) {
    if (owner[i] != owner[i - 1]) {
      for (std::size_t j = i + 1; j < owner.size(); ++j) {
        ASSERT_NE(owner[j], owner[i - 1]) << "non-contiguous static block";
      }
    }
  }
}

TEST(ParallelFor, CyclicStridesByThreadCount) {
  Machine m(test_machine(2, 4));
  std::vector<ThreadId> owner(160);
  parallel_for(m, 8, "loop", {}, owner.size(), Schedule::kCyclic, 4,
               [&](SimThread& t, std::uint64_t i) {
                 owner[i] = t.tid();
                 t.exec(1);
               });
  for (std::size_t i = 8; i < owner.size(); ++i) {
    EXPECT_EQ(owner[i], owner[i - 8]);
  }
}

TEST(ParallelFor, DynamicBalancesSkewedWork) {
  // Iterations 0..99 are 50x more expensive than the rest. Static leaves
  // thread 0 holding all of them; dynamic spreads the slow chunks.
  const auto elapsed_with = [](Schedule schedule) {
    Machine m(test_machine(2, 4));
    parallel_for(m, 8, "loop", {}, 800, schedule, 4,
                 [&](SimThread& t, std::uint64_t i) {
                   t.exec(i < 100 ? 500 : 10);
                 });
    return m.elapsed();
  };
  const auto static_time = elapsed_with(Schedule::kStatic);
  const auto dynamic_time = elapsed_with(Schedule::kDynamic);
  EXPECT_LT(dynamic_time, static_time / 2);
}

TEST(ParallelFor, DynamicGrabsAreDisjointUnderInterleaving) {
  Machine m(test_machine(2, 4), MachineConfig{.quantum = 20});
  std::vector<int> hits(500, 0);
  std::set<ThreadId> participants;
  parallel_for(m, 8, "loop", {}, hits.size(), Schedule::kDynamic, 7,
               [&](SimThread& t, std::uint64_t i) {
                 ++hits[i];
                 participants.insert(t.tid());
                 t.exec(5);
               });
  for (const int h : hits) ASSERT_EQ(h, 1);
  EXPECT_GT(participants.size(), 4u);  // work actually spread
}

// The §2 observation, measured: under static scheduling the advisor sees
// blocked per-thread ranges; under dynamic scheduling the binding between
// threads and data dissolves and the pattern widens (no longer blocked),
// steering the advice away from block-wise placement.
TEST(ParallelFor, ScheduleChangesTheAdvisorPattern) {
  const auto pattern_under = [](Schedule schedule) {
    Machine m(numasim::amd_magny_cours());
    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
    cfg.event.period = 97;
    core::Profiler profiler(m, cfg);

    constexpr std::uint64_t kElems = 48 * 4 * apps::kElemsPerPage;
    simos::VAddr data = 0;
    parallel_region(m, 1, "init", {},
                    [&](SimThread& t, std::uint32_t) -> Task {
                      data = t.malloc(kElems * 8, "grid");
                      apps::store_lines(t, data, 0, kElems);
                      co_return;
                    });
    for (int sweep = 0; sweep < 3; ++sweep) {
      parallel_for(m, 48, "compute._omp", {}, kElems / 8, schedule, 16,
                   [&](SimThread& t, std::uint64_t i) {
                     t.load(apps::elem_addr(data, i * 8));
                     t.exec(2);
                   });
    }
    const core::SessionData session = profiler.snapshot();
    const core::Analyzer analyzer(session);
    const core::Advisor advisor(analyzer);
    for (const core::Variable& v : session.variables) {
      if (v.name == "grid") return advisor.classify(v.id).kind;
    }
    return core::PatternKind::kUnsampled;
  };

  EXPECT_EQ(pattern_under(Schedule::kStatic), core::PatternKind::kBlocked);
  const auto dynamic_kind = pattern_under(Schedule::kDynamic);
  EXPECT_NE(dynamic_kind, core::PatternKind::kBlocked);
  EXPECT_NE(dynamic_kind, core::PatternKind::kUnsampled);
}

}  // namespace
}  // namespace numaprof::simrt
