// End-to-end pipeline tests: the full paper workflow — run monitored,
// analyze, get advice, apply the fix, verify the fix — plus cross-mechanism
// agreement checks.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/minilulesh.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"

namespace numaprof {
namespace {

using apps::LuleshConfig;
using apps::Variant;
using core::Analyzer;
using core::Profiler;
using core::ProfilerConfig;
using core::SessionData;

LuleshConfig cfg(Variant v) {
  // pages_per_thread sized so the four master-initialized arrays (4 x 16 x
  // 12 pages = 3 MiB) exceed one POWER7-preset L3 (1 MiB): MRK needs real
  // L3 misses to sample.
  return LuleshConfig{.threads = 16,
                      .pages_per_thread = 12,
                      .timesteps = 6,
                      .variant = v};
}

core::VariableId find_var(const SessionData& data, std::string_view name) {
  for (const core::Variable& v : data.variables) {
    if (v.name == name) return v.id;
  }
  ADD_FAILURE() << "no variable " << name;
  return 0;
}

TEST(Pipeline, DiagnoseAdviseFixVerify) {
  // 1. Measure the baseline (hpcrun).
  simrt::Machine machine(numasim::amd_magny_cours());
  ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 200;
  Profiler profiler(machine, pc);
  const apps::LuleshRun baseline = run_minilulesh(machine, cfg(Variant::kBaseline));

  // 2. Write + re-read the profile (hpcrun -> hpcprof handoff).
  SessionData live = profiler.snapshot();
  std::stringstream file;
  core::ProfileWriter().write(live, file);
  const SessionData data = core::ProfileReader().read(file).data;

  // 3. Analyze: the program warrants optimization; z is a top offender.
  const Analyzer analyzer(data);
  ASSERT_TRUE(analyzer.program().lpi.has_value());
  EXPECT_TRUE(analyzer.program().warrants_optimization);
  const auto z = find_var(data, "z");

  // 4. Advise: blocked pattern -> block-wise first touch at the init site.
  const core::Advisor advisor(analyzer);
  const auto rec = advisor.recommend(z);
  EXPECT_EQ(rec.action, core::Action::kBlockwiseFirstTouch);
  ASSERT_FALSE(rec.first_touch_sites.empty());

  // 5. Apply the fix (the blockwise variant IS the recommended edit) and
  //    verify the speedup and the restored locality.
  simrt::Machine fixed_machine(numasim::amd_magny_cours());
  Profiler fixed_profiler(fixed_machine, pc);
  const apps::LuleshRun fixed =
      run_minilulesh(fixed_machine, cfg(Variant::kBlockwise));
  EXPECT_LT(fixed.compute_cycles, baseline.compute_cycles);

  const SessionData fixed_data = fixed_profiler.snapshot();
  const Analyzer fixed_analyzer(fixed_data);
  const auto z_after = fixed_analyzer.report(find_var(fixed_data, "z"));
  EXPECT_GT(z_after.match, z_after.mismatch);
  ASSERT_TRUE(fixed_analyzer.program().lpi.has_value());
  EXPECT_LT(*fixed_analyzer.program().lpi, *analyzer.program().lpi);
}

TEST(Pipeline, ViewerRendersLoadedProfile) {
  simrt::Machine machine(numasim::amd_magny_cours());
  ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 300;
  Profiler profiler(machine, pc);
  run_minilulesh(machine, cfg(Variant::kBaseline));
  SessionData live = profiler.snapshot();
  std::stringstream file;
  core::ProfileWriter().write(live, file);
  const SessionData data = core::ProfileReader().read(file).data;

  const Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);
  EXPECT_NE(viewer.program_summary().find("lpi_NUMA"), std::string::npos);
  EXPECT_GT(viewer.data_centric_table(10).row_count(), 3u);
  const auto z = find_var(data, "z");
  EXPECT_NE(viewer.address_centric_plot(z).find('#'), std::string::npos);
  EXPECT_GE(viewer.first_touch_table(z).row_count(), 1u);
}

TEST(Pipeline, MechanismsAgreeOnMismatchRatio) {
  // M_l/M_r derive from move_pages + thread domain (§4.1), so every
  // mechanism — hardware or software — should report a similar M_r share
  // on the same workload.
  const auto mismatch_fraction = [](pmu::Mechanism mech) {
    simrt::Machine machine(numasim::amd_magny_cours());
    ProfilerConfig pc;
    pc.event = pmu::EventConfig::mini(mech);
    pc.event.period = mech == pmu::Mechanism::kSoftIbs ? 100 : 200;
    pc.event.min_sample_gap = 0;
    pc.event.instrumentation_work = 0;
    pc.event.skid_correction_work = 0;
    Profiler profiler(machine, pc);
    run_minilulesh(machine, cfg(Variant::kBaseline));
    const SessionData data = profiler.snapshot();
    const Analyzer analyzer(data);
    const auto& p = analyzer.program();
    return static_cast<double>(p.mismatch) /
           static_cast<double>(p.match + p.mismatch);
  };

  const double ibs = mismatch_fraction(pmu::Mechanism::kIbs);
  const double soft = mismatch_fraction(pmu::Mechanism::kSoftIbs);
  const double pebs = mismatch_fraction(pmu::Mechanism::kPebs);
  EXPECT_NEAR(ibs, soft, 0.15);
  EXPECT_NEAR(ibs, pebs, 0.15);
  EXPECT_GT(ibs, 0.3);  // the pathology is visible through all of them
}

TEST(Pipeline, MrkSeesOnlyL3MissesButSameDiagnosis) {
  simrt::Machine machine(numasim::power7());
  ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kMrk);
  pc.event.min_sample_gap = 0;
  Profiler profiler(machine, pc);
  run_minilulesh(machine, cfg(Variant::kBaseline));
  const SessionData data = profiler.snapshot();
  const Analyzer analyzer(data);
  // Every MRK sample is an L3 miss.
  EXPECT_EQ(analyzer.program().l3_miss_samples,
            analyzer.program().memory_samples);
  // And the z diagnosis still holds without latency support.
  const auto z = analyzer.report(find_var(data, "z"));
  EXPECT_GT(z.mismatch, z.match);
  EXPECT_FALSE(z.lpi.has_value());
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto run_once = []() {
    simrt::Machine machine(numasim::amd_magny_cours());
    ProfilerConfig pc;
    pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
    pc.event.period = 250;
    Profiler profiler(machine, pc);
    run_minilulesh(machine, cfg(Variant::kBaseline));
    SessionData data = profiler.snapshot();
    std::stringstream out;
    core::ProfileWriter().write(data, out);
    return out.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace numaprof
