// Per-thread measurement shards and the analyzer-side multi-file merge:
// shard round-trip equivalence, lenient skipping of damaged files (with
// the skip surfaced in reports), strict typed errors, and the quorum.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"
#include "support/faultinject.hpp"

namespace numaprof::core {
namespace {

namespace fs = std::filesystem;

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

SessionData shard_session() {
  Machine m(numasim::test_machine(2, 2));
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  Profiler profiler(m, cfg);
  simos::VAddr data = 0;
  parallel_region(m, 1, "init", {},
                  [&](SimThread& t, std::uint32_t) -> Task {
                    data = t.malloc(8 * simos::kPageBytes, "shared");
                    for (std::uint64_t i = 0; i < 8 * simos::kPageBytes;
                         i += 64) {
                      t.store(data + i);
                    }
                    co_return;
                  });
  parallel_region(m, 4, "work", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    for (std::uint64_t i = 0; i < 1024; ++i) {
                      t.load(data + ((index * 1024 + i) * 64) %
                                        (8 * simos::kPageBytes));
                      co_await t.tick();
                    }
                  });
  return profiler.snapshot();
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Damages `path` with the fault injector's stream faults.
void damage_file(const std::string& path, const std::string& fault_spec) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  support::FaultPlan plan = support::FaultPlan::parse(fault_spec);
  std::ofstream out(path, std::ios::trunc);
  out << plan.mutate_stream(buffer.str());
}

TEST(ThreadShards, MergeReassemblesTheSession) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_roundtrip");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  ASSERT_EQ(paths.size(), original.totals.size());

  const MergeResult merged = merge_profile_files(paths);
  EXPECT_EQ(merged.summary.files_total, paths.size());
  EXPECT_EQ(merged.summary.files_merged, paths.size());
  EXPECT_TRUE(merged.summary.skipped.empty());

  // The merged session analyzes identically to the live one.
  const Analyzer live(original);
  const Analyzer rebuilt(merged.data);
  EXPECT_EQ(live.program().samples, rebuilt.program().samples);
  EXPECT_EQ(live.program().match, rebuilt.program().match);
  EXPECT_EQ(live.program().mismatch, rebuilt.program().mismatch);
  EXPECT_DOUBLE_EQ(live.program().remote_latency,
                   rebuilt.program().remote_latency);
  EXPECT_EQ(live.program().instructions, rebuilt.program().instructions);
  EXPECT_EQ(merged.data.address_centric.entry_count(),
            original.address_centric.entry_count());
  EXPECT_EQ(merged.data.first_touches.size(), original.first_touches.size());
  EXPECT_EQ(merged.data.trace.size(), original.trace.size());
  ASSERT_EQ(live.variables().size(), rebuilt.variables().size());
  for (std::size_t i = 0; i < live.variables().size(); ++i) {
    EXPECT_EQ(live.variables()[i].name, rebuilt.variables()[i].name);
    EXPECT_EQ(live.variables()[i].samples, rebuilt.variables()[i].samples);
    EXPECT_EQ(live.variables()[i].mismatch, rebuilt.variables()[i].mismatch);
  }
}

TEST(ThreadShards, LenientMergeSkipsOneDamagedShard) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_lenient");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  ASSERT_GE(paths.size(), 3u);
  // Truncate one per-thread file mid-stream via the fault injector.
  damage_file(paths[1], "truncate=100");

  PipelineOptions options;
  options.lenient = true;
  const MergeResult merged = merge_profile_files(paths, options);
  EXPECT_EQ(merged.summary.files_total, paths.size());
  // The damaged shard still loads partially in lenient mode (its header
  // survives truncation at byte 100 or it is skipped outright); either
  // way the merge completes and accounts for every file.
  EXPECT_EQ(merged.summary.files_merged + merged.summary.skipped.size(),
            paths.size());
  EXPECT_GE(merged.summary.files_merged, paths.size() - 1);

  // The run completes end-to-end: the merged data analyzes and reports.
  const Analyzer analyzer(merged.data);
  const Viewer viewer(analyzer);
  EXPECT_FALSE(viewer.program_summary().empty());
}

TEST(ThreadShards, LenientMergeSkipsUnreadableShardAndReportsIt) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_skip");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  ASSERT_GE(paths.size(), 3u);
  // Destroy the header so even the lenient loader must give up on it.
  damage_file(paths[1], "truncate=4");

  PipelineOptions options;
  options.lenient = true;
  const MergeResult merged = merge_profile_files(paths, options);
  EXPECT_EQ(merged.summary.files_merged, paths.size() - 1);
  ASSERT_EQ(merged.summary.skipped.size(), 1u);
  EXPECT_EQ(merged.summary.skipped.front().path, paths[1]);

  // The skip is carried into the merged data as a degradation event...
  const bool flagged = std::any_of(
      merged.data.degradations.begin(), merged.data.degradations.end(),
      [&](const DegradationEvent& e) {
        return e.kind == DegradationKind::kProfileFileSkipped &&
               e.detail.find(paths[1]) != std::string::npos;
      });
  EXPECT_TRUE(flagged);

  // ...and surfaces in the viewer and the written report.
  const Analyzer analyzer(merged.data);
  const Viewer viewer(analyzer);
  const std::string health = viewer.collection_health();
  EXPECT_NE(health.find("profile-file-skipped"), std::string::npos);
  EXPECT_NE(health.find("skipped during the merge"), std::string::npos);

  const std::string report_dir = fresh_dir("numaprof_shards_skip_report");
  const std::string main_file = write_report(analyzer, report_dir);
  std::ifstream report(main_file);
  std::stringstream contents;
  contents << report.rdbuf();
  EXPECT_NE(contents.str().find("collection health"), std::string::npos);
  EXPECT_NE(contents.str().find("profile-file-skipped"), std::string::npos);
}

TEST(ThreadShards, StrictMergeThrowsTypedErrorNamingTheField) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_strict");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  damage_file(paths[0], "truncate=100");

  try {
    merge_profile_files(paths);
    FAIL() << "strict merge must throw on a damaged shard";
  } catch (const ProfileError& e) {
    EXPECT_FALSE(e.field().empty());
    EXPECT_NE(std::string(e.what()).find(paths[0]), std::string::npos);
  }
}

TEST(ThreadShards, QuorumFailureThrowsEvenInLenientMode) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_quorum");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  ASSERT_GE(paths.size(), 3u);
  // Destroy all but the first file's headers.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    damage_file(paths[i], "truncate=4");
  }
  PipelineOptions options;
  options.lenient = true;
  options.quorum = 0.5;
  EXPECT_THROW(merge_profile_files(paths, options), ProfileError);
}

TEST(ThreadShards, EmptyInputListThrows) {
  EXPECT_THROW(merge_profile_files({}), ProfileError);
}

TEST(ThreadShards, MissingFileIsSkippedLeniently) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_missing");
  std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  paths.push_back(dir + "/does_not_exist.prof");

  PipelineOptions options;
  options.lenient = true;
  const MergeResult merged = merge_profile_files(paths, options);
  EXPECT_EQ(merged.summary.files_merged, paths.size() - 1);
  EXPECT_EQ(merged.summary.skipped.size(), 1u);
}

TEST(ThreadShards, IncompatibleProfileIsSkippedWithReason) {
  const SessionData original = shard_session();
  const std::string dir = fresh_dir("numaprof_shards_incompat");
  std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);

  // A structurally different profile (different machine) cannot be summed.
  SessionData other = original;
  other.domain_count += 2;
  for (auto& t : other.totals) t.per_domain.resize(other.domain_count, 0);
  other.stores.assign(other.totals.size(), MetricStore(other.domain_count));
  const std::string alien = dir + "/alien.prof";
  ProfileWriter().write_file(other, alien);
  paths.push_back(alien);

  PipelineOptions options;
  options.lenient = true;
  const MergeResult merged = merge_profile_files(paths, options);
  ASSERT_EQ(merged.summary.skipped.size(), 1u);
  EXPECT_EQ(merged.summary.skipped.front().path, alien);
  EXPECT_NE(merged.summary.skipped.front().reason.find("domain count"),
            std::string::npos);
}

}  // namespace
}  // namespace numaprof::core
