#include <gtest/gtest.h>

#include "core/addrcentric.hpp"

namespace numaprof::core {
namespace {

Variable make_var(VariableId id, std::uint64_t pages,
                  simos::VAddr start = 0x100000) {
  Variable v;
  v.id = id;
  v.name = "v" + std::to_string(id);
  v.start = start;
  v.size = pages * simos::kPageBytes;
  v.page_count = pages;
  return v;
}

TEST(AddressCentric, SmallVariablesGetOneBin) {
  AddressCentric ac(5);
  EXPECT_EQ(ac.bins_for(make_var(0, 5)), 1u);   // at threshold: single bin
  EXPECT_EQ(ac.bins_for(make_var(0, 6)), 5u);   // above: default bins (§5.2)
}

TEST(AddressCentric, CustomBinCount) {
  AddressCentric ac(20);
  EXPECT_EQ(ac.bins_for(make_var(0, 100)), 20u);
}

TEST(AddressCentric, BinOfPartitionsExtentEvenly) {
  AddressCentric ac(5);
  const Variable v = make_var(0, 10);
  const std::uint64_t extent = v.extent_bytes();
  EXPECT_EQ(ac.bin_of(v, v.start), 0u);
  EXPECT_EQ(ac.bin_of(v, v.start + extent / 5), 1u);
  EXPECT_EQ(ac.bin_of(v, v.start + extent - 1), 4u);
  // Out-of-range addresses clamp.
  EXPECT_EQ(ac.bin_of(v, v.start + extent + 100), 4u);
  EXPECT_EQ(ac.bin_of(v, 0), 0u);
}

TEST(AddressCentric, RecordUpdatesWholeProgramAndFrames) {
  AddressCentric ac(5);
  const Variable v = make_var(1, 10);
  const simrt::FrameId stack[] = {7, 8};
  ac.record(stack, v, /*tid=*/2, v.start + 100, 50.0);

  const auto whole = ac.thread_ranges(v, kWholeProgram);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].tid, 2u);
  EXPECT_EQ(whole[0].count, 1u);
  // Every frame on the path has its own bounds (§5.2).
  EXPECT_EQ(ac.thread_ranges(v, 7).size(), 1u);
  EXPECT_EQ(ac.thread_ranges(v, 8).size(), 1u);
  EXPECT_TRUE(ac.thread_ranges(v, 99).empty());
}

TEST(AddressCentric, RangesNormalizedToExtent) {
  AddressCentric ac(5);
  const Variable v = make_var(1, 10);
  const std::uint64_t extent = v.extent_bytes();
  ac.record({}, v, 0, v.start, 1.0);
  ac.record({}, v, 0, v.start + extent / 2, 1.0);
  const auto ranges = ac.thread_ranges(v, kWholeProgram);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_NEAR(ranges[0].lo, 0.0, 0.01);
  EXPECT_NEAR(ranges[0].hi, 0.5, 0.01);
}

TEST(AddressCentric, HotBinsSuppressColdOutliers) {
  // 90 accesses in the first fifth, 1 stray at the end: the reported range
  // must cover only the hot bin — the refinement §5.2 motivates.
  AddressCentric ac(5);
  const Variable v = make_var(1, 10);
  const std::uint64_t extent = v.extent_bytes();
  for (int i = 0; i < 90; ++i) {
    ac.record({}, v, 0, v.start + i % (extent / 5), 1.0);
  }
  ac.record({}, v, 0, v.start + extent - 8, 1.0);
  const auto ranges = ac.thread_ranges(v, kWholeProgram, 0.9);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_LT(ranges[0].hi, 0.3);
  EXPECT_EQ(ranges[0].count, 91u);  // count still reflects everything
  // With hot_fraction = 1.0 the stray access re-enters the range.
  const auto full = ac.thread_ranges(v, kWholeProgram, 1.0);
  EXPECT_GT(full[0].hi, 0.9);
}

TEST(AddressCentric, PerThreadRangesAreIndependent) {
  AddressCentric ac(5);
  const Variable v = make_var(1, 20);
  const std::uint64_t extent = v.extent_bytes();
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    const auto lo = extent * tid / 4;
    const auto hi = extent * (tid + 1) / 4;
    for (std::uint64_t off = lo; off < hi; off += simos::kPageBytes) {
      ac.record({}, v, tid, v.start + off, 1.0);
    }
  }
  const auto ranges = ac.thread_ranges(v, kWholeProgram);
  ASSERT_EQ(ranges.size(), 4u);
  for (std::uint32_t tid = 0; tid < 4; ++tid) {
    EXPECT_EQ(ranges[tid].tid, tid);
    EXPECT_NEAR(ranges[tid].lo, tid / 4.0, 0.26);  // bin granularity
    EXPECT_LT(ranges[tid].lo, ranges[tid].hi + 0.01);
  }
  // Ascending blocks.
  EXPECT_LT(ranges[0].hi, ranges[3].lo + 0.5);
}

TEST(AddressCentric, MergedRangeIsMinMaxAcrossThreads) {
  // The custom [min,max] reduction of §7.2.
  AddressCentric ac(5);
  const Variable v = make_var(1, 10);
  ac.record({}, v, 0, v.start + 100, 2.0);
  ac.record({}, v, 3, v.start + 9000, 5.0);
  const auto merged = ac.merged_range(v, kWholeProgram);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->lo, v.start + 100);
  EXPECT_EQ(merged->hi, v.start + 9000);
  EXPECT_EQ(merged->count, 2u);
  EXPECT_DOUBLE_EQ(merged->latency, 7.0);
  EXPECT_FALSE(ac.merged_range(make_var(9, 1), kWholeProgram).has_value());
}

TEST(AddressCentric, ContextLatencyAndRanking) {
  AddressCentric ac(5);
  const Variable v = make_var(1, 10);
  const simrt::FrameId hot[] = {100};
  const simrt::FrameId cold[] = {200};
  for (int i = 0; i < 10; ++i) ac.record(hot, v, 0, v.start, 30.0);
  ac.record(cold, v, 0, v.start, 5.0);
  EXPECT_DOUBLE_EQ(ac.context_latency(v, 100), 300.0);
  EXPECT_DOUBLE_EQ(ac.context_latency(v, 200), 5.0);
  const auto contexts = ac.contexts_of(v);
  ASSERT_EQ(contexts.size(), 2u);
  EXPECT_EQ(contexts[0].first, 100u);  // hottest first
}

TEST(AddressCentric, RecursionDoesNotDoubleCount) {
  AddressCentric ac(5);
  const Variable v = make_var(1, 10);
  const simrt::FrameId stack[] = {7, 7, 7};  // recursive frame
  ac.record(stack, v, 0, v.start, 1.0);
  const auto ranges = ac.thread_ranges(v, 7);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].count, 1u);
}

TEST(AddressCentric, InsertAndForEachRoundTrip) {
  AddressCentric ac(5);
  BinKey key{.context = 1, .variable = 2, .bin = 3, .tid = 4};
  BinStats stats;
  stats.update(500, 10.0);
  ac.insert(key, stats);
  int seen = 0;
  ac.for_each([&](const BinKey& k, const BinStats& s) {
    ++seen;
    EXPECT_EQ(k, key);
    EXPECT_EQ(s.lo, 500u);
    EXPECT_EQ(s.count, 1u);
  });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(ac.entry_count(), 1u);
}

TEST(BinStats, UpdateAndMerge) {
  BinStats a;
  a.update(10, 1.0);
  a.update(30, 2.0);
  EXPECT_EQ(a.lo, 10u);
  EXPECT_EQ(a.hi, 30u);
  BinStats b;
  b.update(5, 4.0);
  a.merge(b);
  EXPECT_EQ(a.lo, 5u);
  EXPECT_EQ(a.hi, 30u);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.latency, 7.0);
}

// Parameterized: bin partitioning is exhaustive and ordered for any count.
class BinSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BinSweep, EveryAddressLandsInNondecreasingBins) {
  AddressCentric ac(GetParam());
  const Variable v = make_var(0, 16);
  std::uint32_t last = 0;
  for (std::uint64_t off = 0; off < v.extent_bytes(); off += 512) {
    const std::uint32_t bin = ac.bin_of(v, v.start + off);
    EXPECT_GE(bin, last);
    EXPECT_LT(bin, ac.bins_for(v));
    last = bin;
  }
  EXPECT_EQ(last, ac.bins_for(v) - 1);  // last bin reached
}

INSTANTIATE_TEST_SUITE_P(Bins, BinSweep, ::testing::Values(1u, 2u, 5u, 20u));

}  // namespace
}  // namespace numaprof::core
