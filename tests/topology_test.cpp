#include <gtest/gtest.h>

#include <algorithm>

#include "numasim/topology.hpp"
#include "support/error.hpp"

namespace numaprof::numasim {
namespace {

TEST(Topology, AmdMagnyCoursLayout) {
  const Topology t = amd_magny_cours();
  EXPECT_EQ(t.domain_count, 8u);
  EXPECT_EQ(t.cores_per_domain, 6u);
  EXPECT_EQ(t.core_count(), 48u);  // Table 1: 48 threads
}

TEST(Topology, Power7Layout) {
  const Topology t = power7();
  EXPECT_EQ(t.domain_count, 4u);  // each socket one domain (§8)
  EXPECT_EQ(t.core_count(), 128u);  // Table 1: 128 SMT threads
}

TEST(Topology, IntelPresetsHaveEightCores) {
  EXPECT_EQ(xeon_harpertown().core_count(), 8u);
  EXPECT_EQ(itanium2().core_count(), 8u);
  EXPECT_EQ(ivy_bridge().core_count(), 8u);
}

TEST(Topology, DomainOfCoreMapping) {
  const Topology t = amd_magny_cours();
  EXPECT_EQ(t.domain_of_core(0), 0u);
  EXPECT_EQ(t.domain_of_core(5), 0u);
  EXPECT_EQ(t.domain_of_core(6), 1u);
  EXPECT_EQ(t.domain_of_core(47), 7u);
  EXPECT_EQ(t.first_core_of(3), 18u);
}

TEST(Topology, RemoteCostsExceedLocalByThirtyPercent) {
  // §2: "remote accesses have more than 30% higher latency than local" —
  // for every registered preset, by name (never by catalog position).
  for (const std::string& name : preset_names()) {
    const Topology t = topology_by_name(name);
    const double local = static_cast<double>(t.local_dram_latency);
    const double remote = local + 2.0 * t.remote_hop_latency;
    EXPECT_GT(remote, 1.3 * local) << name;
  }
}

TEST(Topology, EveryTable1MachineIsRegisteredByName) {
  // The five Table-1 evaluation machines are addressed by stable short
  // name; adding presets to the catalog must not shift anything.
  EXPECT_NE(topology_by_name("magny-cours").name.find("AMD"),
            std::string::npos);
  EXPECT_NE(topology_by_name("power7").name.find("POWER7"),
            std::string::npos);
  EXPECT_NE(topology_by_name("harpertown").name.find("Harpertown"),
            std::string::npos);
  EXPECT_NE(topology_by_name("itanium2").name.find("Itanium"),
            std::string::npos);
  EXPECT_NE(topology_by_name("ivy-bridge").name.find("Ivy Bridge"),
            std::string::npos);
  // evaluation_presets() still returns exactly the Table-1 set.
  EXPECT_EQ(evaluation_presets().size(), 5u);

  const auto names = preset_names();
  for (const char* required :
       {"magny-cours", "power7", "harpertown", "itanium2", "ivy-bridge",
        "snc", "cxl-far-memory", "numascope"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
}

TEST(Topology, UnknownPresetNameThrowsTypedUsageError) {
  try {
    topology_by_name("magny-cours-typo");
    FAIL() << "lookup of unknown preset did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
    const std::string what = e.what();
    EXPECT_NE(what.find("magny-cours-typo"), std::string::npos);
    // The error names the valid choices.
    EXPECT_NE(what.find("ivy-bridge"), std::string::npos);
    EXPECT_NE(what.find("cxl-far-memory"), std::string::npos);
  }
}

TEST(Topology, SncPresetClustersSockets) {
  const Topology t = topology_by_name("snc");
  EXPECT_EQ(t.domain_count, 4u);
  EXPECT_EQ(t.memory_only_domains, 0u);
  // Sub-NUMA clusters: two domains per socket, cross-socket is farther.
  EXPECT_EQ(t.distance(0, 1), 1u);
  EXPECT_EQ(t.distance(2, 3), 1u);
  EXPECT_GT(t.distance(0, 2), t.distance(0, 1));
}

TEST(Topology, CxlPresetHasCorelessFarTier) {
  const Topology t = topology_by_name("cxl-far-memory");
  ASSERT_EQ(t.memory_only_domains, 1u);
  const DomainId far = t.domain_count - 1;
  EXPECT_TRUE(t.is_memory_only(far));
  EXPECT_FALSE(t.is_memory_only(0));
  // No cores on the far tier: core_count covers compute domains only.
  EXPECT_EQ(t.core_count(), t.compute_domain_count() * t.cores_per_domain);
  EXPECT_GT(t.dram_latency_of(far), t.dram_latency_of(0));
}

TEST(Topology, NumascopeRingDistancesAreSymmetricAndBounded) {
  const Topology t = topology_by_name("numascope");
  std::uint32_t max_hops = 0;
  for (DomainId a = 0; a < t.domain_count; ++a) {
    for (DomainId b = 0; b < t.domain_count; ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
      max_hops = std::max(max_hops, t.distance(a, b));
    }
    EXPECT_EQ(t.distance(a, a), 0u);
  }
  EXPECT_EQ(max_hops, t.domain_count / 2);  // a ring's diameter
}

TEST(Topology, DefaultDistanceIsUniform) {
  const Topology t = amd_magny_cours();
  EXPECT_EQ(t.distance(0, 0), 0u);
  EXPECT_EQ(t.distance(0, 1), 1u);
  EXPECT_EQ(t.distance(0, 7), 1u);
}

TEST(Topology, HtFabricDistances) {
  // The partially-connected preset: same-socket dies 1 hop, cross-socket
  // 2 hops — the structure `numactl --hardware` reports on this machine.
  const Topology t = amd_magny_cours_ht();
  EXPECT_EQ(t.distance(0, 0), 0u);
  EXPECT_EQ(t.distance(0, 1), 1u);  // same socket
  EXPECT_EQ(t.distance(2, 3), 1u);
  EXPECT_EQ(t.distance(0, 2), 2u);  // different sockets
  EXPECT_EQ(t.distance(1, 7), 2u);
  // Symmetric.
  for (numasim::DomainId a = 0; a < t.domain_count; ++a) {
    for (numasim::DomainId b = 0; b < t.domain_count; ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
  }
}

TEST(Topology, TestMachineIsConfigurable) {
  const Topology t = test_machine(3, 2);
  EXPECT_EQ(t.domain_count, 3u);
  EXPECT_EQ(t.core_count(), 6u);
}

TEST(DataSource, RemoteClassification) {
  EXPECT_FALSE(is_remote(DataSource::kL1));
  EXPECT_FALSE(is_remote(DataSource::kL2));
  EXPECT_FALSE(is_remote(DataSource::kLocalL3));
  EXPECT_FALSE(is_remote(DataSource::kLocalDram));
  EXPECT_TRUE(is_remote(DataSource::kRemoteL3));
  EXPECT_TRUE(is_remote(DataSource::kRemoteDram));
}

TEST(DataSource, DramClassification) {
  EXPECT_TRUE(is_dram(DataSource::kLocalDram));
  EXPECT_TRUE(is_dram(DataSource::kRemoteDram));
  EXPECT_FALSE(is_dram(DataSource::kRemoteL3));
}

TEST(DataSource, Names) {
  EXPECT_EQ(to_string(DataSource::kL1), "L1");
  EXPECT_EQ(to_string(DataSource::kRemoteDram), "remote-DRAM");
}

TEST(LineAddr, LineOfComputesSixtyFourByteLines) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(line_of(128), 2u);
}

}  // namespace
}  // namespace numaprof::numasim
