#include <gtest/gtest.h>

#include "numasim/topology.hpp"

namespace numaprof::numasim {
namespace {

TEST(Topology, AmdMagnyCoursLayout) {
  const Topology t = amd_magny_cours();
  EXPECT_EQ(t.domain_count, 8u);
  EXPECT_EQ(t.cores_per_domain, 6u);
  EXPECT_EQ(t.core_count(), 48u);  // Table 1: 48 threads
}

TEST(Topology, Power7Layout) {
  const Topology t = power7();
  EXPECT_EQ(t.domain_count, 4u);  // each socket one domain (§8)
  EXPECT_EQ(t.core_count(), 128u);  // Table 1: 128 SMT threads
}

TEST(Topology, IntelPresetsHaveEightCores) {
  EXPECT_EQ(xeon_harpertown().core_count(), 8u);
  EXPECT_EQ(itanium2().core_count(), 8u);
  EXPECT_EQ(ivy_bridge().core_count(), 8u);
}

TEST(Topology, DomainOfCoreMapping) {
  const Topology t = amd_magny_cours();
  EXPECT_EQ(t.domain_of_core(0), 0u);
  EXPECT_EQ(t.domain_of_core(5), 0u);
  EXPECT_EQ(t.domain_of_core(6), 1u);
  EXPECT_EQ(t.domain_of_core(47), 7u);
  EXPECT_EQ(t.first_core_of(3), 18u);
}

TEST(Topology, RemoteCostsExceedLocalByThirtyPercent) {
  // §2: "remote accesses have more than 30% higher latency than local".
  for (const Topology& t : evaluation_presets()) {
    const double local = static_cast<double>(t.local_dram_latency);
    const double remote = local + 2.0 * t.remote_hop_latency;
    EXPECT_GT(remote, 1.3 * local) << t.name;
  }
}

TEST(Topology, EvaluationPresetsMatchTable1Order) {
  const auto presets = evaluation_presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_NE(presets[0].name.find("AMD"), std::string::npos);
  EXPECT_NE(presets[1].name.find("POWER7"), std::string::npos);
  EXPECT_NE(presets[2].name.find("Harpertown"), std::string::npos);
  EXPECT_NE(presets[3].name.find("Itanium"), std::string::npos);
  EXPECT_NE(presets[4].name.find("Ivy Bridge"), std::string::npos);
}

TEST(Topology, DefaultDistanceIsUniform) {
  const Topology t = amd_magny_cours();
  EXPECT_EQ(t.distance(0, 0), 0u);
  EXPECT_EQ(t.distance(0, 1), 1u);
  EXPECT_EQ(t.distance(0, 7), 1u);
}

TEST(Topology, HtFabricDistances) {
  // The partially-connected preset: same-socket dies 1 hop, cross-socket
  // 2 hops — the structure `numactl --hardware` reports on this machine.
  const Topology t = amd_magny_cours_ht();
  EXPECT_EQ(t.distance(0, 0), 0u);
  EXPECT_EQ(t.distance(0, 1), 1u);  // same socket
  EXPECT_EQ(t.distance(2, 3), 1u);
  EXPECT_EQ(t.distance(0, 2), 2u);  // different sockets
  EXPECT_EQ(t.distance(1, 7), 2u);
  // Symmetric.
  for (numasim::DomainId a = 0; a < t.domain_count; ++a) {
    for (numasim::DomainId b = 0; b < t.domain_count; ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
  }
}

TEST(Topology, TestMachineIsConfigurable) {
  const Topology t = test_machine(3, 2);
  EXPECT_EQ(t.domain_count, 3u);
  EXPECT_EQ(t.core_count(), 6u);
}

TEST(DataSource, RemoteClassification) {
  EXPECT_FALSE(is_remote(DataSource::kL1));
  EXPECT_FALSE(is_remote(DataSource::kL2));
  EXPECT_FALSE(is_remote(DataSource::kLocalL3));
  EXPECT_FALSE(is_remote(DataSource::kLocalDram));
  EXPECT_TRUE(is_remote(DataSource::kRemoteL3));
  EXPECT_TRUE(is_remote(DataSource::kRemoteDram));
}

TEST(DataSource, DramClassification) {
  EXPECT_TRUE(is_dram(DataSource::kLocalDram));
  EXPECT_TRUE(is_dram(DataSource::kRemoteDram));
  EXPECT_FALSE(is_dram(DataSource::kRemoteL3));
}

TEST(DataSource, Names) {
  EXPECT_EQ(to_string(DataSource::kL1), "L1");
  EXPECT_EQ(to_string(DataSource::kRemoteDram), "remote-DRAM");
}

TEST(LineAddr, LineOfComputesSixtyFourByteLines) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(line_of(128), 2u);
}

}  // namespace
}  // namespace numaprof::numasim
