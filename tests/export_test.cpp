// Lock on the exporters (core/export/): golden artifacts for the four
// paper case studies, schema validation of every artifact, the --jobs
// byte-identity contract, and the Error(kExport) failure paths.
//
// Golden files live in tests/golden/export/<app>.<artifact suffix>;
// regenerate with NUMAPROF_REGEN_GOLDEN=1 and review the diff. The test
// configs are smaller than the advisor goldens (8 threads, traces on) to
// keep the checked-in artifacts compact while still exercising every pane.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/export/export.hpp"
#include "core/export/schema.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"
#include "support/error.hpp"

namespace numaprof {
namespace {

namespace fs = std::filesystem;

core::ProfilerConfig profiler_config() {
  core::ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 200;
  pc.record_trace = true;  // the trace timeline is part of the artifacts
  return pc;
}

struct CaseStudy {
  std::string name;
  std::function<core::SessionData()> run;
};

std::vector<CaseStudy> case_studies() {
  return {
      {"minilulesh",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_minilulesh(m, {.threads = 8,
                                  .pages_per_thread = 6,
                                  .timesteps = 4,
                                  .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniamg",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_miniamg(m, {.threads = 8,
                               .rows_per_thread = 512,
                               .relax_sweeps = 3,
                               .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniblackscholes",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_miniblackscholes(
             m, {.threads = 8,
                 .options_per_thread = 240,
                 .iterations = 48,
                 .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniumt",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_miniumt(m, {.threads = 8,
                               .angles = 16,
                               .sweeps = 2,
                               .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
  };
}

/// Golden options: fewer windows/rows than the CLI defaults to keep the
/// checked-in artifacts small.
core::ExportOptions golden_options(const std::string& name) {
  core::ExportOptions options;
  options.timeline_windows = 24;
  options.table_rows = 10;
  options.top_variables = 2;
  options.basename = name;
  return options;
}

std::vector<core::ExportArtifact> artifacts_for(
    const core::SessionData& data, const std::string& name, unsigned jobs) {
  PipelineOptions pipeline;
  pipeline.jobs = jobs;
  const core::Analyzer analyzer(data, pipeline);
  return core::export_artifacts(analyzer, core::ExportKind::kAll,
                                golden_options(name));
}

TEST(ExportGolden, CaseStudyArtifactsAreLocked) {
  const fs::path golden_dir = NUMAPROF_SOURCE_DIR "/tests/golden/export";
  const bool regen = std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr;
  if (regen) fs::create_directories(golden_dir);
  for (const CaseStudy& app : case_studies()) {
    SCOPED_TRACE(app.name);
    const core::SessionData data = app.run();
    for (const core::ExportArtifact& artifact :
         artifacts_for(data, app.name, 1)) {
      const fs::path path = golden_dir / artifact.filename;
      SCOPED_TRACE(artifact.filename);
      if (regen) {
        std::ofstream out(path, std::ios::binary);
        out << artifact.bytes;
        continue;
      }
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in) << "missing golden file " << path
                      << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
      std::ostringstream buffer;
      buffer << in.rdbuf();
      EXPECT_EQ(artifact.bytes, buffer.str())
          << artifact.filename
          << " drifted; if intentional, rerun with NUMAPROF_REGEN_GOLDEN=1";
    }
  }
  if (regen) GTEST_SKIP() << "regenerated export goldens in " << golden_dir;
}

TEST(ExportGolden, EveryArtifactPassesItsSchemaCheck) {
  for (const CaseStudy& app : case_studies()) {
    SCOPED_TRACE(app.name);
    const core::SessionData data = app.run();
    for (const core::ExportArtifact& artifact :
         artifacts_for(data, app.name, 1)) {
      const std::vector<std::string> errors =
          core::check_artifact(artifact.filename, artifact.bytes);
      EXPECT_TRUE(errors.empty())
          << artifact.filename << ": "
          << (errors.empty() ? "" : errors.front());
    }
  }
}

TEST(ExportGolden, ArtifactsAreByteIdenticalAcrossJobs) {
  for (const CaseStudy& app : case_studies()) {
    SCOPED_TRACE(app.name);
    const core::SessionData data = app.run();
    const auto serial = artifacts_for(data, app.name, 1);
    const auto parallel = artifacts_for(data, app.name, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].filename, parallel[i].filename);
      EXPECT_EQ(serial[i].bytes, parallel[i].bytes)
          << serial[i].filename << ": --jobs 8 bytes diverged from --jobs 1";
    }
  }
}

TEST(ExportGolden, RepeatedRunsAreByteIdentical) {
  // Two *independent* simulated runs of the same workload must export the
  // same bytes — no wall-clock, no address-space randomness may leak in.
  const CaseStudy app = case_studies().front();
  const auto first = artifacts_for(app.run(), app.name, 1);
  const auto second = artifacts_for(app.run(), app.name, 1);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].bytes, second[i].bytes) << first[i].filename;
  }
}

TEST(Export, KindParsingRoundTripsAndRejectsUnknown) {
  for (int i = 0; i < core::kExportKindCount; ++i) {
    const auto kind = static_cast<core::ExportKind>(i);
    const auto parsed = core::parse_export_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(core::parse_export_kind("svg").has_value());
  EXPECT_FALSE(core::parse_export_kind("").has_value());
  for (int i = 0; i < core::kFlameWeightCount; ++i) {
    const auto weight = static_cast<core::FlameWeight>(i);
    const auto parsed = core::parse_flame_weight(to_string(weight));
    ASSERT_TRUE(parsed.has_value()) << to_string(weight);
    EXPECT_EQ(*parsed, weight);
  }
  EXPECT_FALSE(core::parse_flame_weight("latency").has_value());
}

TEST(Export, AllExpandsToEveryArtifactInStableOrder) {
  const core::SessionData data = case_studies().front().run();
  const core::Analyzer analyzer(data);
  const auto artifacts =
      core::export_artifacts(analyzer, core::ExportKind::kAll);
  ASSERT_EQ(artifacts.size(), 4u);
  EXPECT_EQ(artifacts[0].filename, "numaprof.trace.json");
  EXPECT_EQ(artifacts[1].filename, "numaprof.collapsed.txt");
  EXPECT_EQ(artifacts[2].filename, "numaprof.speedscope.json");
  EXPECT_EQ(artifacts[3].filename, "numaprof.report.html");
}

TEST(Export, FlameWeightsProduceDifferentButValidStacks) {
  const core::SessionData data = case_studies().front().run();
  const core::Analyzer analyzer(data);
  std::vector<std::string> outputs;
  for (int i = 0; i < core::kFlameWeightCount; ++i) {
    core::ExportOptions options;
    options.weight = static_cast<core::FlameWeight>(i);
    const std::string collapsed =
        core::export_collapsed_stacks(analyzer, options);
    EXPECT_FALSE(collapsed.empty());
    EXPECT_TRUE(core::check_collapsed_stacks(collapsed).empty());
    outputs.push_back(collapsed);
  }
  EXPECT_NE(outputs[0], outputs[1]);  // mismatch counts vs latency cycles
}

TEST(Export, WriteExportsCreatesDirectoryAndFiles) {
  const core::SessionData data = case_studies().front().run();
  const core::Analyzer analyzer(data);
  const fs::path dir =
      fs::path(::testing::TempDir()) / "numaprof_export_out" / "nested";
  fs::remove_all(dir.parent_path());
  const std::vector<std::string> written = core::write_exports(
      analyzer, core::ExportKind::kHtml, dir.string());
  ASSERT_EQ(written.size(), 1u);
  EXPECT_TRUE(fs::exists(written[0]));
  std::ifstream in(written[0], std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  EXPECT_TRUE(core::check_html_report(bytes.str()).empty());
}

TEST(Export, WriteExportsThrowsTypedErrorOnUnwritableTarget) {
  const core::SessionData data = case_studies().front().run();
  const core::Analyzer analyzer(data);
  // A regular file where the directory should go makes create_directories
  // fail on every platform.
  const fs::path blocker =
      fs::path(::testing::TempDir()) / "numaprof_export_blocker";
  std::ofstream(blocker.string()) << "not a directory";
  try {
    core::write_exports(analyzer, core::ExportKind::kAll,
                        (blocker / "sub").string());
    FAIL() << "expected Error(kExport)";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kExport);
    EXPECT_NE(std::string(error.what()).find("export"),
              std::string::npos);
  }
}

TEST(Export, EmptySessionStillProducesValidArtifacts) {
  // No workload at all: every pane must degrade gracefully and every
  // artifact still validate (the HTML keeps its placeholder SVG).
  simrt::Machine m(numasim::amd_magny_cours());
  core::Profiler p(m, profiler_config());
  const core::SessionData data = p.snapshot();
  const core::Analyzer analyzer(data);
  for (const core::ExportArtifact& artifact :
       core::export_artifacts(analyzer, core::ExportKind::kAll)) {
    if (artifact.filename == "numaprof.collapsed.txt") {
      EXPECT_TRUE(artifact.bytes.empty());
      continue;  // empty collapsed output trivially validates
    }
    const std::vector<std::string> errors =
        core::check_artifact(artifact.filename, artifact.bytes);
    EXPECT_TRUE(errors.empty())
        << artifact.filename << ": "
        << (errors.empty() ? "" : errors.front());
  }
}

}  // namespace
}  // namespace numaprof
