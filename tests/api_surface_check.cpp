// The API-surface guard: a minimal external consumer that includes ONLY
// the umbrella header and touches every [stable]/[evolving] symbol it
// promises. Compiled as its own object-library target (no gtest, no other
// numaprof headers) so a symbol falling out of numaprof.hpp is a build
// break, not a silent doc drift. CI runs the `api_surface_check` target in
// isolation (the api-surface job).
#include "core/numaprof.hpp"

#include <sstream>
#include <string>
#include <vector>

namespace {

// Exercise each exported name in an ordinary-consumer way. The function is
// never called — compiling and linking against the umbrella alone is the
// assertion.
[[maybe_unused]] std::string consume_public_surface() {
  numaprof::PipelineOptions options;
  options.jobs = 2;
  options.lenient = true;
  options.quorum = 0.25;
  options.lint_paths.push_back("src");

  numaprof::Session session;
  session.domain_count = 2;
  const numaprof::Analyzer analyzer(session, options);
  const numaprof::Viewer viewer(analyzer);

  numaprof::Telemetry hub(numaprof::TelemetryConfig{.domain_count = 2});
  hub.ring(0).add(numaprof::TelemetryCounter::kSamples);
  numaprof::TelemetryEvent event;
  event.kind = numaprof::TelemetryEventKind::kThreadStart;
  hub.ring(0).publish(event);
  const numaprof::TelemetrySnapshot snapshot = hub.snapshot(1);

  std::ostringstream jsonl;
  numaprof::write_snapshot_jsonl(snapshot, session.mechanism, jsonl);
  std::istringstream replay(jsonl.str());
  const numaprof::TelemetryTrace trace =
      numaprof::load_telemetry_trace(replay);

  std::string out = viewer.program_summary();
  out += numaprof::format_status_line(snapshot, session.mechanism);
  out += numaprof::render_health_pane(trace, &session);
  try {
    const numaprof::MergeResult merged =
        numaprof::merge_profile_files({"missing.prof"}, options);
    out += std::to_string(merged.summary.files_total);
  } catch (const numaprof::Error& error) {
    out += numaprof::format_error(error);
  }
  return out;
}

}  // namespace
