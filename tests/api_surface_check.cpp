// The API-surface guard: a minimal external consumer that includes ONLY
// the umbrella header and touches every [stable]/[evolving] symbol it
// promises. Compiled as its own object-library target (no gtest, no other
// numaprof headers) so a symbol falling out of numaprof.hpp is a build
// break, not a silent doc drift. CI runs the `api_surface_check` target in
// isolation (the api-surface job).
#include "core/numaprof.hpp"

#include <sstream>
#include <string>
#include <vector>

namespace {

// Exercise each exported name in an ordinary-consumer way. The function is
// never called — compiling and linking against the umbrella alone is the
// assertion.
[[maybe_unused]] std::string consume_public_surface() {
  numaprof::PipelineOptions options;
  options.jobs = 2;
  options.lenient = true;
  options.quorum = 0.25;
  options.lint_paths.push_back("src");

  numaprof::Session session;
  session.domain_count = 2;
  const numaprof::Analyzer analyzer(session, options);
  const numaprof::Viewer viewer(analyzer);

  numaprof::Telemetry hub(numaprof::TelemetryConfig{.domain_count = 2});
  hub.ring(0).add(numaprof::TelemetryCounter::kSamples);
  numaprof::TelemetryEvent event;
  event.kind = numaprof::TelemetryEventKind::kThreadStart;
  hub.ring(0).publish(event);
  const numaprof::TelemetrySnapshot snapshot = hub.snapshot(1);

  std::ostringstream jsonl;
  numaprof::write_snapshot_jsonl(snapshot, session.mechanism, jsonl);
  std::istringstream replay(jsonl.str());
  const numaprof::TelemetryTrace trace =
      numaprof::load_telemetry_trace(replay);

  std::string out = viewer.program_summary();
  out += numaprof::format_status_line(snapshot, session.mechanism);
  out += numaprof::render_health_pane(trace, &session);

  // Exporters and the bundled artifact validators.
  numaprof::ExportOptions export_options;
  export_options.weight =
      numaprof::parse_flame_weight("lpi").value_or(
          numaprof::FlameWeight::kRemoteLatency);
  export_options.timeline_windows = 16;
  out += numaprof::export_trace_json(analyzer, export_options);
  out += numaprof::export_collapsed_stacks(analyzer);
  out += numaprof::export_speedscope(analyzer);
  out += numaprof::export_html(analyzer);
  const std::vector<numaprof::ExportArtifact> artifacts =
      numaprof::export_artifacts(
          analyzer,
          numaprof::parse_export_kind("all").value_or(
              numaprof::ExportKind::kAll),
          export_options);
  for (const numaprof::ExportArtifact& artifact : artifacts) {
    for (const std::string& problem :
         numaprof::check_artifact(artifact.filename, artifact.bytes)) {
      out += problem;
    }
  }
  out += numaprof::json_well_formed("{}").empty() ? "ok" : "bad";
  std::string parse_error;
  if (const auto doc = numaprof::parse_json("{\"k\":1}", &parse_error)) {
    out += doc->find("k") != nullptr ? "k" : parse_error;
  }
  out += numaprof::check_trace_json("{}").empty() ? "" : "t";
  out += numaprof::check_speedscope_json("{}").empty() ? "" : "s";
  out += numaprof::check_collapsed_stacks("a 1\n").empty() ? "" : "c";
  out += numaprof::check_html_report("<!DOCTYPE html>").empty() ? "" : "h";
  try {
    const std::vector<std::string> written = numaprof::write_exports(
        analyzer, numaprof::ExportKind::kHtml, "exports", export_options);
    out += std::to_string(written.size());
  } catch (const numaprof::Error& error) {
    if (error.kind() == numaprof::ErrorKind::kExport) {
      out += numaprof::format_error(error);
    }
  }
  try {
    const numaprof::MergeResult merged =
        numaprof::merge_profile_files({"missing.prof"}, options);
    out += std::to_string(merged.summary.files_total);
  } catch (const numaprof::Error& error) {
    out += numaprof::format_error(error);
  }

  // Profile I/O: both encodings behind the reader/writer pair.
  options.format = numaprof::ProfileFormat::kBinary;
  const numaprof::ProfileWriter writer(options);
  out += writer.format() == numaprof::ProfileFormat::kBinary ? "b" : "t";
  const std::string binary = writer.bytes(session);
  std::ostringstream sink;
  writer.write(session, sink);
  const std::vector<std::string> shards = writer.thread_shards(session);
  out += std::to_string(shards.size());

  numaprof::LoadOptions load_options;
  load_options.lenient = true;
  const numaprof::ProfileReader reader(load_options);
  out += reader.options().lenient ? "l" : "s";
  out += numaprof::ProfileReader::detect(binary) ==
                 numaprof::ProfileFormat::kBinary
             ? "B"
             : "T";
  try {
    const numaprof::LoadResult loaded = reader.read(binary);
    for (const numaprof::Diagnostic& diagnostic : loaded.diagnostics) {
      out += diagnostic.field;
    }
    out += loaded.complete ? "c" : "p";
    out += std::to_string(loaded.data.thread_count());
  } catch (const numaprof::ProfileError& error) {
    out += error.field();
  }
  try {
    writer.write_file(session, "surface.prof");
    writer.write_thread_shards(session, "surface_shards");
    out += std::to_string(reader.read_file("surface.prof").data.cct.size());
  } catch (const std::exception& error) {
    out += error.what();
  }
  return out;
}

}  // namespace
