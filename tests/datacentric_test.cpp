#include <gtest/gtest.h>

#include "core/datacentric.hpp"
#include "simos/address_space.hpp"

namespace numaprof::core {
namespace {

struct Fixture : ::testing::Test {
  Fixture() : space(4), registry(cct, space) {}

  simrt::AllocEvent alloc_event(const simos::HeapBlock& block,
                                std::string name,
                                std::span<const simrt::FrameId> stack) {
    simrt::AllocEvent e;
    e.tid = 1;
    e.block = block;
    e.name = std::move(name);
    e.stack = stack;
    return e;
  }

  Cct cct;
  simos::AddressSpace space;
  VariableRegistry registry;
};

TEST_F(Fixture, HeapAllocationCreatesVariableWithAllocPath) {
  const auto block = space.heap_alloc(3 * simos::kPageBytes);
  const simrt::FrameId stack[] = {10, 11};
  const VariableId id = registry.on_alloc(alloc_event(block, "z", stack));
  const Variable& var = registry.variable(id);
  EXPECT_EQ(var.name, "z");
  EXPECT_EQ(var.kind, VariableKind::kHeap);
  EXPECT_EQ(var.page_count, 3u);
  EXPECT_TRUE(var.live);
  // The variable node hangs under [ALLOCATION] > 10 > 11.
  const auto path = cct.path_to(var.variable_node);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(cct.node(path[0]).kind, NodeKind::kAllocation);
  EXPECT_EQ(cct.node(path[1]).key, 10u);
  EXPECT_EQ(cct.node(path[2]).key, 11u);
  EXPECT_EQ(cct.node(path[3]).kind, NodeKind::kVariable);
  EXPECT_EQ(registry.allocation_site(id), path[2]);
}

TEST_F(Fixture, UnnamedAllocationGetsSyntheticName) {
  const auto block = space.heap_alloc(8);
  const VariableId id = registry.on_alloc(alloc_event(block, "", {}));
  EXPECT_NE(registry.variable(id).name.find("heap#"), std::string::npos);
}

TEST_F(Fixture, ResolveFindsHeapVariable) {
  const auto block = space.heap_alloc(2 * simos::kPageBytes);
  const VariableId id = registry.on_alloc(alloc_event(block, "arr", {}));
  EXPECT_EQ(registry.resolve(block.start), id);
  EXPECT_EQ(registry.resolve(block.start + 2 * simos::kPageBytes - 1), id);
}

TEST_F(Fixture, FreeMakesRangeUnresolvableButKeepsVariable) {
  const auto block = space.heap_alloc(simos::kPageBytes);
  const VariableId id = registry.on_alloc(alloc_event(block, "tmp", {}));
  simrt::FreeEvent fe;
  fe.block = block;
  registry.on_free(fe);
  EXPECT_FALSE(registry.variable(id).live);
  // Address now resolves to unknown, not the dead variable.
  const VariableId resolved = registry.resolve(block.start);
  EXPECT_EQ(registry.variable(resolved).kind, VariableKind::kUnknown);
  // But the dead variable's metadata survives for postmortem reports.
  EXPECT_EQ(registry.variable(id).name, "tmp");
}

TEST_F(Fixture, ReusedSpaceResolvesToNewVariable) {
  const auto block = space.heap_alloc(simos::kPageBytes);
  const VariableId id1 = registry.on_alloc(alloc_event(block, "first", {}));
  simrt::FreeEvent fe;
  fe.block = block;
  registry.on_free(fe);
  space.heap_free(block.start);
  const auto block2 = space.heap_alloc(simos::kPageBytes);
  ASSERT_EQ(block2.start, block.start);  // reused
  const VariableId id2 = registry.on_alloc(alloc_event(block2, "second", {}));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(registry.resolve(block.start), id2);
}

TEST_F(Fixture, StaticSymbolsResolveByName) {
  const auto& sym = space.define_static("counters", 64);
  const VariableId id = registry.resolve(sym.start + 8);
  const Variable& var = registry.variable(id);
  EXPECT_EQ(var.kind, VariableKind::kStatic);
  EXPECT_EQ(var.name, "counters");
  // Resolving again yields the same variable.
  EXPECT_EQ(registry.resolve(sym.start), id);
}

TEST_F(Fixture, StackAddressesResolvePerThread) {
  const simos::VAddr t3 = space.stack_base(3);
  const simos::VAddr t5 = space.stack_base(5);
  const VariableId v3 = registry.resolve(t3 + 100);
  const VariableId v5 = registry.resolve(t5 + 100);
  EXPECT_NE(v3, v5);
  EXPECT_EQ(registry.variable(v3).kind, VariableKind::kStack);
  EXPECT_NE(registry.variable(v3).name.find("thread 3"), std::string::npos);
  EXPECT_EQ(registry.resolve(t3 + 5000), v3);
}

TEST_F(Fixture, NamedStackVariableTakesPrecedence) {
  // The §10 future-work extension: explicitly registered stack variables.
  const simos::VAddr base = space.stack_base(0);
  const VariableId named =
      registry.register_stack_variable("nodelist", 0, base + 256, 1024);
  EXPECT_EQ(registry.resolve(base + 256), named);
  EXPECT_EQ(registry.resolve(base + 256 + 1023), named);
  EXPECT_EQ(registry.variable(named).kind, VariableKind::kStackVar);
  // Outside the named range: the anonymous stack variable.
  const VariableId anon = registry.resolve(base + 8000);
  EXPECT_NE(anon, named);
  EXPECT_EQ(registry.variable(anon).kind, VariableKind::kStack);
}

TEST_F(Fixture, UnknownAddressesShareOneVariable) {
  const VariableId a = registry.resolve(0x10);
  const VariableId b = registry.resolve(0x20);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.variable(a).kind, VariableKind::kUnknown);
}

TEST_F(Fixture, FindByName) {
  const auto block = space.heap_alloc(8);
  registry.on_alloc(alloc_event(block, "needle", {}));
  EXPECT_TRUE(registry.find_by_name("needle").has_value());
  EXPECT_FALSE(registry.find_by_name("missing").has_value());
}

TEST(VariableKindNames, Strings) {
  EXPECT_EQ(to_string(VariableKind::kHeap), "heap");
  EXPECT_EQ(to_string(VariableKind::kStatic), "static");
  EXPECT_EQ(to_string(VariableKind::kStack), "stack");
  EXPECT_EQ(to_string(VariableKind::kStackVar), "stack-var");
  EXPECT_EQ(to_string(VariableKind::kUnknown), "unknown");
}

}  // namespace
}  // namespace numaprof::core
