// numalint over the real case-study workloads (src/apps): the static pass
// must rediscover — with correct file/line/variable — the serial
// first-touch antipatterns the paper found dynamically (§8), and must NOT
// flag the worker-first-touched arrays. A golden file locks the complete
// finding set; regenerate with NUMAPROF_REGEN_GOLDEN=1 after intentional
// changes to the apps or the analyzer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "lint/numalint.hpp"

namespace numaprof::lint {
namespace {

using core::Action;
using core::LintKind;
using core::PatternKind;
using core::StaticFinding;

const LintResult& apps_lint() {
  static const LintResult result =
      lint_paths({NUMAPROF_SOURCE_DIR "/src/apps"});
  return result;
}

const StaticFinding* find(std::string_view variable, LintKind kind) {
  for (const StaticFinding& f : apps_lint().findings) {
    if (f.variable == variable && f.kind == kind) return &f;
  }
  return nullptr;
}

TEST(LintApps, LuleshMasterInitializedMeshArraysAreL1) {
  // §8.1: x/y/z and nodelist are initialized by the master thread and
  // consumed blockwise by all workers. The findings must anchor at the
  // actual serial store_lines sites in minilulesh.cpp.
  for (const char* name : {"x", "y", "z"}) {
    const StaticFinding* f = find(name, LintKind::kSerialFirstTouch);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->file, "minilulesh.cpp") << name;
    EXPECT_EQ(f->line, 105u) << name;
    EXPECT_EQ(f->expected, PatternKind::kBlocked) << name;
    EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch) << name;
  }
  EXPECT_EQ(find("x", LintKind::kSerialFirstTouch)->decl_line, 81u);
  EXPECT_EQ(find("y", LintKind::kSerialFirstTouch)->decl_line, 82u);
  EXPECT_EQ(find("z", LintKind::kSerialFirstTouch)->decl_line, 83u);

  const StaticFinding* nodelist = find("nodelist", LintKind::kSerialFirstTouch);
  ASSERT_NE(nodelist, nullptr);
  EXPECT_EQ(nodelist->file, "minilulesh.cpp");
  EXPECT_EQ(nodelist->line, 109u);
  EXPECT_EQ(nodelist->suggested, Action::kBlockwiseFirstTouch);
}

TEST(LintApps, LuleshWriteFirstVelocityArraysAreClean) {
  // xd/yd/zd are first-written by the workers themselves (their
  // master_initialized slot column is false): no antipattern of any kind.
  for (const char* name : {"xd", "yd", "zd"}) {
    for (const StaticFinding& f : apps_lint().findings) {
      EXPECT_NE(f.variable, name)
          << "write-first array flagged: " << f.message;
    }
  }
}

TEST(LintApps, AmgCsrArraysAreL1Blockwise) {
  // §8.2: the CSR operator arrays are master-initialized but accessed
  // block-locally in the relax region -> blockwise first touch.
  struct Expected {
    const char* name;
    std::uint32_t line;
  };
  for (const Expected e : {Expected{"RAP_diag_i", 131},
                           Expected{"RAP_diag_j", 133},
                           Expected{"RAP_diag_data", 135}}) {
    const StaticFinding* f = find(e.name, LintKind::kSerialFirstTouch);
    ASSERT_NE(f, nullptr) << e.name;
    EXPECT_EQ(f->file, "miniamg.cpp") << e.name;
    EXPECT_EQ(f->line, e.line) << e.name;
    EXPECT_EQ(f->suggested, Action::kBlockwiseFirstTouch) << e.name;
  }
}

TEST(LintApps, AmgIndirectVectorsSuggestInterleaveNotBlockwise) {
  // x_vec/z_aux are read through column indirection by every thread:
  // the paper's fix interleaves them (§8.2), and interleave-misuse must
  // NOT fire for them.
  for (const char* name : {"x_vec", "z_aux"}) {
    const StaticFinding* f = find(name, LintKind::kSerialFirstTouch);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->expected, PatternKind::kFullRange) << name;
    EXPECT_EQ(f->suggested, Action::kInterleave) << name;
    EXPECT_EQ(find(name, LintKind::kInterleaveMisuse), nullptr) << name;
  }
}

TEST(LintApps, BlackscholesBufferIsSoaRegroup) {
  // §8.3: buffer's five sections are indexed field*options+option — the
  // SoA stride the paper fixes by regrouping into an AoS.
  const StaticFinding* f = find("buffer", LintKind::kSerialFirstTouch);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, "miniblackscholes.cpp");
  EXPECT_EQ(f->expected, PatternKind::kStaggeredOverlap);
  EXPECT_EQ(f->suggested, Action::kRegroupAos);
}

TEST(LintApps, UmtMasterInitializedArraysAreL1) {
  // §8.4: STime/STotal/psi are allocated and zeroed by the master.
  for (const char* name : {"STime", "STotal", "psi"}) {
    const StaticFinding* f = find(name, LintKind::kSerialFirstTouch);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->file, "miniumt.cpp") << name;
  }
}

TEST(LintApps, GoldenFindings) {
  const std::string golden_path =
      NUMAPROF_SOURCE_DIR "/tests/golden/lint_apps.txt";
  const std::string rendered = render_findings(apps_lint().findings);
  if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(rendered, buffer.str())
      << "lint findings drifted; if intentional, rerun with "
         "NUMAPROF_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace numaprof::lint
