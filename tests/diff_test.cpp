#include <gtest/gtest.h>

#include "apps/minilulesh.hpp"
#include "core/diff.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

namespace numaprof::core {
namespace {

SessionData profiled_lulesh(apps::Variant variant) {
  simrt::Machine machine(numasim::amd_magny_cours());
  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 200;
  Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 16,
                                 .pages_per_thread = 3,
                                 .timesteps = 6,
                                 .variant = variant});
  return profiler.snapshot();
}

TEST(Diff, FixResolvesTheHotVariables) {
  const SessionData base_data = profiled_lulesh(apps::Variant::kBaseline);
  const SessionData fixed_data = profiled_lulesh(apps::Variant::kBlockwise);
  const Analyzer before(base_data);
  const Analyzer after(fixed_data);
  const DiffReport report = diff_profiles(before, after);

  // Program level: lpi and M_r share both collapse.
  ASSERT_TRUE(report.lpi_before.has_value());
  ASSERT_TRUE(report.lpi_after.has_value());
  EXPECT_LT(*report.lpi_after, *report.lpi_before * 0.5);
  EXPECT_LT(report.mismatch_fraction_after,
            report.mismatch_fraction_before);

  // The master-inited arrays are resolved by the block-wise first touch.
  const auto resolved = report.resolved_variables();
  for (const char* name : {"x", "y", "z", "nodelist"}) {
    EXPECT_NE(std::find(resolved.begin(), resolved.end(), name),
              resolved.end())
        << name << " should be resolved";
  }

  // Rendering mentions the verdicts.
  const std::string text = render_diff(report);
  EXPECT_NE(text.find("RESOLVED"), std::string::npos);
  EXPECT_NE(text.find("lpi_NUMA"), std::string::npos);
  EXPECT_NE(text.find("resolved variables:"), std::string::npos);
}

TEST(Diff, IdenticalProfilesShowNoChange) {
  const SessionData data = profiled_lulesh(apps::Variant::kBaseline);
  const Analyzer analyzer(data);
  const DiffReport report = diff_profiles(analyzer, analyzer);
  EXPECT_EQ(report.mismatch_fraction_before,
            report.mismatch_fraction_after);
  EXPECT_TRUE(report.resolved_variables().empty());
  for (const VariableDelta& d : report.variables) {
    EXPECT_FALSE(d.only_before);
    EXPECT_FALSE(d.only_after);
    EXPECT_EQ(d.mismatch_fraction_before, d.mismatch_fraction_after);
  }
}

TEST(Diff, DisjointVariableSetsFlagged) {
  // Synthetic: one report has a variable the other lacks.
  SessionData a;
  a.domain_count = 2;
  a.totals.emplace_back();
  a.totals[0].per_domain.assign(2, 0);
  a.stores.emplace_back(2);
  Variable va;
  va.id = 0;
  va.name = "only_in_a";
  va.page_count = 1;
  va.variable_node = a.cct.child(kRootNode, NodeKind::kVariable, 0);
  a.variables.push_back(va);
  a.stores[0].add(va.variable_node, kMemorySamples, 5);
  a.stores[0].add(va.variable_node, kNumaMismatch, 5);

  SessionData b;
  b.domain_count = 2;
  b.totals.emplace_back();
  b.totals[0].per_domain.assign(2, 0);
  b.stores.emplace_back(2);
  Variable vb;
  vb.id = 0;
  vb.name = "only_in_b";
  vb.page_count = 1;
  vb.variable_node = b.cct.child(kRootNode, NodeKind::kVariable, 0);
  b.variables.push_back(vb);
  b.stores[0].add(vb.variable_node, kMemorySamples, 5);
  b.stores[0].add(vb.variable_node, kNumaMatch, 5);

  const Analyzer before(a);
  const Analyzer after(b);
  const DiffReport report = diff_profiles(before, after);
  ASSERT_EQ(report.variables.size(), 2u);
  bool saw_gone = false, saw_new = false;
  for (const VariableDelta& d : report.variables) {
    saw_gone |= d.only_before && d.name == "only_in_a";
    saw_new |= d.only_after && d.name == "only_in_b";
  }
  EXPECT_TRUE(saw_gone);
  EXPECT_TRUE(saw_new);
  const std::string text = render_diff(report);
  EXPECT_NE(text.find("gone"), std::string::npos);
  EXPECT_NE(text.find("new"), std::string::npos);
}

TEST(Diff, SortedByMismatchDelta) {
  const SessionData base_data = profiled_lulesh(apps::Variant::kBaseline);
  const SessionData fixed_data = profiled_lulesh(apps::Variant::kBlockwise);
  const Analyzer before(base_data);
  const Analyzer after(fixed_data);
  const DiffReport report = diff_profiles(before, after);
  for (std::size_t i = 0; i + 1 < report.variables.size(); ++i) {
    const auto delta = [](const VariableDelta& d) {
      return std::abs(d.mismatch_fraction_before -
                      d.mismatch_fraction_after);
    };
    EXPECT_GE(delta(report.variables[i]), delta(report.variables[i + 1]));
  }
}

}  // namespace
}  // namespace numaprof::core
