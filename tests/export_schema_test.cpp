// Unit tests for the bundled artifact validators (core/export/schema.hpp):
// the JSON parser itself, then each per-format checker against minimal
// valid documents and targeted corruptions. The export_test golden suite
// covers real artifacts; this file covers the checker's own behaviour.
#include <gtest/gtest.h>

#include <string>

#include "core/export/schema.hpp"

namespace numaprof::core {
namespace {

TEST(JsonParser, ParsesScalarsArraysAndObjects) {
  std::string error;
  const auto doc = parse_json(
      R"({"a":1,"b":-2.5e3,"c":"x\ny","d":[true,false,null],"e":{}})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_EQ(doc->kind, JsonNode::Kind::kObject);
  ASSERT_EQ(doc->members.size(), 5u);
  EXPECT_DOUBLE_EQ(doc->find("a")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->find("b")->number, -2500.0);
  EXPECT_EQ(doc->find("c")->string, "x\ny");
  ASSERT_EQ(doc->find("d")->items.size(), 3u);
  EXPECT_TRUE(doc->find("d")->items[0].boolean);
  EXPECT_EQ(doc->find("d")->items[2].kind, JsonNode::Kind::kNull);
  EXPECT_EQ(doc->find("e")->members.size(), 0u);
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(JsonParser, PreservesMemberOrderAndUnescapes) {
  std::string error;
  const auto doc =
      parse_json(R"({"z":1,"a":2,"s":"q\"\\\tA"})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->members[0].first, "z");
  EXPECT_EQ(doc->members[1].first, "a");
  EXPECT_EQ(doc->find("s")->string, "q\"\\\tA");
}

TEST(JsonParser, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",
      "{",
      "{\"a\":}",
      "[1,]",
      "{\"a\":1} trailing",
      "\"unterminated",
      "{\"a\" 1}",
      "01abc",
      "{\"a\":1,}",
      "nul",
      "\"bad \x01 control\"",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(parse_json(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
    EXPECT_EQ(json_well_formed(text).size(), 1u) << text;
  }
  EXPECT_TRUE(json_well_formed("  {\"ok\":true}\n").empty());
}

TEST(SchemaCheck, TraceJsonAcceptsMinimalValidDocument) {
  const std::string trace = R"({"displayTimeUnit":"ns","traceEvents":[
    {"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"p"}},
    {"ph":"C","pid":0,"tid":0,"ts":5,"name":"c","args":{"v":1}},
    {"ph":"X","pid":0,"tid":1,"ts":5,"dur":2,"name":"slice"},
    {"ph":"i","pid":0,"tid":1,"ts":7,"s":"t","name":"mark"}
  ]})";
  EXPECT_TRUE(check_trace_json(trace).empty());
}

TEST(SchemaCheck, TraceJsonFlagsStructuralProblems) {
  EXPECT_EQ(check_trace_json("not json").size(), 1u);
  EXPECT_EQ(check_trace_json("[1,2]").size(), 1u);  // root must be object
  // Unknown phase, missing ts on a complete event, missing pid.
  const std::string bad = R"({"displayTimeUnit":"ns","traceEvents":[
    {"ph":"Q","pid":0,"name":"x"},
    {"ph":"X","pid":0,"tid":0,"name":"slice"},
    {"ph":"i","tid":0,"ts":1,"name":"mark"}
  ]})";
  const auto errors = check_trace_json(bad);
  EXPECT_GE(errors.size(), 3u);
}

TEST(SchemaCheck, SpeedscopeAcceptsMinimalValidDocument) {
  const std::string doc =
      R"({"$schema":"https://www.speedscope.app/file-format-schema.json",
          "shared":{"frames":[{"name":"a"},{"name":"b"}]},
          "profiles":[{"type":"sampled","name":"p","unit":"none",
                       "startValue":0,"endValue":3,
                       "samples":[[0],[0,1]],"weights":[1,2]}]})";
  EXPECT_TRUE(check_speedscope_json(doc).empty());
}

TEST(SchemaCheck, SpeedscopeFlagsIndexAndLengthErrors) {
  // Frame index 9 out of range; samples/weights length mismatch; wrong
  // profile type; empty profiles.
  const std::string bad =
      R"({"$schema":"https://www.speedscope.app/file-format-schema.json",
          "shared":{"frames":[{"name":"a"}]},
          "profiles":[{"type":"evented","name":"p","unit":"none",
                       "startValue":0,"endValue":3,
                       "samples":[[9],[0]],"weights":[1]}]})";
  const auto errors = check_speedscope_json(bad);
  EXPECT_GE(errors.size(), 3u);
  EXPECT_EQ(
      check_speedscope_json(
          R"({"$schema":"x","shared":{"frames":[]},"profiles":[]})")
          .size(),
      2u);  // unexpected $schema + empty profiles
}

TEST(SchemaCheck, CollapsedStacksValidatesLineGrammar) {
  EXPECT_TRUE(check_collapsed_stacks("").empty());
  EXPECT_TRUE(check_collapsed_stacks("a;b;c 10\nroot 5\n").empty());
  EXPECT_EQ(check_collapsed_stacks("no-weight\n").size(), 1u);
  EXPECT_EQ(check_collapsed_stacks("a;b -3\n").size(), 1u);
  EXPECT_EQ(check_collapsed_stacks("a;;b 3\n").size(), 1u);
  EXPECT_EQ(check_collapsed_stacks(";a 3\n").size(), 1u);
  EXPECT_EQ(check_collapsed_stacks("a;b 1.5\n").size(), 1u);
}

TEST(SchemaCheck, HtmlReportRequiresPanesAndSelfContainment) {
  const std::string minimal =
      "<!DOCTYPE html>\n<html><head><style>b{}</style></head><body>"
      "<section id=\"summary\"></section>"
      "<section id=\"code-centric\"></section>"
      "<section id=\"data-centric\"></section>"
      "<section id=\"address-centric\"><svg></svg></section>"
      "<section id=\"timeline\"></section>"
      "<section id=\"health\"></section>"
      "</body></html>";
  EXPECT_TRUE(check_html_report(minimal).empty());

  // Missing a pane.
  std::string missing = minimal;
  const auto pos = missing.find("id=\"health\"");
  missing.replace(pos, 11, "id=\"h\"");
  EXPECT_EQ(check_html_report(missing).size(), 1u);

  // External references are forbidden.
  const std::string external =
      minimal + "<script src=\"https://cdn.example/x.js\"></script>";
  EXPECT_FALSE(check_html_report(external).empty());
  EXPECT_FALSE(
      check_html_report(minimal + "<img src=\"http://e/x.png\">").empty());
  EXPECT_EQ(check_html_report("no doctype").size(), 10u);
}

TEST(SchemaCheck, ArtifactDispatchUsesFilenameSuffix) {
  EXPECT_EQ(check_artifact("run.trace.json", "{}").size(), 2u);
  EXPECT_TRUE(check_artifact("run.collapsed.txt", "a 1\n").empty());
  EXPECT_FALSE(check_artifact("run.speedscope.json", "{}").empty());
  EXPECT_FALSE(check_artifact("run.report.html", "x").empty());
  const auto unknown = check_artifact("run.csv", "a,b");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_NE(unknown[0].find("unknown artifact kind"), std::string::npos);
}

}  // namespace
}  // namespace numaprof::core
