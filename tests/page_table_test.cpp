#include <gtest/gtest.h>

#include "simos/page_table.hpp"

namespace numaprof::simos {
namespace {

TEST(PagePolicy, FirstTouchFollowsToucher) {
  const PolicySpec p = PolicySpec::first_touch();
  EXPECT_EQ(resolve_home(p, 0, 10, 4, 2), 2u);
  EXPECT_EQ(resolve_home(p, 9, 10, 4, 3), 3u);
}

TEST(PagePolicy, InterleaveRoundRobinByPage) {
  const PolicySpec p = PolicySpec::interleave();
  EXPECT_EQ(resolve_home(p, 0, 8, 4, 0), 0u);
  EXPECT_EQ(resolve_home(p, 1, 8, 4, 0), 1u);
  EXPECT_EQ(resolve_home(p, 5, 8, 4, 0), 1u);
  EXPECT_EQ(resolve_home(p, 7, 8, 4, 0), 3u);
}

TEST(PagePolicy, BindIgnoresToucher) {
  const PolicySpec p = PolicySpec::bind(2);
  EXPECT_EQ(resolve_home(p, 0, 8, 4, 3), 2u);
  EXPECT_EQ(resolve_home(PolicySpec::bind(9), 0, 8, 4, 0), 1u);  // mod 4
}

TEST(PagePolicy, BlockwiseEqualContiguousBlocks) {
  const PolicySpec p = PolicySpec::blockwise();
  // 8 pages over 4 domains: pages 0-1 -> 0, 2-3 -> 1, ...
  EXPECT_EQ(resolve_home(p, 0, 8, 4, 9), 0u);
  EXPECT_EQ(resolve_home(p, 1, 8, 4, 9), 0u);
  EXPECT_EQ(resolve_home(p, 2, 8, 4, 9), 1u);
  EXPECT_EQ(resolve_home(p, 7, 8, 4, 9), 3u);
}

TEST(PagePolicy, BlockwiseUnevenPagesClamped) {
  const PolicySpec p = PolicySpec::blockwise();
  // 3 pages over 4 domains never exceeds domain 3.
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_LT(resolve_home(p, i, 3, 4, 0), 4u);
  }
}

TEST(PagePolicy, ToString) {
  EXPECT_EQ(to_string(PolicySpec::first_touch()), "first-touch");
  EXPECT_EQ(to_string(PolicySpec::interleave()), "interleave");
  EXPECT_EQ(to_string(PolicySpec::bind(3)), "bind(domain 3)");
  EXPECT_EQ(to_string(PolicySpec::blockwise()), "blockwise");
}

TEST(PageTable, DefaultIsFirstTouch) {
  PageTable pt(4);
  EXPECT_EQ(pt.home_of(100, 2), 2u);
  // Sticky: a later toucher does not move the page.
  EXPECT_EQ(pt.home_of(100, 3), 2u);
}

TEST(PageTable, RegionPolicyApplies) {
  PageTable pt(4);
  pt.register_region(10, 8, PolicySpec::interleave());
  EXPECT_EQ(pt.home_of(10, 3), 0u);
  EXPECT_EQ(pt.home_of(11, 3), 1u);
  EXPECT_EQ(pt.home_of(17, 3), 3u);
  // Outside the region: first touch.
  EXPECT_EQ(pt.home_of(18, 3), 3u);
}

TEST(PageTable, OverlappingRegionThrows) {
  PageTable pt(4);
  pt.register_region(10, 8, PolicySpec::first_touch());
  EXPECT_THROW(pt.register_region(17, 2, PolicySpec::first_touch()),
               std::invalid_argument);
  EXPECT_THROW(pt.register_region(5, 6, PolicySpec::first_touch()),
               std::invalid_argument);
  // Adjacent is fine.
  EXPECT_NO_THROW(pt.register_region(18, 2, PolicySpec::first_touch()));
}

TEST(PageTable, UnregisterFreesPagesAndAllowsReuse) {
  PageTable pt(4);
  pt.register_region(10, 4, PolicySpec::bind(1));
  EXPECT_EQ(pt.home_of(10, 0), 1u);
  pt.unregister_region(10);
  EXPECT_FALSE(pt.query_home(10).has_value());  // home dropped
  // Reusable with a different policy.
  pt.register_region(10, 4, PolicySpec::bind(2));
  EXPECT_EQ(pt.home_of(10, 0), 2u);
}

TEST(PageTable, QueryHomeDoesNotAssign) {
  PageTable pt(4);
  // move_pages on an untouched page reports "not present" (§4.1).
  EXPECT_FALSE(pt.query_home(55).has_value());
  pt.home_of(55, 1);
  EXPECT_EQ(pt.query_home(55).value(), 1u);
}

TEST(PageTable, SetRegionPolicyBeforeFirstTouch) {
  PageTable pt(4);
  pt.register_region(0, 4, PolicySpec::first_touch());
  EXPECT_TRUE(pt.set_region_policy(2, PolicySpec::bind(3)));
  EXPECT_EQ(pt.home_of(1, 0), 3u);
  EXPECT_FALSE(pt.set_region_policy(100, PolicySpec::bind(0)));
}

TEST(PageTable, SetRegionPolicyKeepsExistingHomes) {
  PageTable pt(4);
  pt.register_region(0, 4, PolicySpec::first_touch());
  pt.home_of(0, 1);  // touched -> domain 1
  pt.set_region_policy(0, PolicySpec::bind(3));
  EXPECT_EQ(pt.home_of(0, 2), 1u);  // unchanged
  EXPECT_EQ(pt.home_of(1, 2), 3u);  // new policy for untouched pages
}

TEST(PageTable, MigrateOverridesHome) {
  PageTable pt(4);
  pt.home_of(7, 0);
  pt.migrate(7, 3);
  EXPECT_EQ(pt.query_home(7).value(), 3u);
}

TEST(PageTable, ProtectionLifecycle) {
  PageTable pt(4);
  pt.register_region(0, 4, PolicySpec::first_touch());
  EXPECT_FALSE(pt.any_protected());
  pt.protect_range(0, 4);
  EXPECT_TRUE(pt.any_protected());
  EXPECT_TRUE(pt.is_protected(0));
  EXPECT_TRUE(pt.is_protected(3));
  EXPECT_FALSE(pt.is_protected(4));
  pt.unprotect(0);
  EXPECT_FALSE(pt.is_protected(0));
  EXPECT_TRUE(pt.any_protected());
  for (PageId p = 1; p < 4; ++p) pt.unprotect(p);
  EXPECT_FALSE(pt.any_protected());
  // Idempotent unprotect.
  pt.unprotect(0);
  EXPECT_FALSE(pt.any_protected());
}

TEST(PageTable, UnregisterClearsProtection) {
  PageTable pt(4);
  pt.register_region(0, 4, PolicySpec::first_touch());
  pt.protect_range(0, 4);
  pt.unregister_region(0);
  EXPECT_FALSE(pt.any_protected());
}

TEST(PageTable, TouchedPagesCount) {
  PageTable pt(2);
  EXPECT_EQ(pt.touched_pages(), 0u);
  pt.home_of(1, 0);
  pt.home_of(2, 0);
  pt.home_of(1, 1);  // repeat
  EXPECT_EQ(pt.touched_pages(), 2u);
}

TEST(PageTable, PlacementHistogramCountsTouchedPages) {
  PageTable pt(4);
  pt.register_region(0, 8, PolicySpec::interleave());
  for (PageId p = 0; p < 6; ++p) pt.home_of(p, 0);  // touch 6 of 8
  const auto histogram = pt.placement_histogram();
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[0], 2u);  // pages 0, 4
  EXPECT_EQ(histogram[1], 2u);  // pages 1, 5
  EXPECT_EQ(histogram[2], 1u);  // page 2
  EXPECT_EQ(histogram[3], 1u);  // page 3
  std::uint64_t total = 0;
  for (const auto h : histogram) total += h;
  EXPECT_EQ(total, pt.touched_pages());
}

// Property: under interleave, an N-page region spreads pages across all
// domains within one page of perfectly even.
class InterleaveBalance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterleaveBalance, PagesSpreadEvenly) {
  const std::uint64_t pages = GetParam();
  const std::uint32_t domains = 4;
  PageTable pt(domains);
  pt.register_region(0, pages, PolicySpec::interleave());
  std::vector<std::uint64_t> counts(domains, 0);
  for (PageId p = 0; p < pages; ++p) ++counts[pt.home_of(p, 0)];
  const auto [min, max] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LE(*max - *min, 1u) << pages << " pages";
}

INSTANTIATE_TEST_SUITE_P(Sizes, InterleaveBalance,
                         ::testing::Values(1u, 4u, 7u, 64u, 1001u));

}  // namespace
}  // namespace numaprof::simos
