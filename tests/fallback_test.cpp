// Mechanism fallback chain, availability probing, the sampling watchdog,
// and how degradation events flow into SessionData and the viewer.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"
#include "pmu/watchdog.hpp"
#include "support/faultinject.hpp"

namespace numaprof {
namespace {

using simrt::Machine;
using simrt::SimThread;
using simrt::Task;

void run_small_workload(Machine& m, std::uint32_t threads = 2,
                        int iterations = 1500) {
  parallel_region(m, threads, "work", {},
                  [&](SimThread& t, std::uint32_t index) -> Task {
                    const simos::VAddr v = t.malloc(4 * simos::kPageBytes, "a");
                    for (int i = 0; i < iterations; ++i) {
                      t.load(v + ((index + i) % 2048) * 8);
                      if (i % 64 == 0) co_await t.tick();
                    }
                    co_return;
                  });
}

TEST(FallbackChain, RequestedFirstSoftIbsLastAllUnique) {
  for (int m = 0; m < pmu::kMechanismCount; ++m) {
    const auto requested = static_cast<pmu::Mechanism>(m);
    const auto chain = pmu::fallback_chain(requested);
    ASSERT_EQ(chain.size(), static_cast<std::size_t>(pmu::kMechanismCount));
    EXPECT_EQ(chain.front(), requested);
    EXPECT_EQ(chain.back() == pmu::Mechanism::kSoftIbs ||
                  requested == pmu::Mechanism::kSoftIbs,
              true);
    auto sorted = chain;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(FallbackChain, AvailabilityProbeHonorsFaultPlan) {
  support::FaultPlan plan = support::FaultPlan::parse("init-fail=ibs,mrk");
  EXPECT_FALSE(pmu::mechanism_available(pmu::Mechanism::kIbs, plan));
  EXPECT_FALSE(pmu::mechanism_available(pmu::Mechanism::kMrk, plan));
  EXPECT_TRUE(pmu::mechanism_available(pmu::Mechanism::kPebs, plan));
  // Soft-IBS needs no hardware: available even under init-fail=*.
  support::FaultPlan all = support::FaultPlan::parse("init-fail=*");
  EXPECT_TRUE(pmu::mechanism_available(pmu::Mechanism::kSoftIbs, all));
}

TEST(FallbackChain, SpecNamesMatchCliNames) {
  EXPECT_EQ(pmu::spec_name(pmu::Mechanism::kIbs), "ibs");
  EXPECT_EQ(pmu::spec_name(pmu::Mechanism::kPebsLl), "pebs-ll");
  EXPECT_EQ(pmu::spec_name(pmu::Mechanism::kSoftIbs), "soft-ibs");
}

TEST(FallbackChain, IbsInitFailureDegradesToSpe) {
  // SPE matches IBS's capability profile, so it is the first substitute.
  support::FaultPlan plan = support::FaultPlan::parse("init-fail=ibs");
  const auto fb = pmu::make_sampler_with_fallback(
      pmu::EventConfig::mini(pmu::Mechanism::kIbs), plan);
  ASSERT_NE(fb.sampler, nullptr);
  EXPECT_EQ(fb.requested, pmu::Mechanism::kIbs);
  EXPECT_EQ(fb.used, pmu::Mechanism::kSpe);
  EXPECT_TRUE(fb.degraded());
  ASSERT_EQ(fb.unavailable.size(), 1u);
  EXPECT_EQ(fb.unavailable.front(), pmu::Mechanism::kIbs);
}

TEST(FallbackChain, IbsAndSpeFailuresDegradeToPebsLl) {
  support::FaultPlan plan = support::FaultPlan::parse("init-fail=ibs,spe");
  const auto fb = pmu::make_sampler_with_fallback(
      pmu::EventConfig::mini(pmu::Mechanism::kIbs), plan);
  ASSERT_NE(fb.sampler, nullptr);
  EXPECT_EQ(fb.used, pmu::Mechanism::kPebsLl);
  ASSERT_EQ(fb.unavailable.size(), 2u);
}

TEST(FallbackChain, EverythingFailingEndsAtSoftIbs) {
  support::FaultPlan plan =
      support::FaultPlan::parse("init-fail=ibs,spe,mrk,pebs,dear,pebs-ll");
  const auto fb = pmu::make_sampler_with_fallback(
      pmu::EventConfig::mini(pmu::Mechanism::kIbs), plan);
  EXPECT_EQ(fb.used, pmu::Mechanism::kSoftIbs);
  EXPECT_EQ(fb.unavailable.size(), 6u);
}

TEST(FallbackChain, NoFaultPlanMeansNoDegradation) {
  support::FaultPlan plan;  // disabled
  const auto fb = pmu::make_sampler_with_fallback(
      pmu::EventConfig::mini(pmu::Mechanism::kMrk), plan);
  EXPECT_FALSE(fb.degraded());
  EXPECT_EQ(fb.used, pmu::Mechanism::kMrk);
  EXPECT_TRUE(fb.unavailable.empty());
}

TEST(ProfilerFallback, RecordsDegradationEventsAndActualMechanism) {
  support::FaultPlan plan = support::FaultPlan::parse("init-fail=ibs");
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.faults = &plan;
  core::Profiler profiler(m, cfg);
  run_small_workload(m);
  const core::SessionData data = profiler.snapshot();

  EXPECT_EQ(data.requested_mechanism, pmu::Mechanism::kIbs);
  EXPECT_EQ(data.mechanism, pmu::Mechanism::kSpe);
  EXPECT_TRUE(data.degraded());
  const auto has_kind = [&](core::DegradationKind kind) {
    return std::any_of(data.degradations.begin(), data.degradations.end(),
                       [&](const core::DegradationEvent& e) {
                         return e.kind == kind;
                       });
  };
  EXPECT_TRUE(has_kind(core::DegradationKind::kMechanismUnavailable));
  EXPECT_TRUE(has_kind(core::DegradationKind::kMechanismFallback));
}

TEST(ProfilerFallback, ViewerLabelsActualMechanism) {
  support::FaultPlan plan =
      support::FaultPlan::parse("init-fail=ibs,spe,mrk,pebs,dear,pebs-ll");
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.faults = &plan;
  core::Profiler profiler(m, cfg);
  run_small_workload(m);
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  const std::string summary = viewer.program_summary();
  EXPECT_NE(summary.find("Soft-IBS"), std::string::npos);
  EXPECT_NE(summary.find("requested IBS"), std::string::npos);
  EXPECT_NE(summary.find("degraded"), std::string::npos);

  const std::string health = viewer.collection_health();
  EXPECT_NE(health.find("mechanism-fallback"), std::string::npos);
  EXPECT_NE(health.find("mechanism-unavailable"), std::string::npos);
}

TEST(ProfilerFallback, CollectionHealthDeduplicatesRepeatedEvents) {
  // A retry loop that degrades the same way N times is one fact about the
  // run: identical events collapse into one row with an "(xN)" suffix,
  // distinct events keep their own rows.
  core::SessionData data;
  core::DegradationEvent starvation;
  starvation.kind = core::DegradationKind::kPeriodRetuneStarvation;
  starvation.mechanism = pmu::Mechanism::kIbs;
  starvation.value = 4096;
  starvation.detail = "period halved";
  data.degradations.push_back(starvation);
  data.degradations.push_back(starvation);
  data.degradations.push_back(starvation);
  core::DegradationEvent fallback;
  fallback.kind = core::DegradationKind::kMechanismFallback;
  fallback.mechanism = pmu::Mechanism::kSoftIbs;
  fallback.detail = "substituted soft-ibs";
  data.degradations.push_back(fallback);

  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);
  const std::string health = viewer.collection_health();

  // One aggregated row for the triple, tagged with the repeat count.
  EXPECT_EQ(health.find("period halved"), health.rfind("period halved"))
      << health;
  EXPECT_NE(health.find("period halved (x3)"), std::string::npos) << health;
  // The distinct event stays its own row, with no repeat suffix.
  EXPECT_NE(health.find("substituted soft-ibs"), std::string::npos) << health;
  EXPECT_EQ(health.find("substituted soft-ibs (x"), std::string::npos)
      << health;
}

TEST(ProfilerFallback, DegradationsRoundTripThroughProfileFormat) {
  support::FaultPlan plan = support::FaultPlan::parse("init-fail=ibs");
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.faults = &plan;
  core::Profiler profiler(m, cfg);
  run_small_workload(m);
  const core::SessionData original = profiler.snapshot();

  std::stringstream stream;
  core::ProfileWriter().write(original, stream);
  const core::SessionData loaded = core::ProfileReader().read(stream).data;
  EXPECT_EQ(loaded.requested_mechanism, original.requested_mechanism);
  EXPECT_EQ(loaded.mechanism, original.mechanism);
  ASSERT_EQ(loaded.degradations.size(), original.degradations.size());
  for (std::size_t i = 0; i < original.degradations.size(); ++i) {
    EXPECT_EQ(loaded.degradations[i].kind, original.degradations[i].kind);
    EXPECT_EQ(loaded.degradations[i].mechanism,
              original.degradations[i].mechanism);
    EXPECT_EQ(loaded.degradations[i].value, original.degradations[i].value);
    EXPECT_EQ(loaded.degradations[i].detail, original.degradations[i].detail);
  }
}

TEST(ProfilerFaults, DroppedSamplesAreCountedAndReported) {
  support::FaultPlan plan = support::FaultPlan::parse("drop=1.0");
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  cfg.faults = &plan;
  core::Profiler profiler(m, cfg);
  run_small_workload(m);
  EXPECT_GT(profiler.sampler().dropped_samples(), 0u);
  const core::SessionData data = profiler.snapshot();
  // Every sample was eaten before attribution.
  for (const core::ThreadTotals& t : data.totals) {
    EXPECT_EQ(t.samples, 0u);
  }
  const bool reported = std::any_of(
      data.degradations.begin(), data.degradations.end(),
      [](const core::DegradationEvent& e) {
        return e.kind == core::DegradationKind::kSampleFaults && e.value > 0;
      });
  EXPECT_TRUE(reported);
}

TEST(Watchdog, StarvationHalvesPeriod) {
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 1 << 20;  // will never fire in a small run
  cfg.enable_watchdog = true;
  cfg.watchdog.check_interval = 200;
  cfg.watchdog.starvation_window = 500;
  cfg.watchdog.min_period = 8;
  core::Profiler profiler(m, cfg);
  run_small_workload(m, 2, 3000);
  const core::SessionData data = profiler.snapshot();

  const auto retunes = std::count_if(
      data.degradations.begin(), data.degradations.end(),
      [](const core::DegradationEvent& e) {
        return e.kind == core::DegradationKind::kPeriodRetuneStarvation;
      });
  EXPECT_GT(retunes, 0);
  // The live sampler period actually moved down.
  EXPECT_LT(data.sampling_period, std::uint64_t{1} << 20);
}

TEST(Watchdog, RunawayRateDoublesPeriod) {
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 1;  // every instruction: pathological overhead
  cfg.enable_watchdog = true;
  cfg.watchdog.check_interval = 200;
  cfg.watchdog.max_sample_rate = 0.05;
  core::Profiler profiler(m, cfg);
  run_small_workload(m, 2, 3000);
  const core::SessionData data = profiler.snapshot();

  const auto retunes = std::count_if(
      data.degradations.begin(), data.degradations.end(),
      [](const core::DegradationEvent& e) {
        return e.kind == core::DegradationKind::kPeriodRetuneOverhead;
      });
  EXPECT_GT(retunes, 0);
  EXPECT_GT(data.sampling_period, 1u);
}

TEST(Watchdog, QuietRunRecordsNoEvents) {
  Machine m(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 50;  // healthy rate for this workload size
  cfg.enable_watchdog = true;
  core::Profiler profiler(m, cfg);
  run_small_workload(m);
  const core::SessionData data = profiler.snapshot();
  EXPECT_TRUE(data.degradations.empty());
  EXPECT_FALSE(data.degraded());
}

}  // namespace
}  // namespace numaprof
