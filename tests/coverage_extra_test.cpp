// Fine-grained coverage of edge behaviours across modules: sampler period
// statistics, interconnect accounting, table rendering corners, trace
// phase thresholds, and page-table boundary conditions.
#include <gtest/gtest.h>

#include "apps/common.hpp"
#include "apps/distributions.hpp"
#include "core/trace.hpp"
#include "numasim/system.hpp"
#include "pmu/mechanisms.hpp"
#include "simrt/machine.hpp"
#include "support/table.hpp"

namespace numaprof {
namespace {

TEST(IbsJitter, InterSampleGapsStayWithinTheDocumentedSpread) {
  // +-12.5% jitter: every gap between consecutive IBS samples on a pure
  // instruction stream lies in [0.875, 1.125] x period.
  pmu::EventConfig cfg = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.period = 400;
  pmu::IbsSampler sampler(cfg);
  simrt::Machine m(numasim::test_machine(1, 1));
  m.add_observer(sampler);
  std::vector<std::uint64_t> sample_ops;
  sampler.set_sink([&](const pmu::Sample& s) {
    sample_ops.push_back(s.op_index);
  });
  m.spawn([](simrt::SimThread& t) -> simrt::Task {
    // Single-instruction batches: op_index has per-instruction resolution
    // (a batched exec() reports the batch-end op for every sample in it).
    for (int i = 0; i < 100'000; ++i) {
      t.exec(1);
      if (i % 128 == 0) co_await t.tick();
    }
  });
  m.run();
  ASSERT_GT(sample_ops.size(), 100u);
  for (std::size_t i = 1; i < sample_ops.size(); ++i) {
    const auto gap = sample_ops[i] - sample_ops[i - 1];
    EXPECT_GE(gap, 350u) << "gap " << i;
    EXPECT_LE(gap, 450u) << "gap " << i;
  }
}

TEST(PebsLl, ThresholdSweepMonotonicallyFiltersEvents) {
  // Higher latency thresholds qualify (weakly) fewer events.
  const auto events_at = [](numasim::Cycles threshold) {
    pmu::EventConfig cfg = pmu::EventConfig::mini(pmu::Mechanism::kPebsLl);
    cfg.period = 10;
    cfg.latency_threshold = threshold;
    pmu::PebsLlSampler sampler(cfg);
    simrt::Machine m(numasim::test_machine(2, 2));
    m.add_observer(sampler);
    m.spawn([](simrt::SimThread& t) -> simrt::Task {
      for (int i = 0; i < 3000; ++i) {
        t.load(simos::kHeapBase + (i % 700) * 64);
        if (i % 64 == 0) co_await t.tick();
      }
    });
    m.run();
    return sampler.events_counted();
  };
  const auto any = events_at(1);
  const auto l2ish = events_at(15);
  const auto dram = events_at(90);
  const auto absurd = events_at(100000);
  EXPECT_GE(any, l2ish);
  EXPECT_GE(l2ish, dram);
  EXPECT_GT(dram, 0u);
  EXPECT_EQ(absurd, 0u);
}

TEST(Interconnect, TransferAccountingPerDirectedLink) {
  numasim::System sys(numasim::test_machine(3, 1));
  // Domain 0 core reads pages homed in domains 1 and 2.
  sys.access(0, 1, 0x10000, false, 0);
  sys.access(0, 1, 0x20000, false, 10);
  sys.access(0, 2, 0x30000, false, 20);
  const auto& net = sys.interconnect();
  EXPECT_EQ(net.transfers(0, 1), 2u);
  EXPECT_EQ(net.transfers(0, 2), 1u);
  EXPECT_EQ(net.transfers(1, 0), 0u);  // response path not double-counted
  EXPECT_EQ(net.inbound_transfers(1), 2u);
  EXPECT_EQ(net.inbound_transfers(0), 0u);
  sys.reset_stats();
  EXPECT_EQ(sys.interconnect().transfers(0, 1), 0u);
}

TEST(Table, EmptyTableRendersHeaderOnly) {
  support::Table t({"a", "bb"});
  EXPECT_EQ(t.row_count(), 0u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,bb\n");
}

TEST(Table, NewlineCellsAreCsvQuoted) {
  support::Table t({"x"});
  t.add_row({"two\nlines"});
  EXPECT_NE(t.to_csv().find("\"two\nlines\""), std::string::npos);
}

TEST(TracePhases, ThresholdSweepChangesSegmentation) {
  // Alternating local / remote windows: a threshold below the remote
  // windows' fraction splits phases; a threshold of ~1 collapses them.
  std::vector<core::TraceEvent> events;
  for (std::uint32_t w = 0; w < 8; ++w) {
    for (int i = 0; i < 10; ++i) {
      core::TraceEvent e;
      e.time = 1000 * w + 10 * i + 1;
      e.mismatch = (w % 2 == 1);
      events.push_back(e);
    }
  }
  const core::TraceAnalysis analysis(events);
  EXPECT_GE(analysis.phases(8, 0.5).size(), 4u);
  EXPECT_EQ(analysis.phases(8, 1.1).size(), 1u);  // nothing is "heavy"
}

TEST(PageTable, ProtectRangeCoversUnregisteredPagesToo) {
  simos::PageTable pt(2);
  pt.protect_range(100, 3);  // no region registered: still protectable
  EXPECT_TRUE(pt.is_protected(101));
  pt.unprotect(100);
  pt.unprotect(101);
  pt.unprotect(102);
  EXPECT_FALSE(pt.any_protected());
}

TEST(PageTable, UnregisterUnknownRegionIsNoOp) {
  simos::PageTable pt(2);
  EXPECT_NO_THROW(pt.unregister_region(42));
}

TEST(Machine, HasFaultHandlerReflectsInstallation) {
  simrt::Machine m(numasim::test_machine(2, 2));
  EXPECT_FALSE(m.has_fault_handler());
  m.set_fault_handler([](const simrt::FaultEvent&) {});
  EXPECT_TRUE(m.has_fault_handler());
  m.set_fault_handler({});
  EXPECT_FALSE(m.has_fault_handler());
}

TEST(Topology, FirstCoreOfDomain) {
  const auto t = numasim::amd_magny_cours();
  EXPECT_EQ(t.first_core_of(0), 0u);
  EXPECT_EQ(t.first_core_of(3), 18u);
}

TEST(Distribution, InterleavedRunBalancesControllers) {
  simrt::Machine m(numasim::amd_magny_cours());
  const apps::DistributionRun run = apps::run_distribution(
      m, {.threads = 16,
          .pages_per_thread = 2,
          .sweeps = 2,
          .distribution = apps::Distribution::kInterleaved});
  // Requests spread across all 8 controllers.
  std::uint64_t nonzero = 0;
  for (const auto r : run.controller_requests) nonzero += r > 0;
  EXPECT_EQ(nonzero, 8u);
  EXPECT_LT(run.controller_imbalance, 1.5);
}

}  // namespace
}  // namespace numaprof
