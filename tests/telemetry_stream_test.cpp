// The telemetry sinks (core/telemetry_stream.hpp): JSONL round-trip
// fidelity, strict parse errors (numaprof::Error, kind kTelemetry, line
// numbers), the golden byte-identical "measurement health" pane, the
// degradation cross-check, and the TelemetryStreamer end to end against a
// live profiler run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/profiler.hpp"
#include "core/telemetry_stream.hpp"
#include "numasim/topology.hpp"
#include "support/error.hpp"
#include "support/telemetry.hpp"

namespace numaprof::core {
namespace {

using support::TelemetryCounter;
using support::TelemetryEvent;
using support::TelemetryEventKind;
using support::TelemetryHub;
using support::TelemetrySnapshot;

TelemetrySnapshot sample_snapshot() {
  TelemetryHub hub;
  hub.set_domain_count(2);
  support::TelemetryRing& r0 = hub.ring(0);
  r0.add(TelemetryCounter::kSamples, 100);
  r0.add(TelemetryCounter::kMemorySamples, 80);
  r0.add(TelemetryCounter::kDroppedSamples, 5);
  r0.add(TelemetryCounter::kMatchSamples, 60);
  r0.add(TelemetryCounter::kMismatchSamples, 20);
  r0.add_domain_sample(0, false);
  r0.add_domain_sample(1, true);
  support::TelemetryRing& r2 = hub.ring(2);
  r2.add(TelemetryCounter::kInstructions, 5000);
  TelemetryEvent event;
  event.kind = TelemetryEventKind::kMechanismFallback;
  event.tid = 0;
  event.time = 7;
  event.value = 5;
  event.set_detail("ibs -> soft-ibs \"quoted\"\n");
  r0.publish(event);
  return hub.snapshot(1234);
}

TEST(TelemetryJsonl, RoundTripsSnapshotAndEvents) {
  const TelemetrySnapshot snap = sample_snapshot();
  std::ostringstream os;
  write_snapshot_jsonl(snap, pmu::Mechanism::kSoftIbs, os);

  std::istringstream is(os.str());
  const TelemetryTrace trace = load_telemetry_trace(is);
  EXPECT_TRUE(trace.has_mechanism);
  EXPECT_EQ(trace.mechanism, pmu::Mechanism::kSoftIbs);
  ASSERT_EQ(trace.snapshots.size(), 1u);
  const TelemetrySnapshot& loaded = trace.snapshots[0];
  EXPECT_EQ(loaded.sequence, snap.sequence);
  EXPECT_EQ(loaded.time, 1234u);
  EXPECT_EQ(loaded.totals, snap.totals);
  EXPECT_EQ(loaded.domain_match, snap.domain_match);
  EXPECT_EQ(loaded.domain_mismatch, snap.domain_mismatch);
  ASSERT_EQ(loaded.threads.size(), 2u);
  EXPECT_EQ(loaded.threads[0].tid, 0u);
  EXPECT_EQ(loaded.threads[0].counters, snap.threads[0].counters);
  EXPECT_EQ(loaded.threads[1].tid, 2u);
  EXPECT_EQ(loaded.threads[1].counter(TelemetryCounter::kInstructions),
            5000u);

  // Events ride as separate lines; escaping survives the round trip.
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].kind, TelemetryEventKind::kMechanismFallback);
  EXPECT_EQ(trace.events[0].time, 7u);
  EXPECT_EQ(trace.events[0].value, 5u);
  EXPECT_EQ(trace.events[0].detail_view(), "ibs -> soft-ibs \"quoted\"\n");
}

TEST(TelemetryJsonl, StatusLineSummarizesSnapshot) {
  const std::string line =
      format_status_line(sample_snapshot(), pmu::Mechanism::kIbs);
  EXPECT_NE(line.find("[telemetry #1 t=1234] IBS"), std::string::npos) << line;
  EXPECT_NE(line.find("samples=100"), std::string::npos) << line;
  EXPECT_NE(line.find("drop=4.8%"), std::string::npos) << line;
  EXPECT_NE(line.find("M_l/M_r=60/20"), std::string::npos) << line;
  EXPECT_NE(line.find("events=1"), std::string::npos) << line;
}

TEST(TelemetryJsonl, MalformedLinesThrowTelemetryErrors) {
  const auto expect_parse_error = [](const std::string& text,
                                     const std::string& needle) {
    std::istringstream is(text);
    try {
      load_telemetry_trace(is);
      FAIL() << "expected a parse error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTelemetry);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_parse_error("{\"type\":\"snapshot\"", "line 1");
  expect_parse_error("\n{broken", "line 2");
  expect_parse_error("[1,2,3]", "must be a JSON object");
  expect_parse_error("{\"t\":1}", "require a string \"type\"");
  expect_parse_error("{\"type\":\"event\",\"t\":1}",
                     "require a string \"kind\"");
  expect_parse_error("{\"type\":\"event\",\"kind\":\"bogus\"}",
                     "unknown event kind");
  expect_parse_error("{\"type\":\"snapshot\",\"t\":-4}", "non-negative");
  expect_parse_error("{\"type\":\"snapshot\",\"mechanism\":\"x86\"}",
                     "unknown mechanism");
}

TEST(TelemetryJsonl, ToleratesUnknownKeysAndLineTypes) {
  std::istringstream is(
      "{\"type\":\"future-record\",\"x\":1}\n"
      "\n"
      "{\"type\":\"snapshot\",\"seq\":3,\"t\":9,\"totals\":"
      "{\"samples\":4,\"never-heard-of-it\":7},\"new-key\":[1,2]}\n");
  const TelemetryTrace trace = load_telemetry_trace(is);
  EXPECT_FALSE(trace.has_mechanism);
  ASSERT_EQ(trace.snapshots.size(), 1u);
  EXPECT_EQ(trace.snapshots[0].sequence, 3u);
  EXPECT_EQ(trace.snapshots[0].total(TelemetryCounter::kSamples), 4u);
  EXPECT_TRUE(trace.events.empty());
}

TEST(TelemetryJsonl, MissingFileThrowsWithPath) {
  try {
    load_telemetry_trace_file("/nonexistent/telemetry.jsonl");
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTelemetry);
    EXPECT_EQ(e.file(), "/nonexistent/telemetry.jsonl");
  }
}

TEST(TelemetryTraceFixture, FinalSnapshotIsLastInFileOrder) {
  const TelemetryTrace empty;
  EXPECT_EQ(empty.final_snapshot().time, 0u);
  EXPECT_TRUE(empty.final_snapshot().threads.empty());

  const TelemetryTrace trace = load_telemetry_trace_file(
      NUMAPROF_SOURCE_DIR "/tests/golden/telemetry_trace.jsonl");
  ASSERT_EQ(trace.snapshots.size(), 2u);
  EXPECT_EQ(trace.events.size(), 5u);
  EXPECT_EQ(trace.final_snapshot().time, 240000u);
  EXPECT_EQ(trace.final_snapshot().total(TelemetryCounter::kSamples), 1280u);
}

/// A profile whose degradation record agrees with the fixture trace:
/// one unavailable probe, one fallback, one retune, and sample faults.
SessionData matching_profile() {
  SessionData data;
  data.mechanism = pmu::Mechanism::kSoftIbs;
  DegradationEvent event;
  event.kind = DegradationKind::kMechanismUnavailable;
  event.mechanism = pmu::Mechanism::kIbs;
  data.degradations.push_back(event);
  event.kind = DegradationKind::kMechanismFallback;
  event.mechanism = pmu::Mechanism::kSoftIbs;
  data.degradations.push_back(event);
  event.kind = DegradationKind::kPeriodRetuneStarvation;
  event.value = 4096;
  data.degradations.push_back(event);
  event.kind = DegradationKind::kSampleFaults;
  event.value = 66;
  data.degradations.push_back(event);
  return data;
}

// The golden lock: the health pane (with and without the profile
// cross-check) must render byte-identically from the fixed fixture
// trace. Regenerate deliberately with NUMAPROF_REGEN_GOLDEN=1 and review
// the diff.
TEST(TelemetryHealthPane, GoldenRendering) {
  const TelemetryTrace trace = load_telemetry_trace_file(
      NUMAPROF_SOURCE_DIR "/tests/golden/telemetry_trace.jsonl");
  const SessionData profile = matching_profile();
  const std::string rendered = render_health_pane(trace) + "\n" +
                               render_health_pane(trace, &profile);

  const std::string golden_path =
      NUMAPROF_SOURCE_DIR "/tests/golden/telemetry_health.txt";
  if (std::getenv("NUMAPROF_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(rendered, want.str());
}

TEST(TelemetryHealthPane, DeduplicatesRepeatedIdenticalEvents) {
  // A watchdog that retunes the same way N times renders one row with an
  // "(xN)" suffix; the heading still reports the raw event count.
  TelemetryTrace trace;
  TelemetryEvent retune;
  retune.kind = TelemetryEventKind::kPeriodRetune;
  retune.tid = 1;
  retune.time = 500;
  retune.value = 2048;
  retune.set_detail("period 4096 -> 2048");
  trace.events.push_back(retune);
  trace.events.push_back(retune);
  trace.events.push_back(retune);
  TelemetryEvent start;
  start.kind = TelemetryEventKind::kThreadStart;
  start.tid = 3;
  start.time = 90;
  trace.events.push_back(start);

  const std::string pane = render_health_pane(trace);
  EXPECT_NE(pane.find("events (4):"), std::string::npos) << pane;
  EXPECT_EQ(pane.find("period 4096 -> 2048"),
            pane.rfind("period 4096 -> 2048"))
      << pane;
  EXPECT_NE(pane.find("period 4096 -> 2048 (x3)"), std::string::npos) << pane;
  EXPECT_NE(pane.find("[thread-start] t=90 tid=3"), std::string::npos) << pane;
  EXPECT_EQ(pane.find("tid=3 (x"), std::string::npos) << pane;

  // Events differing in any field (here: time) stay separate rows.
  TelemetryEvent later = retune;
  later.time = 900;
  trace.events.push_back(later);
  const std::string split = render_health_pane(trace);
  EXPECT_NE(split.find("t=900"), std::string::npos) << split;
  EXPECT_NE(split.find("(x3)"), std::string::npos) << split;
}

TEST(TelemetryHealthPane, CrossCheckFlagsDisagreement) {
  const TelemetryTrace trace = load_telemetry_trace_file(
      NUMAPROF_SOURCE_DIR "/tests/golden/telemetry_trace.jsonl");
  SessionData profile = matching_profile();
  const std::string agree = render_health_pane(trace, &profile);
  EXPECT_NE(agree.find("mechanism-fallback: telemetry 1, profile 1 [ok]"),
            std::string::npos)
      << agree;
  EXPECT_NE(agree.find("verdict: telemetry stream and profile degradations "
                       "agree"),
            std::string::npos)
      << agree;

  // Remove the fallback record: the pane must call out the mismatch.
  profile.degradations.erase(profile.degradations.begin() + 1);
  const std::string disagree = render_health_pane(trace, &profile);
  EXPECT_NE(disagree.find("mechanism-fallback: telemetry 1, profile 0 [!]"),
            std::string::npos)
      << disagree;
  EXPECT_NE(disagree.find("MISMATCH"), std::string::npos) << disagree;
}

// End to end: a profiler run with a live hub attached streams status
// lines and a JSONL trace whose reload cross-checks cleanly against the
// profile it was recorded with.
TEST(TelemetryStreamerTest, StreamsLiveRunAndCrossChecksCleanly) {
  simrt::Machine machine(numasim::test_machine(2, 2));
  TelemetryHub hub;
  machine.set_telemetry(&hub);

  ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  cfg.telemetry = &hub;
  Profiler profiler(machine, cfg);

  std::ostringstream status;
  std::ostringstream jsonl;
  TelemetryStreamer::Config stream_cfg;
  stream_cfg.interval_instructions = 500;
  stream_cfg.status = &status;
  stream_cfg.jsonl = &jsonl;
  stream_cfg.mechanism = profiler.sampler().mechanism();
  TelemetryStreamer streamer(hub, stream_cfg);
  machine.add_observer(streamer);

  simos::VAddr data = 0;
  parallel_region(machine, 1, "init", {},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    data = t.malloc(4 * simos::kPageBytes, "shared");
                    for (std::uint64_t i = 0; i < 4 * simos::kPageBytes;
                         i += 64) {
                      t.store(data + i);
                    }
                    co_return;
                  });
  parallel_region(machine, 4, "work", {},
                  [&](simrt::SimThread& t, std::uint32_t index) -> simrt::Task {
                    for (std::uint64_t i = 0; i < 512; ++i) {
                      t.load(data + ((index * 512 + i) * 64) %
                                        (4 * simos::kPageBytes));
                      co_await t.tick();
                    }
                  });

  streamer.flush(machine.elapsed());
  machine.remove_observer(streamer);
  const SessionData profile = profiler.snapshot();

  EXPECT_GE(streamer.snapshots_emitted(), 2u);
  EXPECT_NE(status.str().find("[telemetry #1"), std::string::npos);

  std::istringstream is(jsonl.str());
  const TelemetryTrace trace = load_telemetry_trace(is);
  EXPECT_EQ(trace.snapshots.size(), streamer.snapshots_emitted());
  const TelemetrySnapshot& last = trace.final_snapshot();
  EXPECT_GT(last.total(TelemetryCounter::kSamples), 0u);
  EXPECT_GT(last.total(TelemetryCounter::kInstructions), 0u);
  EXPECT_GT(last.total(TelemetryCounter::kFirstTouchTraps), 0u);
  EXPECT_GT(last.total(TelemetryCounter::kHeapRegistrations), 0u);
  // The live M_l/M_r mirror the profile's program totals exactly.
  EXPECT_EQ(last.total(TelemetryCounter::kMatchSamples) +
                last.total(TelemetryCounter::kMismatchSamples),
            last.total(TelemetryCounter::kMemorySamples));
  // Five threads ran (init + 4 workers observed as tids).
  EXPECT_GE(last.threads.size(), 4u);

  const std::string pane = render_health_pane(trace, &profile);
  EXPECT_NE(pane.find("verdict: telemetry stream and profile degradations "
                      "agree"),
            std::string::npos)
      << pane;
}

// Satellite: the status line's interval rate columns. With a previous
// snapshot the samples column carries "(+delta rate/kc)" and mem a bare
// "(+delta)"; a zero-length interval (same timestamp) keeps the delta but
// must never divide by zero into inf/nan.
TEST(TelemetryJsonl, StatusLineCarriesIntervalRates) {
  TelemetryHub hub;
  hub.ring(0).add(TelemetryCounter::kSamples, 100);
  hub.ring(0).add(TelemetryCounter::kMemorySamples, 40);
  const TelemetrySnapshot first = hub.snapshot(1000);
  hub.ring(0).add(TelemetryCounter::kSamples, 50);
  hub.ring(0).add(TelemetryCounter::kMemorySamples, 10);
  const TelemetrySnapshot second = hub.snapshot(3000);

  const std::string line =
      format_status_line(second, pmu::Mechanism::kIbs, &first);
  EXPECT_NE(line.find("samples=150 (+50 25.0/kc)"), std::string::npos)
      << line;
  EXPECT_NE(line.find("mem=50 (+10)"), std::string::npos) << line;

  // Without a previous snapshot the 3-arg overload matches the 2-arg one.
  EXPECT_EQ(format_status_line(second, pmu::Mechanism::kIbs, nullptr),
            format_status_line(second, pmu::Mechanism::kIbs));
}

TEST(TelemetryJsonl, StatusLineZeroElapsedIntervalOmitsRate) {
  TelemetryHub hub;
  hub.ring(0).add(TelemetryCounter::kSamples, 100);
  const TelemetrySnapshot first = hub.snapshot(5000);
  hub.ring(0).add(TelemetryCounter::kSamples, 7);
  // Same timestamp: exactly what a flush right after a periodic emit
  // produces.
  const TelemetrySnapshot second = hub.snapshot(5000);

  const std::string line =
      format_status_line(second, pmu::Mechanism::kIbs, &first);
  EXPECT_NE(line.find("samples=107 (+7)"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  EXPECT_EQ(line.find("/kc"), std::string::npos) << line;

  // Time moving backwards (clock skew across merged streams) is treated
  // the same as zero-elapsed.
  TelemetrySnapshot earlier = second;
  earlier.time = 4000;
  const std::string skew =
      format_status_line(earlier, pmu::Mechanism::kIbs, &first);
  EXPECT_EQ(skew.find("inf"), std::string::npos) << skew;
  EXPECT_EQ(skew.find("/kc"), std::string::npos) << skew;
}

// Satellite: the live status-line event echo collapses identical repeats
// into "(xN)" exactly like the health pane.
TEST(TelemetryJsonl, FormatEventLinesDeduplicatesRepeats) {
  std::vector<TelemetryEvent> events;
  TelemetryEvent retune;
  retune.kind = TelemetryEventKind::kPeriodRetune;
  retune.tid = 2;
  retune.time = 100;
  retune.value = 1024;
  retune.set_detail("period 2048 -> 1024");
  events.push_back(retune);
  events.push_back(retune);
  events.push_back(retune);
  TelemetryEvent start;
  start.kind = TelemetryEventKind::kThreadStart;
  start.tid = 9;
  start.time = 5;
  events.push_back(start);

  const std::vector<std::string> lines = format_event_lines(events);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("period 2048 -> 1024 (x3)"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("tid=9"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[1].find("(x"), std::string::npos) << lines[1];
}

TEST(TelemetryJsonl, StreamerEchoesDedupedEventsBelowStatusLine) {
  TelemetryHub hub;
  TelemetryEvent degraded;
  degraded.kind = TelemetryEventKind::kIngestDegraded;
  degraded.tid = 1;
  degraded.time = 50;
  degraded.value = 1;
  degraded.set_detail("wal append failed");
  hub.ring(1).publish(degraded);
  hub.ring(1).publish(degraded);

  std::ostringstream status;
  TelemetryStreamer::Config cfg;
  cfg.status = &status;
  TelemetryStreamer streamer(hub, cfg);
  streamer.flush(60);

  const std::string text = status.str();
  EXPECT_NE(text.find("[telemetry #1"), std::string::npos) << text;
  EXPECT_NE(text.find("(x2)"), std::string::npos) << text;
}

// Satellite: flush emits the final partial interval exactly once.
TEST(TelemetryStreamerTest, DoubleFlushEmitsFinalIntervalOnce) {
  TelemetryHub hub;
  hub.ring(0).add(TelemetryCounter::kSamples, 3);
  std::ostringstream jsonl;
  TelemetryStreamer::Config cfg;
  cfg.jsonl = &jsonl;
  TelemetryStreamer streamer(hub, cfg);

  streamer.flush(100);
  EXPECT_EQ(streamer.snapshots_emitted(), 1u);
  streamer.flush(100);
  streamer.flush(200);  // still nothing accumulated since the last emit
  EXPECT_EQ(streamer.snapshots_emitted(), 1u);

  std::istringstream is(jsonl.str());
  EXPECT_EQ(load_telemetry_trace(is).snapshots.size(), 1u);

  // New activity (observed instructions) re-arms the flush.
  hub.ring(0).add(TelemetryCounter::kSamples, 1);
  simrt::Machine machine(numasim::test_machine(2, 2));
  machine.add_observer(streamer);
  parallel_region(machine, 1, "tick", {},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    t.exec(10);  // below the interval: no periodic emit
                    co_return;
                  });
  machine.remove_observer(streamer);
  streamer.flush(machine.elapsed());
  EXPECT_EQ(streamer.snapshots_emitted(), 2u);
}

TEST(TelemetryStreamerTest, FlushOnIntervalBoundaryIsNoOp) {
  // When the run ends exactly on an interval boundary the periodic emit
  // already reported everything; the defensive flush must not duplicate
  // the final snapshot.
  TelemetryHub hub;
  std::ostringstream jsonl;
  TelemetryStreamer::Config cfg;
  cfg.interval_instructions = 10;
  cfg.jsonl = &jsonl;
  TelemetryStreamer streamer(hub, cfg);

  simrt::Machine machine(numasim::test_machine(2, 2));
  machine.add_observer(streamer);
  parallel_region(machine, 1, "work", {},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    t.exec(40);  // lands exactly on an interval boundary
                    co_return;
                  });
  machine.remove_observer(streamer);
  const std::uint64_t periodic = streamer.snapshots_emitted();
  ASSERT_GT(periodic, 0u);

  streamer.flush(machine.elapsed());
  const std::uint64_t after = streamer.snapshots_emitted();
  EXPECT_TRUE(after == periodic || after == periodic + 1);
  streamer.flush(machine.elapsed());
  EXPECT_EQ(streamer.snapshots_emitted(), after);
}

// Schema v2: per-domain hot-page/hot-variable rows and per-thread hot
// call paths survive the JSONL round trip.
TEST(TelemetryJsonl, HotCountersRoundTrip) {
  TelemetryHub hub;
  support::TelemetryRing& ring = hub.ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.add_hot(support::HotTableKind::kPages, 0x40, 1, i % 2 == 0);
  }
  ring.add_hot(support::HotTableKind::kVariables, 7, 0, true, "matrix[]");
  ring.add_hot(support::HotTableKind::kPaths, 12, 0, false,
               "main>solve>relax");
  const TelemetrySnapshot snap = hub.snapshot(999);
  ASSERT_EQ(snap.hot_pages.size(), 1u);
  ASSERT_EQ(snap.hot_vars.size(), 1u);
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].hot_paths.size(), 1u);

  std::ostringstream os;
  write_snapshot_jsonl(snap, pmu::Mechanism::kPebs, os);
  EXPECT_NE(os.str().find("\"v\":2"), std::string::npos);
  std::istringstream is(os.str());
  const TelemetryTrace trace = load_telemetry_trace(is);
  ASSERT_EQ(trace.snapshots.size(), 1u);
  const TelemetrySnapshot& loaded = trace.snapshots[0];
  EXPECT_EQ(loaded.hot_pages, snap.hot_pages);
  EXPECT_EQ(loaded.hot_vars, snap.hot_vars);
  ASSERT_EQ(loaded.threads.size(), 1u);
  EXPECT_EQ(loaded.threads[0].hot_paths, snap.threads[0].hot_paths);
  EXPECT_EQ(loaded.hot_vars[0].label, "matrix[]");
  EXPECT_EQ(loaded.threads[0].hot_paths[0].label, "main>solve>relax");
}

// Satellite: every malformed hot-* shape names the 1-based line, both in
// the message and in the structured line() accessor.
TEST(TelemetryJsonl, MalformedHotShapesNameTheLine) {
  const auto expect_error_on_line = [](const std::string& text,
                                       std::size_t line,
                                       const std::string& needle) {
    std::istringstream is(text);
    try {
      load_telemetry_trace(is);
      FAIL() << "expected a parse error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTelemetry);
      EXPECT_EQ(e.line(), line) << e.what();
      const std::string want = "line " + std::to_string(line);
      EXPECT_NE(std::string(e.what()).find(want), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error_on_line(
      "{\"type\":\"snapshot\",\"t\":1,\"hot-pages\":7}\n", 1, "array");
  expect_error_on_line(
      "\n{\"type\":\"snapshot\",\"t\":1,\"hot-vars\":{\"k\":1}}\n", 2,
      "array");
  expect_error_on_line(
      "{\"type\":\"snapshot\",\"t\":1,\"hot-pages\":[4]}\n", 1, "object");
  expect_error_on_line(
      "{\"type\":\"snapshot\",\"t\":1,\"hot-vars\":[{\"label\":3}]}\n", 1,
      "string");
  expect_error_on_line(
      "{\"type\":\"snapshot\",\"t\":1,\"threads\":[{\"tid\":0,"
      "\"hot-paths\":\"x\"}]}\n",
      1, "array");
  expect_error_on_line(
      "{\"type\":\"snapshot\",\"t\":1,\"hot-pages\":[{\"count\":-1}]}\n", 1,
      "non-negative");
}

TEST(TelemetryJsonl, AppendTraceLineReportsSnapshotAdds) {
  TelemetryTrace trace;
  EXPECT_FALSE(append_trace_line(trace, "", 1));
  EXPECT_FALSE(append_trace_line(
      trace, "{\"type\":\"event\",\"kind\":\"thread-start\",\"t\":1}", 2));
  EXPECT_TRUE(append_trace_line(
      trace, "{\"type\":\"snapshot\",\"seq\":1,\"t\":10}", 3));
  EXPECT_FALSE(
      append_trace_line(trace, "{\"type\":\"future-thing\"}", 4));
  EXPECT_EQ(trace.snapshots.size(), 1u);
  EXPECT_EQ(trace.events.size(), 1u);

  try {
    append_trace_line(trace, "{broken", 41, "spool.jsonl");
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTelemetry);
    EXPECT_EQ(e.line(), 41u);
    EXPECT_NE(std::string(e.what()).find("line 41"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace numaprof::core
