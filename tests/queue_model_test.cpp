#include <gtest/gtest.h>

#include <vector>

#include "numasim/queue_model.hpp"

namespace numaprof::numasim {
namespace {

TEST(QueueModel, FirstRequestInEpochHasNoDelay) {
  QueueModel q(4);
  EXPECT_EQ(q.enqueue(0), 0u);
  EXPECT_EQ(q.enqueue(5000), 0u);  // fresh epoch
}

TEST(QueueModel, BackToBackRequestsQueue) {
  QueueModel q(4);
  EXPECT_EQ(q.enqueue(0), 0u);
  EXPECT_EQ(q.enqueue(0), 4u);   // behind one request
  EXPECT_EQ(q.enqueue(0), 8u);   // behind two
}

TEST(QueueModel, ElapsedTimeDrainsBacklog) {
  QueueModel q(4);
  q.enqueue(0);
  q.enqueue(0);
  // At t=6 the 2-request backlog (8 cycles) has partially drained.
  EXPECT_EQ(q.enqueue(6), 2u);
  // Fully drained later in the same epoch.
  EXPECT_EQ(q.enqueue(100), 0u);
}

TEST(QueueModel, OrderInsensitiveAcrossEpochs) {
  // Two interleavings of the same timestamp multiset produce identical
  // total delay when the timestamps fall in distinct epochs.
  const std::vector<Cycles> forward = {100, 2000, 4000};
  const std::vector<Cycles> backward = {4000, 2000, 100};
  QueueModel a(4), b(4);
  Cycles total_a = 0, total_b = 0;
  for (const Cycles t : forward) total_a += a.enqueue(t);
  for (const Cycles t : backward) total_b += b.enqueue(t);
  EXPECT_EQ(total_a, total_b);
}

TEST(QueueModel, StatsAccumulate) {
  QueueModel q(4);
  q.enqueue(0);
  q.enqueue(0);
  EXPECT_EQ(q.requests(), 2u);
  EXPECT_GT(q.delay_stats().max(), 0.0);
  q.reset_stats();
  EXPECT_EQ(q.requests(), 0u);
  EXPECT_EQ(q.delay_stats().count(), 0u);
}

TEST(QueueModel, ZeroServiceClampedToOne) {
  QueueModel q(0);
  EXPECT_EQ(q.service(), 1u);
}

// Property: delay never exceeds (same-epoch demand) * service.
class QueueLoad : public ::testing::TestWithParam<int> {};

TEST_P(QueueLoad, DelayBoundedBySameEpochDemand) {
  const int burst = GetParam();
  QueueModel q(4);
  Cycles max_delay = 0;
  for (int i = 0; i < burst; ++i) {
    max_delay = std::max(max_delay, q.enqueue(10));
  }
  EXPECT_LE(max_delay, static_cast<Cycles>(burst) * 4);
  if (static_cast<Cycles>(burst - 1) * 4 > 10) {
    EXPECT_GE(max_delay, static_cast<Cycles>(burst - 1) * 4 - 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Bursts, QueueLoad,
                         ::testing::Values(1, 2, 8, 64, 256));

// Closed-loop property: when the "thread" stalls for the returned delay,
// per-request delay stabilizes instead of growing without bound.
TEST(QueueModel, ClosedLoopSelfLimits) {
  QueueModel q(4, 1024);
  Cycles clock = 0;
  Cycles last_delay = 0;
  for (int i = 0; i < 10000; ++i) {
    last_delay = q.enqueue(clock);
    clock += 10 + last_delay;  // thread pays its own queueing delay
  }
  EXPECT_LT(last_delay, 4096u);  // bounded by ~the epoch span, not runaway
}

}  // namespace
}  // namespace numaprof::numasim
