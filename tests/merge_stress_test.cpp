// Concurrency stress tests for the parallel analysis pipeline. Suites are
// named PipelineStress* so the CI thread-sanitizer matrix entry (which runs
// ctest -R '...|Pipeline|...') exercises them under TSan: the interesting
// failure mode here is not a wrong sum but a data race in the pool's batch
// hand-off or the merge's row partitioning.
//
// Everything is deterministic: adversarial inputs come from seeded
// support::Rng streams, and every parallel result is compared bitwise
// against the serial reference path — repeatedly, so rare interleavings
// get more chances to go wrong under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/session.hpp"
#include "core/viewer.hpp"
#include "support/rng.hpp"
#include "support/threadpool.hpp"

namespace numaprof::core {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string profile_bytes(const SessionData& data) {
  std::ostringstream os;
  ProfileWriter().write(data, os);
  return os.str();
}

/// A session whose per-thread shards have ADVERSARIAL sizes: completely
/// empty threads, single-sample threads, and one huge thread — the worst
/// case for a pre-partitioned index space, where stealing must rebalance.
SessionData adversarial_session(std::uint64_t seed) {
  // Thread t records touch_counts[t] metric touches (0 = empty shard).
  const std::vector<std::size_t> touch_counts = {0,    1, 5000, 0,
                                                 237, 1, 1024, 13};
  support::Rng rng(seed);
  SessionData data;
  data.machine_name = "stress-machine";
  data.domain_count = 4;
  data.core_count = 8;
  data.mechanism = pmu::Mechanism::kIbs;
  data.requested_mechanism = pmu::Mechanism::kIbs;
  data.sampling_period = 64;

  for (std::uint32_t f = 0; f < 4; ++f) {
    data.frames.push_back(simrt::FrameInfo{
        .name = "stress_fn" + std::to_string(f),
        .file = "stress.cpp",
        .line = 7 * f,
        .kind = simrt::FrameKind::kFunction});
  }
  const NodeId alloc = data.cct.child(kRootNode, NodeKind::kAllocation, 0);
  std::vector<NodeId> leaves;
  for (std::uint32_t f = 0; f < 4; ++f) {
    const NodeId frame = data.cct.child(alloc, NodeKind::kFrame, f);
    leaves.push_back(data.cct.child(frame, NodeKind::kVariable, f));
  }
  for (std::uint32_t v = 0; v < 3; ++v) {
    Variable var;
    var.id = v;
    var.kind = VariableKind::kHeap;
    var.name = "stress_var" + std::to_string(v);
    var.start = 0x40000 + 0x80000ull * v;
    var.page_count = 16;
    var.size = var.page_count * simos::kPageBytes;
    var.variable_node = leaves[v];
    data.variables.push_back(var);
  }

  for (std::uint32_t tid = 0; tid < touch_counts.size(); ++tid) {
    const std::size_t touches = touch_counts[tid];
    ThreadTotals t;
    t.per_domain.resize(data.domain_count);
    MetricStore store(data.domain_count);
    for (std::size_t i = 0; i < touches; ++i) {
      const NodeId node =
          static_cast<NodeId>(rng.next_below(data.cct.size()));
      const auto metric = static_cast<std::uint32_t>(
          rng.next_below(kFixedMetricCount + data.domain_count));
      store.add(node, metric, rng.next_double() * 131.0);
      t.samples += 1;
      t.memory_samples += rng.next_below(2);
      t.total_latency += rng.next_double() * 300.0;
      t.remote_latency += rng.next_double() * 150.0;
      t.per_domain[rng.next_below(data.domain_count)] += 1;
      if (i < 40) {  // bound addrcentric size; still adversarial mix
        BinKey key{
            .context = static_cast<simrt::FrameId>(rng.next_below(4)),
            .variable = static_cast<VariableId>(
                rng.next_below(data.variables.size())),
            .bin = static_cast<std::uint32_t>(rng.next_below(3)),
            .tid = tid};
        BinStats stats;
        stats.update(0x40000 + rng.next_below(1 << 18),
                     rng.next_double() * 100.0);
        data.address_centric.insert(key, stats);
      }
    }
    data.totals.push_back(std::move(t));
    data.stores.push_back(std::move(store));
  }
  return data;
}

std::string render_analysis(const SessionData& data, unsigned jobs) {
  PipelineOptions analyzer_options;
  analyzer_options.jobs = jobs;
  const Analyzer analyzer(data, analyzer_options);
  const Viewer viewer(analyzer);
  std::ostringstream os;
  os << viewer.program_summary() << viewer.data_centric_table(10).to_text()
     << viewer.code_centric_table(10).to_text()
     << viewer.domain_balance_table().to_text();
  return os.str();
}

// --- ThreadPool primitives under contention --------------------------

TEST(PipelineStressPool, ForEachIndexRunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    const std::size_t count = 1 + 977 * static_cast<std::size_t>(round);
    std::vector<std::atomic<int>> hits(count);
    pool.for_each_index(count,
                        [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " round " << round;
    }
  }
}

TEST(PipelineStressPool, SmallestIndexExceptionWins) {
  support::ThreadPool pool(8);
  const std::set<std::size_t> throwers = {3, 500, 1999};
  std::atomic<int> executed{0};
  try {
    pool.for_each_index(2000, [&](std::size_t i) {
      executed.fetch_add(1);
      if (throwers.count(i) != 0) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "exception must propagate";
  } catch (const std::runtime_error& e) {
    // The batch still completes every index, and the error surfaced is
    // the one a serial in-order loop would have hit first.
    EXPECT_STREQ(e.what(), "3");
    EXPECT_EQ(executed.load(), 2000);
  }
}

TEST(PipelineStressPool, ParallelForCoversIndexSpaceInGrainChunks) {
  support::ThreadPool pool(8);
  const std::size_t count = 4099;  // deliberately not a grain multiple
  const std::size_t grain = 64;
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  support::parallel_for(&pool, count, grain,
                        [&](std::size_t begin, std::size_t end) {
                          const std::lock_guard<std::mutex> lock(mutex);
                          chunks.emplace_back(begin, end);
                        });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LE(end - begin, grain);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, count);
}

TEST(PipelineStressPool, ParallelReduceIsBitwiseStableAcrossPoolSizes) {
  support::Rng rng(0x57285501);
  std::vector<double> values(10'000);
  for (double& v : values) v = rng.next_double() * 997.0;

  const auto reduce_with = [&](support::ThreadPool* pool) {
    return support::parallel_reduce(
        pool, values.size(), 64, 0.0,
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) acc += values[i];
        },
        [](double& result, double partial) { result += partial; });
  };

  const double serial = reduce_with(nullptr);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    support::ThreadPool pool(jobs);
    for (int round = 0; round < 10; ++round) {
      // Bitwise ==: chunk boundaries (and thus the combine order) depend
      // only on the grain, never on the pool size or schedule.
      ASSERT_EQ(reduce_with(&pool), serial)
          << "jobs=" << jobs << " round " << round;
    }
  }
}

// --- adversarial shard merges ----------------------------------------

TEST(PipelineStressMerge, AdversarialShardsMergeIdenticallyAcrossJobs) {
  const SessionData original = adversarial_session(0x57285502);
  const std::string dir = fresh_dir("numaprof_stress_shards");
  const std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  ASSERT_EQ(paths.size(), 8u);

  PipelineOptions serial_options;
  serial_options.jobs = 1;
  const std::string reference =
      profile_bytes(merge_profile_files(paths, serial_options).data);
  ASSERT_FALSE(reference.empty());

  // Repeat the parallel merge: each run re-races shard loading and the
  // per-thread column fold; every run must reproduce the serial bytes.
  for (int round = 0; round < 8; ++round) {
    PipelineOptions options;
    options.jobs = 8;
    const MergeResult merged = merge_profile_files(paths, options);
    ASSERT_EQ(merged.summary.files_merged, paths.size());
    ASSERT_EQ(profile_bytes(merged.data), reference) << "round " << round;
  }
}

TEST(PipelineStressMerge, LenientParallelMergeSkipsDamageLikeSerial) {
  const SessionData original = adversarial_session(0x57285503);
  const std::string dir = fresh_dir("numaprof_stress_damaged");
  std::vector<std::string> paths = ProfileWriter().write_thread_shards(original, dir);
  // Truncate one shard mid-file: lenient merges must skip or diagnose it
  // identically whether the load happened serially or on a worker.
  {
    std::ifstream in(paths[2], std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(paths[2], std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 3));
  }

  PipelineOptions serial_options;
  serial_options.lenient = true;
  serial_options.jobs = 1;
  const MergeResult serial = merge_profile_files(paths, serial_options);
  const std::string reference = profile_bytes(serial.data);

  for (int round = 0; round < 4; ++round) {
    PipelineOptions options;
    options.lenient = true;
    options.jobs = 8;
    const MergeResult merged = merge_profile_files(paths, options);
    ASSERT_EQ(merged.summary.files_merged, serial.summary.files_merged);
    ASSERT_EQ(merged.summary.skipped.size(),
              serial.summary.skipped.size());
    ASSERT_EQ(merged.summary.diagnostics.size(),
              serial.summary.diagnostics.size());
    ASSERT_EQ(profile_bytes(merged.data), reference) << "round " << round;
  }
}

// --- parallel analyzer under repetition ------------------------------

TEST(PipelineStressAnalyzer, RepeatedParallelAnalysisMatchesSerialText) {
  const SessionData data = adversarial_session(0x57285504);
  const std::string serial = render_analysis(data, 1);
  ASSERT_FALSE(serial.empty());
  for (int round = 0; round < 6; ++round) {
    ASSERT_EQ(render_analysis(data, 8), serial) << "round " << round;
  }
}

TEST(PipelineStressAnalyzer, SharedPoolServesConcurrentMerges) {
  // One pool reused across many Analyzer constructions: concurrent reuse
  // falls back to inline serial merging (the pool is busy), which must
  // still be bitwise identical.
  const SessionData data = adversarial_session(0x57285505);
  support::ThreadPool pool(4);
  const Analyzer serial(data);
  for (int round = 0; round < 10; ++round) {
    PipelineOptions pooled_options;
    pooled_options.pool = &pool;
    const Analyzer pooled(data, pooled_options);
    const MetricStore& a = pooled.merged();
    const MetricStore& b = serial.merged();
    ASSERT_EQ(a.width(), b.width());
    const std::size_t rows = std::max(a.node_capacity(), b.node_capacity());
    for (NodeId node = 0; node < rows; ++node) {
      for (std::uint32_t m = 0; m < a.width(); ++m) {
        ASSERT_EQ(a.get(node, m), b.get(node, m));
      }
    }
  }
}

}  // namespace
}  // namespace numaprof::core
