#include <gtest/gtest.h>

#include <vector>

#include "numasim/topology.hpp"
#include "pmu/mechanisms.hpp"
#include "simrt/machine.hpp"

namespace numaprof::pmu {
namespace {

using numasim::test_machine;
using simrt::Machine;
using simrt::ScopedFrame;
using simrt::SimThread;
using simrt::Task;

/// Runs a simple load loop under `sampler`, returns collected samples.
std::vector<Sample> run_loads(Sampler& sampler, std::uint64_t loads,
                              std::uint64_t exec_per_load = 0,
                              bool stores_instead = false) {
  Machine m(test_machine(2, 2));
  m.add_observer(sampler);
  std::vector<Sample> samples;
  sampler.set_sink([&](const Sample& s) { samples.push_back(s); });
  m.spawn([=](SimThread& t) -> Task {
    for (std::uint64_t i = 0; i < loads; ++i) {
      const simos::VAddr addr = simos::kHeapBase + i * 64;
      stores_instead ? t.store(addr) : t.load(addr);
      if (exec_per_load != 0) t.exec(exec_per_load);
      if (i % 64 == 0) co_await t.tick();
    }
  });
  m.run();
  return samples;
}

TEST(Capabilities, MatchesPaperTaxonomy) {
  // §3/§10: IBS and PEBS-LL report latency + data source; MRK and DEAR are
  // event-filtered; PEBS has imprecise IP; Soft-IBS is instrumentation.
  EXPECT_TRUE(capabilities_of(Mechanism::kIbs).reports_latency);
  EXPECT_TRUE(capabilities_of(Mechanism::kIbs).reports_data_source);
  EXPECT_TRUE(capabilities_of(Mechanism::kIbs).samples_all_instructions);
  EXPECT_FALSE(capabilities_of(Mechanism::kMrk).reports_latency);
  EXPECT_TRUE(capabilities_of(Mechanism::kMrk).event_filtered);
  EXPECT_FALSE(capabilities_of(Mechanism::kPebs).precise_ip);
  EXPECT_TRUE(capabilities_of(Mechanism::kDear).reports_latency);
  EXPECT_FALSE(capabilities_of(Mechanism::kDear).reports_data_source);
  EXPECT_TRUE(capabilities_of(Mechanism::kPebsLl).reports_data_source);
  EXPECT_TRUE(capabilities_of(Mechanism::kSoftIbs).software_instrumentation);
}

TEST(EventConfig, Table1Values) {
  EXPECT_EQ(EventConfig::table1(Mechanism::kIbs).period, 64u * 1024u);
  EXPECT_EQ(EventConfig::table1(Mechanism::kPebs).period, 1'000'000u);
  EXPECT_EQ(EventConfig::table1(Mechanism::kDear).event_name,
            "DATA_EAR_CACHE_LAT4");
  EXPECT_EQ(EventConfig::table1(Mechanism::kPebsLl).period, 500'000u);
  EXPECT_EQ(EventConfig::table1(Mechanism::kSoftIbs).period, 10'000'000u);
  EXPECT_GT(EventConfig::table1(Mechanism::kMrk).min_sample_gap, 0u);
}

TEST(Ibs, SamplesRoughlyEveryPeriod) {
  EventConfig cfg = EventConfig::mini(Mechanism::kIbs);
  cfg.period = 100;
  IbsSampler sampler(cfg);
  const auto samples = run_loads(sampler, 5000);
  // 5000 memory instructions, period 100 (+-12.5% jitter).
  EXPECT_NEAR(static_cast<double>(samples.size()), 50.0, 15.0);
  for (const Sample& s : samples) {
    EXPECT_TRUE(s.is_memory);
    EXPECT_TRUE(s.latency.has_value());
    EXPECT_TRUE(s.data_source.has_value());
    EXPECT_TRUE(s.ip_precise);
  }
}

TEST(Ibs, SamplesNonMemoryInstructionsToo) {
  EventConfig cfg = EventConfig::mini(Mechanism::kIbs);
  cfg.period = 100;
  IbsSampler sampler(cfg);
  // 9 ALU instructions per load: ~90% of samples should be non-memory.
  const auto samples = run_loads(sampler, 1000, 9);
  std::size_t non_memory = 0;
  for (const Sample& s : samples) non_memory += !s.is_memory;
  ASSERT_GT(samples.size(), 50u);
  EXPECT_GT(non_memory, samples.size() / 2);
}

TEST(Ibs, JitterAvoidsAliasing) {
  EventConfig cfg = EventConfig::mini(Mechanism::kIbs);
  cfg.period = 64;
  IbsSampler sampler(cfg);
  // Loop body is exactly 2 instructions (load + exec 1): a fixed period of
  // 64 would hit the same op kind forever; jitter must mix them.
  const auto samples = run_loads(sampler, 4000, 1);
  std::size_t memory = 0;
  for (const Sample& s : samples) memory += s.is_memory;
  EXPECT_GT(memory, 0u);
  EXPECT_LT(memory, samples.size());
}

TEST(Mrk, OnlySamplesL3Misses) {
  EventConfig cfg = EventConfig::mini(Mechanism::kMrk);
  cfg.min_sample_gap = 0;
  MrkSampler sampler(cfg);
  const auto samples = run_loads(sampler, 2000);
  ASSERT_GT(samples.size(), 0u);
  for (const Sample& s : samples) {
    EXPECT_TRUE(s.l3_miss);
    EXPECT_FALSE(s.latency.has_value());      // no latency in MRK mode
    EXPECT_FALSE(s.data_source.has_value());
  }
}

TEST(Mrk, RateLimitCapsSampleRate) {
  EventConfig fast = EventConfig::mini(Mechanism::kMrk);
  fast.min_sample_gap = 0;
  MrkSampler unlimited(fast);
  const auto many = run_loads(unlimited, 3000);

  EventConfig slow = EventConfig::mini(Mechanism::kMrk);
  slow.min_sample_gap = 50'000;
  MrkSampler limited(slow);
  const auto few = run_loads(limited, 3000);

  EXPECT_GT(many.size(), 4 * few.size());
  EXPECT_GT(few.size(), 0u);
}

TEST(Pebs, CorrectionYieldsPreciseIp) {
  EventConfig cfg = EventConfig::mini(Mechanism::kPebs);
  cfg.period = 50;
  cfg.pebs_skid_correction = true;
  cfg.skid_correction_work = 10;
  PebsSampler sampler(cfg);
  const auto samples = run_loads(sampler, 2000);
  ASSERT_GT(samples.size(), 10u);
  for (const Sample& s : samples) {
    EXPECT_TRUE(s.ip_precise);
    EXPECT_FALSE(s.latency.has_value());  // PEBS reports no latency
  }
}

TEST(Pebs, UncorrectedSkidAttributesToNextContext) {
  // Two alternating frames; every sampled access in frame A must be
  // attributed (uncorrected) to whatever executes next — half the time
  // frame B. With correction the leaf is always the access's own frame.
  const auto run = [](bool correct) {
    EventConfig cfg = EventConfig::mini(Mechanism::kPebs);
    cfg.period = 7;
    cfg.pebs_skid_correction = correct;
    cfg.skid_correction_work = 0;
    PebsSampler sampler(cfg);

    Machine m(test_machine(1, 1));
    m.add_observer(sampler);
    std::vector<Sample> samples;
    sampler.set_sink([&](const Sample& s) { samples.push_back(s); });
    const auto frame_a = m.frames().intern("A");
    const auto frame_b = m.frames().intern("B");
    m.spawn([=](SimThread& t) -> Task {
      for (int i = 0; i < 3000; ++i) {
        {
          ScopedFrame fa(t, frame_a);
          t.load(simos::kHeapBase + i * 64);  // all accesses in frame A
        }
        {
          ScopedFrame fb(t, frame_b);
          t.exec(1);  // frame B has only ALU work
        }
        if (i % 64 == 0) co_await t.tick();
      }
    });
    m.run();
    std::size_t memory_in_b = 0;
    std::size_t memory = 0;
    for (const Sample& s : samples) {
      if (!s.is_memory) continue;
      ++memory;
      memory_in_b += s.leaf_frame == frame_b;
    }
    return std::pair{memory, memory_in_b};
  };

  const auto [mem_corrected, wrong_corrected] = run(true);
  ASSERT_GT(mem_corrected, 20u);
  EXPECT_EQ(wrong_corrected, 0u);

  const auto [mem_skid, wrong_skid] = run(false);
  ASSERT_GT(mem_skid, 20u);
  EXPECT_GT(wrong_skid, 0u);  // off-by-1 mis-attribution observable
  for (const auto precise : {false}) {
    (void)precise;  // documented: uncorrected samples are marked imprecise
  }
}

TEST(Dear, FiltersByLatencyThresholdAndLoadsOnly) {
  EventConfig cfg = EventConfig::mini(Mechanism::kDear);
  cfg.period = 1;
  cfg.latency_threshold = 50;  // only misses qualify
  DearSampler sampler(cfg);
  const auto samples = run_loads(sampler, 500);
  ASSERT_GT(samples.size(), 0u);
  for (const Sample& s : samples) {
    EXPECT_GE(*s.latency, 50u);
    EXPECT_FALSE(s.is_write);
    EXPECT_FALSE(s.data_source.has_value());
  }
  // Stores never sampled.
  DearSampler sampler2(cfg);
  EXPECT_TRUE(run_loads(sampler2, 500, 0, /*stores=*/true).empty());
}

TEST(PebsLl, CountsEventsAndSamplesWithSources) {
  EventConfig cfg = EventConfig::mini(Mechanism::kPebsLl);
  cfg.period = 10;
  cfg.latency_threshold = 50;
  PebsLlSampler sampler(cfg);
  const auto samples = run_loads(sampler, 2000);
  ASSERT_GT(samples.size(), 0u);
  EXPECT_GT(sampler.events_counted(), samples.size());
  for (const Sample& s : samples) {
    EXPECT_TRUE(s.latency.has_value());
    EXPECT_TRUE(s.data_source.has_value());
  }
}

TEST(SoftIbs, RecordsEveryNthAccess) {
  EventConfig cfg = EventConfig::mini(Mechanism::kSoftIbs);
  cfg.period = 100;
  cfg.instrumentation_work = 0;
  SoftIbsSampler sampler(cfg);
  const auto samples = run_loads(sampler, 1000);
  EXPECT_EQ(samples.size(), 10u);  // exact: no jitter in software decimation
  for (const Sample& s : samples) {
    EXPECT_FALSE(s.latency.has_value());  // software sees addresses only
    EXPECT_FALSE(s.data_source.has_value());
  }
}

TEST(SoftIbs, FixedPeriodAliasesOnRegularLoops) {
  // §3: address sampling must "guarantee that memory accesses are
  // uniformly sampled". Soft-IBS decimates deterministically (every n-th
  // access), so when n shares a factor with a loop's accesses-per-
  // iteration, every sample lands on the SAME instruction — here a loop
  // of [load A, load B] sampled with an even period only ever sees one of
  // the two. Hardware mechanisms avoid this by randomizing low period
  // bits (cf. Ibs.JitterAvoidsAliasing above).
  const auto loads_of_b = [](std::uint64_t period) {
    EventConfig cfg = EventConfig::mini(Mechanism::kSoftIbs);
    cfg.period = period;
    cfg.instrumentation_work = 0;
    SoftIbsSampler sampler(cfg);
    Machine m(test_machine(1, 1));
    m.add_observer(sampler);
    std::size_t b_count = 0;
    std::size_t total = 0;
    sampler.set_sink([&](const Sample& s) {
      ++total;
      b_count += (s.addr % 128) != 0;  // B addresses are odd lines
    });
    m.spawn([](SimThread& t) -> Task {
      for (int i = 0; i < 8000; ++i) {
        t.load(simos::kHeapBase + (i % 50) * 128);       // A: even lines
        t.load(simos::kHeapBase + (i % 50) * 128 + 64);  // B: odd lines
        if (i % 64 == 0) co_await t.tick();
      }
    });
    m.run();
    return std::pair{b_count, total};
  };

  const auto [b_even, total_even] = loads_of_b(100);  // gcd(100, 2) = 2
  ASSERT_GT(total_even, 50u);
  // Perfect aliasing: every sample is the same op kind.
  EXPECT_TRUE(b_even == 0 || b_even == total_even);

  const auto [b_odd, total_odd] = loads_of_b(101);  // coprime with 2
  ASSERT_GT(total_odd, 50u);
  // Uniform: both ops sampled in fair proportion.
  EXPECT_GT(b_odd, total_odd / 4);
  EXPECT_LT(b_odd, 3 * total_odd / 4);
}

TEST(Spe, SamplesAtExactFixedPeriodWithLatency) {
  // ARM-SPE-style statistical profiling: operation sampling at a FIXED
  // interval (PMSIRR has no hardware jitter), every sampled memory op
  // annotated with latency + data source and a precise PC.
  EventConfig cfg = EventConfig::mini(Mechanism::kSpe);
  cfg.period = 100;
  SpeSampler sampler(cfg);
  const auto samples = run_loads(sampler, 5000);
  EXPECT_EQ(samples.size(), 50u);  // no jitter: exactly every 100 ops
  for (const Sample& s : samples) {
    EXPECT_TRUE(s.ip_precise);
    if (s.is_memory) {
      EXPECT_TRUE(s.latency.has_value());
      EXPECT_TRUE(s.data_source.has_value());
    }
  }
}

TEST(Spe, FixedPeriodAliasesOnRegularLoops) {
  // The behavioral difference from IBS: on a loop whose body length
  // divides the period, SPE's fixed interval locks onto ONE op kind —
  // IBS's jitter mixes them (Ibs.JitterAvoidsAliasing above).
  EventConfig cfg = EventConfig::mini(Mechanism::kSpe);
  cfg.period = 64;
  SpeSampler sampler(cfg);
  // Loop body is exactly 2 instructions (load + exec 1).
  const auto samples = run_loads(sampler, 4000, 1);
  ASSERT_GT(samples.size(), 50u);
  std::size_t memory = 0;
  for (const Sample& s : samples) memory += s.is_memory;
  EXPECT_TRUE(memory == 0 || memory == samples.size())
      << "fixed-period SPE mixed op kinds on a regular loop: " << memory
      << "/" << samples.size();
}

TEST(SoftIbs, WorksOnEveryEvaluationPlatform) {
  // Table 1, footnote 1: "Soft-IBS works on all of listed platforms" —
  // software instrumentation needs no PMU, so it must collect on every
  // registered preset (iterated by name: catalog positions shift as
  // presets are added, names do not).
  for (const std::string& name : numasim::preset_names()) {
    EventConfig cfg = EventConfig::mini(Mechanism::kSoftIbs);
    cfg.period = 64;
    cfg.instrumentation_work = 0;
    SoftIbsSampler sampler(cfg);
    Machine m(numasim::topology_by_name(name));
    m.add_observer(sampler);
    m.spawn([](SimThread& t) -> Task {
      for (int i = 0; i < 1000; ++i) {
        t.load(simos::kHeapBase + i * 64);
        if (i % 128 == 0) co_await t.tick();
      }
    });
    m.run();
    EXPECT_GT(sampler.samples_emitted(), 10u) << name;
  }
}

TEST(Factory, BuildsEveryMechanism) {
  for (const Mechanism mech :
       {Mechanism::kIbs, Mechanism::kMrk, Mechanism::kPebs, Mechanism::kDear,
        Mechanism::kPebsLl, Mechanism::kSoftIbs, Mechanism::kSpe}) {
    const auto sampler = make_sampler(EventConfig::mini(mech));
    ASSERT_NE(sampler, nullptr);
    EXPECT_EQ(sampler->mechanism(), mech);
  }
}

TEST(Sampler, StacksAreCopiedIntoSamples) {
  EventConfig cfg = EventConfig::mini(Mechanism::kIbs);
  cfg.period = 10;
  IbsSampler sampler(cfg);

  Machine m(test_machine(1, 1));
  m.add_observer(sampler);
  std::vector<Sample> samples;
  sampler.set_sink([&](const Sample& s) { samples.push_back(s); });
  const auto main_f = m.frames().intern("main");
  const auto leaf_f = m.frames().intern("leaf");
  m.spawn(
      [=](SimThread& t) -> Task {
        ScopedFrame leaf(t, leaf_f);
        for (int i = 0; i < 200; ++i) t.load(simos::kHeapBase + i * 64);
        co_return;
      },
      std::nullopt, {main_f});
  m.run();
  ASSERT_GT(samples.size(), 5u);
  for (const Sample& s : samples) {
    if (!s.is_memory) continue;
    ASSERT_EQ(s.stack.size(), 2u);
    EXPECT_EQ(s.stack[0], main_f);
    EXPECT_EQ(s.stack[1], leaf_f);
  }
}

}  // namespace
}  // namespace numaprof::pmu
