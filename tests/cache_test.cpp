#include <gtest/gtest.h>

#include "numasim/cache.hpp"
#include "numasim/topology.hpp"

namespace numaprof::numasim {
namespace {

CacheGeometry tiny() {
  return {.sets = 2, .ways = 2, .hit_latency = 3, .hash_index = false};
}

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache cache(tiny());
  EXPECT_FALSE(cache.access(100));
  EXPECT_TRUE(cache.access(100));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  SetAssocCache cache(tiny());
  // Lines 0, 2, 4 all map to set 0 (2 sets): third distinct line evicts LRU.
  cache.access(0);
  cache.access(2);
  cache.access(0);        // 0 is now MRU; 2 is LRU
  cache.access(4);        // evicts 2
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
}

TEST(SetAssocCache, DifferentSetsDoNotConflict) {
  SetAssocCache cache(tiny());
  cache.access(0);  // set 0
  cache.access(1);  // set 1
  cache.access(2);  // set 0
  cache.access(3);  // set 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(SetAssocCache, InvalidateSingleLine) {
  SetAssocCache cache(tiny());
  cache.access(7);
  ASSERT_TRUE(cache.contains(7));
  cache.invalidate(7);
  EXPECT_FALSE(cache.contains(7));
  cache.invalidate(999);  // not present: no-op
}

TEST(SetAssocCache, ClearDropsEverything) {
  SetAssocCache cache(tiny());
  cache.access(0);
  cache.access(1);
  cache.clear();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  // Stats preserved.
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(SetAssocCache, HitLatencyFromGeometry) {
  SetAssocCache cache(tiny());
  EXPECT_EQ(cache.hit_latency(), 3u);
}

TEST(SetAssocCache, NonPowerOfTwoSetsRoundUp) {
  SetAssocCache cache({.sets = 3, .ways = 1, .hit_latency = 1, .hash_index = false});
  // Rounded to 4 sets; lines 0..3 each get their own set with 1 way.
  for (LineAddr l = 0; l < 4; ++l) cache.access(l);
  for (LineAddr l = 0; l < 4; ++l) EXPECT_TRUE(cache.contains(l));
}

TEST(SetAssocCache, CapacityBytes) {
  const CacheGeometry g = {.sets = 64, .ways = 8, .hit_latency = 1};
  EXPECT_EQ(g.capacity_bytes(), 64u * 8u * kLineBytes);
}

// Property sweep: a working set equal to the cache capacity must fully
// reside after one pass, regardless of associativity.
class CacheResidency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheResidency, WorkingSetEqualToCapacityResides) {
  const std::uint32_t ways = GetParam();
  SetAssocCache cache(
      {.sets = 16, .ways = ways, .hit_latency = 1, .hash_index = false});
  const std::uint64_t lines = 16ULL * ways;
  for (std::uint64_t l = 0; l < lines; ++l) cache.access(l);
  for (std::uint64_t l = 0; l < lines; ++l) {
    EXPECT_TRUE(cache.contains(l)) << "line " << l << " ways " << ways;
  }
}

TEST_P(CacheResidency, OverCapacityThrashes) {
  const std::uint32_t ways = GetParam();
  SetAssocCache cache(
      {.sets = 16, .ways = ways, .hit_latency = 1, .hash_index = false});
  const std::uint64_t lines = 2ULL * 16 * ways;  // 2x capacity, streaming
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t l = 0; l < lines; ++l) cache.access(l);
  }
  // Streaming over 2x capacity with true LRU: second pass hits nothing.
  EXPECT_EQ(cache.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheResidency,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(SetAssocCache, IndexHashingDefeatsPowerOfTwoStrides) {
  // Lines at stride = set count alias into one set without hashing; with
  // hashing (the default) a same-capacity working set still resides.
  const std::uint32_t sets = 64;
  const std::uint32_t ways = 4;
  CacheGeometry hashed = {.sets = sets, .ways = ways, .hit_latency = 1};
  CacheGeometry plain = hashed;
  plain.hash_index = false;

  const auto resident_after_two_passes = [&](const CacheGeometry& g) {
    SetAssocCache cache(g);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::uint32_t i = 0; i < ways * 4; ++i) {
        cache.access(static_cast<LineAddr>(i) * sets);  // worst-case stride
      }
    }
    return cache.hits();
  };
  EXPECT_EQ(resident_after_two_passes(plain), 0u);     // pure thrash
  EXPECT_GT(resident_after_two_passes(hashed), 0u);    // hashing spreads
}

}  // namespace
}  // namespace numaprof::numasim
