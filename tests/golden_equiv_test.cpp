// Golden-equivalence lock on the parallel analysis pipeline (ISSUE: the
// --jobs N output must be byte-identical to the serial reference). For
// each of the four paper case studies (§8.1-8.4) this test:
//
//  1. renders the full viewer + advisor analysis with jobs=1 and jobs=4
//     and requires the TEXT to be byte-identical;
//  2. shards the session into per-thread measurement files, merges them
//     back with jobs=1 and jobs=4, and requires the re-serialized PROFILE
//     BYTES to be identical;
//  3. re-renders the advisor golden text through jobs=4 Analyzers and
//     compares it against the checked-in tests/golden/advisor_apps.txt —
//     the same golden the serial advisor test locks, so no new golden
//     files are introduced and serial/parallel cannot drift apart.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"

namespace numaprof {
namespace {

namespace fs = std::filesystem;

core::ProfilerConfig profiler_config() {
  core::ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  pc.event.period = 200;
  return pc;
}

struct CaseStudy {
  std::string name;
  std::function<core::SessionData()> run;
};

/// The four case-study apps with the same configurations the advisor
/// golden test profiles (baseline variants on amd_magny_cours).
std::vector<CaseStudy> case_studies() {
  return {
      {"minilulesh",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_minilulesh(m, {.threads = 16,
                                  .pages_per_thread = 12,
                                  .timesteps = 6,
                                  .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniamg",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_miniamg(m, {.threads = 16,
                               .rows_per_thread = 1024,
                               .relax_sweeps = 5,
                               .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniblackscholes",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_miniblackscholes(
             m, {.threads = 16,
                 .options_per_thread = 480,
                 .iterations = 96,
                 .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
      {"miniumt",
       [] {
         simrt::Machine m(numasim::amd_magny_cours());
         core::Profiler p(m, profiler_config());
         apps::run_miniumt(m, {.threads = 16,
                               .angles = 32,
                               .sweeps = 4,
                               .variant = apps::Variant::kBaseline});
         return p.snapshot();
       }},
  };
}

/// Everything analyze_profile prints for a session: program summary,
/// health, the three tables, timeline, and advisor recommendations.
std::string render_full_analysis(const core::SessionData& data,
                                 unsigned jobs) {
  numaprof::PipelineOptions analyzer_options;
  analyzer_options.jobs = jobs;
  const core::Analyzer analyzer(data, analyzer_options);
  const core::Viewer viewer(analyzer);
  std::ostringstream os;
  os << viewer.program_summary();
  const std::string health = viewer.collection_health();
  if (!health.empty()) os << "-- collection health --\n" << health;
  os << "\n"
     << viewer.data_centric_table(10).to_text() << "\n"
     << viewer.code_centric_table(10).to_text() << "\n"
     << viewer.domain_balance_table().to_text() << "\n";
  const std::string timeline = viewer.trace_timeline();
  if (!timeline.empty()) os << timeline << "\n";
  const core::Advisor advisor(analyzer);
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    os << rec.variable_name << ": " << to_string(rec.action) << "\n  "
       << rec.rationale << "\n";
  }
  return os.str();
}

std::string profile_bytes(const core::SessionData& data) {
  std::ostringstream os;
  core::ProfileWriter().write(data, os);
  return os.str();
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// One advisor golden entry rendered through an Analyzer built with
/// `jobs` participants — the format of tests/golden/advisor_apps.txt.
std::string advise(const std::string& title, const core::SessionData& data,
                   unsigned jobs) {
  numaprof::PipelineOptions analyzer_options;
  analyzer_options.jobs = jobs;
  const core::Analyzer analyzer(data, analyzer_options);
  const core::Advisor advisor(analyzer);
  std::ostringstream os;
  os << "== " << title << " ==\n"
     << "warrants_optimization: "
     << (analyzer.program().warrants_optimization ? "yes" : "no") << "\n";
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    os << rec.variable_name << ": " << to_string(rec.action) << " ["
       << to_string(rec.guiding.kind) << "]\n";
  }
  return os.str();
}

TEST(GoldenEquiv, ParallelAnalysisTextMatchesSerialForAllCaseStudies) {
  for (const CaseStudy& app : case_studies()) {
    SCOPED_TRACE(app.name);
    const core::SessionData data = app.run();
    const std::string serial = render_full_analysis(data, 1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(render_full_analysis(data, 4), serial)
        << app.name << ": --jobs 4 output diverged from --jobs 1";
  }
}

TEST(GoldenEquiv, ParallelShardMergeBytesMatchSerialForAllCaseStudies) {
  // Parameterized over the shard encoding: text and binary measurement
  // files must merge to the same session, at every jobs value.
  for (const CaseStudy& app : case_studies()) {
    const core::SessionData data = app.run();
    std::string text_merge_bytes;
    for (const ProfileFormat format :
         {ProfileFormat::kText, ProfileFormat::kBinary}) {
      const bool binary = format == ProfileFormat::kBinary;
      const char* format_name = binary ? "binary" : "text";
      SCOPED_TRACE(app.name + std::string("/") + format_name);
      const std::string dir = fresh_dir("numaprof_equiv_" + app.name + "_" +
                                        format_name);
      const std::vector<std::string> paths =
          core::ProfileWriter(format).write_thread_shards(data, dir);
      ASSERT_FALSE(paths.empty());

      numaprof::PipelineOptions serial_options;
      serial_options.jobs = 1;
      const core::MergeResult serial =
          core::merge_profile_files(paths, serial_options);
      numaprof::PipelineOptions parallel_options;
      parallel_options.jobs = 4;
      const core::MergeResult parallel =
          core::merge_profile_files(paths, parallel_options);

      EXPECT_EQ(parallel.summary.files_merged, serial.summary.files_merged);
      EXPECT_EQ(profile_bytes(parallel.data), profile_bytes(serial.data))
          << app.name << ": merged profile bytes differ between jobs";
      if (binary) {
        EXPECT_EQ(profile_bytes(serial.data), text_merge_bytes)
            << app.name << ": binary-shard merge diverged from text-shard "
            << "merge";
      } else {
        text_merge_bytes = profile_bytes(serial.data);
      }
    }
  }
}

TEST(GoldenEquiv, BinaryLoadedSessionAnalyzesIdenticallyForAllCaseStudies) {
  // The zero-copy binary load path must feed the analyzer the same data
  // the in-memory session holds: the full viewer + advisor text over the
  // reloaded session is byte-identical, at jobs=1 and jobs=4.
  for (const CaseStudy& app : case_studies()) {
    SCOPED_TRACE(app.name);
    const core::SessionData data = app.run();
    const std::string binary =
        core::ProfileWriter(ProfileFormat::kBinary).bytes(data);
    const core::LoadResult loaded = core::ProfileReader().read(binary);
    ASSERT_TRUE(loaded.complete);
    EXPECT_EQ(render_full_analysis(loaded.data, 1),
              render_full_analysis(data, 1))
        << app.name << ": binary round-trip changed the analysis";
    EXPECT_EQ(render_full_analysis(loaded.data, 4),
              render_full_analysis(data, 1))
        << app.name << ": binary round-trip + jobs=4 diverged";
  }
}

TEST(GoldenEquiv, ParallelAdvisorMatchesCheckedInGolden) {
  // Renders the SAME text the serial advisor golden test locks, but with
  // every Analyzer running the jobs=4 merge path. Comparing against the
  // checked-in golden (not a fresh serial render) means a regeneration
  // that only "works" in parallel cannot slip through.
  const std::string golden_path =
      NUMAPROF_SOURCE_DIR "/tests/golden/advisor_apps.txt";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path
                  << " (regenerate with NUMAPROF_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();

  std::ostringstream rendered;
  for (const CaseStudy& app : case_studies()) {
    rendered << advise(app.name + " baseline", app.run(), 4);
  }
  EXPECT_EQ(rendered.str(), buffer.str())
      << "jobs=4 advisor output drifted from the serial golden";
}

}  // namespace
}  // namespace numaprof
