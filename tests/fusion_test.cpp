// Tests for core::fuse_findings: joining numalint's static antipatterns
// with the advisor's dynamic recommendations into confidence-ranked fused
// findings (confirmed / dynamic-only / static-only).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/viewer.hpp"

namespace numaprof::core {
namespace {

/// Synthetic SessionData with hand-crafted variables and address-centric
/// entries (same approach as advisor_test.cpp, generalized to several
/// variables so fusion ordering is observable).
struct FusionSession {
  FusionSession() {
    data.domain_count = 4;
    data.core_count = 8;
    data.mechanism = pmu::Mechanism::kIbs;
    data.stores.emplace_back(4);
    data.totals.emplace_back();
    data.totals[0].per_domain.assign(4, 0);
    data.totals[0].samples = 1000;
    data.totals[0].memory_samples = 800;
    data.totals[0].mismatch = 700;
    data.totals[0].match = 100;
    data.totals[0].remote_latency = 200000;  // lpi = 200 >> 0.1
    data.totals[0].total_latency = 210000;
    data.totals[0].instructions = 100000;
  }

  VariableId add_variable(const std::string& name, std::uint64_t pages = 50) {
    Variable v;
    v.id = static_cast<VariableId>(data.variables.size());
    v.name = name;
    v.kind = VariableKind::kHeap;
    v.start = 0x100000 + v.id * 0x1000000;
    v.size = pages * simos::kPageBytes;
    v.page_count = pages;
    v.variable_node = data.cct.child(kRootNode, NodeKind::kVariable, v.id);
    data.variables.push_back(v);
    return v.id;
  }

  void add_range(VariableId var, simrt::ThreadId tid, double lo, double hi,
                 std::uint64_t weight = 100) {
    const Variable& v = data.variables[var];
    const auto extent = static_cast<double>(v.extent_bytes());
    const auto begin = static_cast<std::uint64_t>(lo * extent);
    const auto end = static_cast<std::uint64_t>(hi * extent);
    const std::uint64_t step = std::max<std::uint64_t>(1, (end - begin) / 16);
    for (std::uint64_t off = begin; off < end; off += step) {
      const std::uint32_t bin = data.address_centric.bin_of(v, v.start + off);
      BinStats stats;
      for (std::uint64_t w = 0; w < weight / 16 + 1; ++w) {
        stats.update(v.start + off, 10.0);
      }
      data.address_centric.insert(
          BinKey{.context = kWholeProgram, .variable = var, .bin = bin,
                 .tid = tid},
          stats);
    }
  }

  /// Gives the variable NUMA cost so recommend_all ranks it; higher
  /// weight ranks earlier.
  void rank(VariableId var, std::uint64_t weight) {
    const NodeId node = data.variables[var].variable_node;
    data.stores[0].add(node, kMemorySamples, weight);
    data.stores[0].add(node, kNumaMismatch, weight * 9 / 10);
    data.stores[0].add(node, kRemoteLatency, weight * 90);
  }

  /// A blocked 8-thread access pattern (the advisor recommends blockwise).
  void blocked(VariableId var) {
    for (std::uint32_t tid = 0; tid < 8; ++tid) {
      add_range(var, tid, tid / 8.0, (tid + 1) / 8.0);
    }
  }

  std::vector<FusedFinding> fuse(const std::vector<StaticFinding>& statics,
                                 const FusionOptions& options = {}) {
    analyzer = std::make_unique<Analyzer>(data);
    advisor = std::make_unique<Advisor>(*analyzer);
    return fuse_findings(*advisor, statics, options);
  }

  SessionData data;
  std::unique_ptr<Analyzer> analyzer;
  std::unique_ptr<Advisor> advisor;
};

StaticFinding l1(const std::string& variable,
                 Action suggested = Action::kBlockwiseFirstTouch,
                 PatternKind expected = PatternKind::kBlocked) {
  StaticFinding f;
  f.file = "app.cpp";
  f.line = 42;
  f.decl_line = 10;
  f.variable = variable;
  f.kind = LintKind::kSerialFirstTouch;
  f.expected = expected;
  f.suggested = suggested;
  f.message = "serially initialized";
  return f;
}

TEST(Fusion, StaticPlusDynamicIsConfirmed) {
  FusionSession s;
  const VariableId target = s.add_variable("target");
  s.blocked(target);
  s.rank(target, 100);
  const auto fused = s.fuse({l1("target")});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kConfirmed);
  EXPECT_EQ(fused[0].action, Action::kBlockwiseFirstTouch);
  EXPECT_TRUE(fused[0].patterns_agree);
  EXPECT_TRUE(fused[0].severity_warrants);
  ASSERT_EQ(fused[0].static_evidence.size(), 1u);
  ASSERT_TRUE(fused[0].dynamic_evidence.has_value());
  EXPECT_NE(fused[0].rationale.find("corroborated"), std::string::npos);
}

TEST(Fusion, DynamicActionWinsOnDisagreement) {
  // Static pass predicted blocked/blockwise, but the run observed every
  // thread spanning the whole range: the observed pattern decides.
  FusionSession s;
  const VariableId target = s.add_variable("target");
  for (std::uint32_t tid = 0; tid < 8; ++tid) {
    s.add_range(target, tid, 0.0, 1.0);
  }
  s.rank(target, 100);
  const auto fused = s.fuse({l1("target")});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kConfirmed);
  EXPECT_FALSE(fused[0].patterns_agree);
  EXPECT_EQ(fused[0].action, Action::kInterleave);
  EXPECT_NE(fused[0].rationale.find("dynamic evidence prefers"),
            std::string::npos);
}

TEST(Fusion, StaticSuggestionFillsInWhenRunSawOneThread) {
  // Only one thread sampled (e.g. a short run): the dynamic colocation
  // advice is moot when the source proves multi-thread consumption, so
  // the static suggestion carries the finding.
  FusionSession s;
  const VariableId target = s.add_variable("target");
  s.add_range(target, 3, 0.0, 0.5);
  s.rank(target, 100);
  const auto fused = s.fuse({l1("target")});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kConfirmed);
  EXPECT_EQ(fused[0].action, Action::kBlockwiseFirstTouch);
  EXPECT_NE(fused[0].rationale.find("static suggestion"), std::string::npos);
}

TEST(Fusion, SingleThreadDynamicOnlyNeverRecommendsFix) {
  // The satellite rule: a single-thread pattern with no static evidence
  // must not produce a placement fix (first touch already co-located it).
  FusionSession s;
  const VariableId target = s.add_variable("target");
  s.add_range(target, 3, 0.0, 0.5);
  s.rank(target, 100);
  const auto fused = s.fuse({});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kDynamicOnly);
  EXPECT_EQ(fused[0].action, Action::kNone);
  EXPECT_NE(fused[0].rationale.find("no fix recommended"), std::string::npos);
}

TEST(Fusion, UncorroboratedStaticFindingSurvivesAsStaticOnly) {
  FusionSession s;  // no sampled variables at all
  const auto fused = s.fuse({l1("cold_array", Action::kRegroupAos,
                                PatternKind::kStaggeredOverlap)});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kStaticOnly);
  EXPECT_EQ(fused[0].action, Action::kRegroupAos);
  EXPECT_FALSE(fused[0].severity_warrants);
  EXPECT_FALSE(fused[0].dynamic_evidence.has_value());
  EXPECT_NE(fused[0].rationale.find("not corroborated"), std::string::npos);
}

TEST(Fusion, LevelDecoratedNamesJoinTheirBase) {
  // AMG names per-level instances "x_vec_L2"; the static finding for the
  // base declaration must still confirm them.
  FusionSession s;
  const VariableId v = s.add_variable("x_vec_L2");
  s.blocked(v);
  s.rank(v, 100);
  const auto fused =
      s.fuse({l1("x_vec", Action::kInterleave, PatternKind::kFullRange)});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kConfirmed);
  EXPECT_EQ(fused[0].variable, "x_vec_L2");
}

TEST(Fusion, PlainLevelFreeNamesDoNotFalselyJoin) {
  // "value_L" (no digits) and "x_vecL2" (no underscore) must NOT strip.
  FusionSession s;
  const VariableId v = s.add_variable("value_L");
  s.blocked(v);
  s.rank(v, 100);
  const auto fused = s.fuse({l1("value")});
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kDynamicOnly);
  EXPECT_EQ(fused[1].confidence, FusionConfidence::kStaticOnly);
}

TEST(Fusion, SeverityGateAnnotatesLowLpiFindings) {
  FusionSession s;
  s.data.totals[0].remote_latency = 100;  // lpi = 0.1 / 1000 -> below gate
  const VariableId target = s.add_variable("target");
  s.blocked(target);
  s.rank(target, 100);
  const auto fused = s.fuse({l1("target")});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_FALSE(fused[0].severity_warrants);
  EXPECT_NE(fused[0].rationale.find("below the 0.1 threshold"),
            std::string::npos);
}

TEST(Fusion, ConfidenceBandsOrderTheOutput) {
  // confirmed < dynamic-only < static-only, stable within bands.
  FusionSession s;
  const VariableId hot = s.add_variable("hot");
  const VariableId warm = s.add_variable("warm");
  s.blocked(hot);
  s.blocked(warm);
  s.rank(hot, 200);
  s.rank(warm, 100);
  const auto fused = s.fuse({l1("warm"), l1("cold")});
  ASSERT_EQ(fused.size(), 3u);
  EXPECT_EQ(fused[0].variable, "warm");
  EXPECT_EQ(fused[0].confidence, FusionConfidence::kConfirmed);
  EXPECT_EQ(fused[1].variable, "hot");
  EXPECT_EQ(fused[1].confidence, FusionConfidence::kDynamicOnly);
  EXPECT_EQ(fused[2].variable, "cold");
  EXPECT_EQ(fused[2].confidence, FusionConfidence::kStaticOnly);
}

TEST(Fusion, RenderedPaneListsEvidenceTrails) {
  FusionSession s;
  const VariableId target = s.add_variable("target");
  s.blocked(target);
  s.rank(target, 100);
  const auto fused = s.fuse({l1("target")});
  const std::string text = render_fused_findings(fused);
  EXPECT_NE(text.find("-- fused findings"), std::string::npos);
  EXPECT_NE(text.find("[confirmed] target"), std::string::npos);
  EXPECT_NE(text.find("static: app.cpp:42"), std::string::npos);
  EXPECT_NE(text.find("dynamic: observed blocked"), std::string::npos);
  EXPECT_EQ(render_fused_findings({}),
            "-- fused findings (static lint x dynamic profile) --\nnone\n");
}

TEST(Fusion, ToStringCoversEveryConfidence) {
  EXPECT_EQ(to_string(FusionConfidence::kConfirmed), "confirmed");
  EXPECT_EQ(to_string(FusionConfidence::kStaticOnly), "static-only");
  EXPECT_EQ(to_string(FusionConfidence::kDynamicOnly), "dynamic-only");
  EXPECT_EQ(to_string(LintKind::kSerialFirstTouch), "serial-first-touch");
  EXPECT_EQ(to_string(LintKind::kFalseSharing), "false-sharing-layout");
  EXPECT_EQ(to_string(LintKind::kStackEscape), "stack-escape");
  EXPECT_EQ(to_string(LintKind::kInterleaveMisuse), "interleave-misuse");
  EXPECT_EQ(to_string(Action::kPadAlign), "pad-align-to-cache-line");
}

}  // namespace
}  // namespace numaprof::core
