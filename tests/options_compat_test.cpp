// The consolidated option/error surface: deprecated MergeOptions /
// AnalyzerOptions shims still compile and forward faithfully through
// .pipeline(), the deprecated profile-I/O free functions still match
// ProfileReader/ProfileWriter byte for byte, every typed failure shares
// the numaprof::Error base (kind +
// file/field/line) and the one format_error() formatter, and the shared
// CliParser rejects unknown flags the way the CLIs promise.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "lint/numalint.hpp"
#include "numasim/topology.hpp"
#include "support/cliflags.hpp"
#include "support/error.hpp"
#include "support/faultinject.hpp"

namespace numaprof {
namespace {

namespace fs = std::filesystem;

core::SessionData tiny_session() {
  simrt::Machine machine(numasim::test_machine(2, 2));
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 10;
  core::Profiler profiler(machine, cfg);
  simrt::parallel_region(
      machine, 2, "work", {},
      [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
        const simos::VAddr data = t.malloc(simos::kPageBytes, "block");
        for (std::uint64_t i = 0; i < simos::kPageBytes; i += 64) {
          t.store(data + i);
          co_await t.tick();
        }
      });
  return profiler.snapshot();
}

TEST(PipelineOptionsCompat, MergeOptionsForwardsThroughPipeline) {
  // The deprecated spellings must keep compiling (with a warning — which
  // is exactly what this pragma scope silences) and mean the same thing.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  core::MergeOptions legacy;
  legacy.jobs = 3;
  legacy.min_quorum = 0.75;
  legacy.load.lenient = true;
  legacy.load.max_count = 4096;
  const PipelineOptions mapped = legacy.pipeline();
#pragma GCC diagnostic pop
  EXPECT_EQ(mapped.jobs, 3u);
  EXPECT_DOUBLE_EQ(mapped.quorum, 0.75);
  EXPECT_TRUE(mapped.lenient);
  EXPECT_EQ(mapped.max_count, 4096u);
  EXPECT_EQ(mapped.pool, nullptr);
  EXPECT_TRUE(mapped.lint_paths.empty());
}

TEST(PipelineOptionsCompat, AnalyzerOptionsForwardsThroughPipeline) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  core::AnalyzerOptions legacy;
  legacy.jobs = 7;
  const PipelineOptions mapped = legacy.pipeline();
#pragma GCC diagnostic pop
  EXPECT_EQ(mapped.jobs, 7u);
  EXPECT_EQ(mapped.pool, nullptr);
}

TEST(PipelineOptionsCompat, DeprecatedOverloadsMatchPipelineOptionsResults) {
  const core::SessionData data = tiny_session();
  const fs::path path = fs::path(::testing::TempDir()) / "compat.prof";
  core::ProfileWriter().write_file(data, path.string());

  PipelineOptions options;
  options.jobs = 2;
  const core::Analyzer fresh(data, options);
  const core::MergeResult merged_fresh =
      core::merge_profile_files({path.string()}, options);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  core::AnalyzerOptions analyzer_legacy;
  analyzer_legacy.jobs = 2;
  const core::Analyzer shimmed(data, analyzer_legacy);
  core::MergeOptions merge_legacy;
  merge_legacy.jobs = 2;
  const core::MergeResult merged_shimmed =
      core::merge_profile_files({path.string()}, merge_legacy);
#pragma GCC diagnostic pop

  EXPECT_EQ(shimmed.program().samples, fresh.program().samples);
  EXPECT_EQ(shimmed.program().match, fresh.program().match);
  EXPECT_EQ(shimmed.program().mismatch, fresh.program().mismatch);
  EXPECT_EQ(merged_shimmed.summary.files_merged,
            merged_fresh.summary.files_merged);
  EXPECT_EQ(merged_shimmed.data.thread_count(),
            merged_fresh.data.thread_count());
}

TEST(ProfileIoCompat, DeprecatedFreeFunctionsMatchReaderWriterResults) {
  // The pre-redesign free functions must keep compiling (with a warning —
  // which is exactly what this pragma scope silences) and keep their
  // text-only behavior: byte-identical output and equivalent loads.
  const core::SessionData data = tiny_session();
  const core::ProfileWriter writer;  // text by default, like the shims
  const std::string fresh_bytes = writer.bytes(data);
  const std::vector<std::string> fresh_shards = writer.thread_shards(data);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  std::ostringstream legacy_out;
  core::save_profile(data, legacy_out);
  EXPECT_EQ(legacy_out.str(), fresh_bytes);
  EXPECT_EQ(core::serialize_thread_shards(data), fresh_shards);

  const fs::path path = fs::path(::testing::TempDir()) / "compat_shim.prof";
  core::save_profile_file(data, path.string());
  const core::SessionData legacy_loaded =
      core::load_profile_file(path.string());
  std::istringstream legacy_in(fresh_bytes);
  const core::LoadResult legacy_result =
      core::load_profile(legacy_in, core::LoadOptions{});
#pragma GCC diagnostic pop

  const core::SessionData fresh_loaded =
      core::ProfileReader().read_file(path.string()).data;
  EXPECT_EQ(writer.bytes(legacy_loaded), writer.bytes(fresh_loaded));
  EXPECT_TRUE(legacy_result.complete);
  EXPECT_EQ(writer.bytes(legacy_result.data), fresh_bytes);
}

TEST(ErrorHierarchy, EveryTypedFailureSharesTheBase) {
  const core::ProfileError profile_error("header", 3, "bad header");
  EXPECT_EQ(profile_error.kind(), ErrorKind::kProfile);
  EXPECT_EQ(profile_error.field(), "header");
  EXPECT_EQ(profile_error.line(), 3u);

  const support::FaultSpecError fault_error("bad spec");
  EXPECT_EQ(fault_error.kind(), ErrorKind::kFaultSpec);
  EXPECT_EQ(fault_error.field(), "NUMAPROF_FAULTS");

  const lint::LintError lint_error("/no/such/dir");
  EXPECT_EQ(lint_error.kind(), ErrorKind::kLint);
  EXPECT_EQ(lint_error.file(), "/no/such/dir");

  // All of them are catchable as the one base.
  const Error* as_base = &profile_error;
  EXPECT_EQ(as_base->kind(), ErrorKind::kProfile);
}

TEST(ErrorHierarchy, FormatErrorIsTheOneFormatter) {
  // ProfileError keeps its traditional what() format; format_error only
  // prefixes the kind tag.
  const core::ProfileError error("header", 3, "boom");
  EXPECT_EQ(format_error(error),
            "[profile] profile parse error: header (line 3): boom");

  const std::runtime_error untyped("plain failure");
  EXPECT_EQ(format_error(untyped), "plain failure");
  // Dispatch through the std::exception overload recovers the kind.
  const std::exception& erased = error;
  EXPECT_EQ(format_error(erased),
            "[profile] profile parse error: header (line 3): boom");
}

TEST(ErrorHierarchy, LintPathsThrowsLintErrorForMissingTopLevelPath) {
  try {
    lint::lint_paths({"/no/such/path.cpp"});
    FAIL() << "expected LintError";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kLint);
    EXPECT_NE(std::string(e.what()).find("/no/such/path.cpp"),
              std::string::npos);
  }
}

support::CliParser test_parser() {
  support::CliParser cli("tool", "test parser");
  cli.add_flag("--jobs", true, "parallelism", "N");
  cli.add_flag("--lint", true, "sources", "SRC");
  cli.add_flag("--verbose", false, "chatty");
  return cli;
}

TEST(CliParserTest, ParsesFlagsValuesAndPositionals) {
  support::CliParser cli = test_parser();
  cli.parse({"--jobs", "4", "input.prof", "--lint=a.cpp", "--lint", "b.cpp",
             "--verbose", "out"});
  EXPECT_TRUE(cli.has("--verbose"));
  EXPECT_EQ(cli.unsigned_value("--jobs", 1), 4u);
  EXPECT_EQ(cli.values("--lint"),
            (std::vector<std::string>{"a.cpp", "b.cpp"}));
  EXPECT_EQ(cli.value("--lint").value_or(""), "b.cpp");
  EXPECT_EQ(cli.positional(),
            (std::vector<std::string>{"input.prof", "out"}));
  EXPECT_FALSE(cli.value("--absent").has_value());
  EXPECT_EQ(cli.unsigned_value("--absent", 9), 9u);
}

TEST(CliParserTest, RejectsUnknownFlagsWithUsage) {
  const auto expect_usage_error = [](const std::vector<std::string>& args,
                                     const std::string& needle) {
    support::CliParser cli = test_parser();
    try {
      cli.parse(args);
      FAIL() << "expected a usage error";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kUsage);
      const std::string what = e.what();
      EXPECT_NE(what.find(needle), std::string::npos) << what;
      EXPECT_NE(what.find("usage: tool"), std::string::npos) << what;
    }
  };
  expect_usage_error({"--bogus"}, "--bogus");
  expect_usage_error({"--jobs"}, "--jobs");          // missing value
  expect_usage_error({"--verbose=yes"}, "--verbose");  // value on a boolean
}

TEST(CliParserTest, UnsignedValueValidates) {
  support::CliParser cli = test_parser();
  cli.parse({"--jobs", "banana"});
  try {
    cli.unsigned_value("--jobs", 1);
    FAIL() << "expected a usage error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kUsage);
  }
}

TEST(CliParserTest, UsageListsEveryFlag) {
  const std::string usage = test_parser().usage();
  EXPECT_NE(usage.find("usage: tool"), std::string::npos);
  EXPECT_NE(usage.find("--jobs N"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--lint SRC"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
}

}  // namespace
}  // namespace numaprof
