#include <gtest/gtest.h>

#include "simos/address_space.hpp"
#include "simos/numa_api.hpp"
#include "numasim/topology.hpp"

namespace numaprof::simos {
namespace {

TEST(SymbolTable, DefineAndFind) {
  SymbolTable table(kStaticBase);
  const StaticSymbol& a = table.define("alpha", 100);
  const StaticSymbol& b = table.define("beta", 2 * kPageBytes);
  EXPECT_EQ(a.start, kStaticBase);
  EXPECT_EQ(b.start, kStaticBase + kPageBytes);  // own page per symbol
  EXPECT_EQ(table.find(a.start)->name, "alpha");
  EXPECT_EQ(table.find(b.start + 100)->name, "beta");
  EXPECT_EQ(table.find(b.start + 2 * kPageBytes), nullptr);
  EXPECT_EQ(table.lookup("beta")->start, b.start);
  EXPECT_EQ(table.lookup("gamma"), nullptr);
}

TEST(SymbolTable, DuplicateNameThrows) {
  SymbolTable table(kStaticBase);
  table.define("x", 8);
  EXPECT_THROW(table.define("x", 8), std::invalid_argument);
}

TEST(AddressSpace, SegmentClassification) {
  AddressSpace space(4);
  EXPECT_EQ(space.segment_of(kStaticBase), Segment::kStatic);
  EXPECT_EQ(space.segment_of(kHeapBase), Segment::kHeap);
  EXPECT_EQ(space.segment_of(kStackBase + 100), Segment::kStack);
  EXPECT_EQ(space.segment_of(0x10), Segment::kUnknown);
}

TEST(AddressSpace, HeapAllocRegistersPolicyRegion) {
  AddressSpace space(4);
  const HeapBlock block =
      space.heap_alloc(8 * kPageBytes, PolicySpec::interleave());
  auto& pt = space.page_table();
  EXPECT_EQ(pt.home_of(page_of(block.start), 3), 0u);
  EXPECT_EQ(pt.home_of(page_of(block.start) + 1, 3), 1u);
}

TEST(AddressSpace, HeapFreeUnregistersRegion) {
  AddressSpace space(4);
  const HeapBlock block = space.heap_alloc(kPageBytes, PolicySpec::bind(2));
  space.page_table().home_of(page_of(block.start), 0);
  ASSERT_TRUE(space.heap_free(block.start).has_value());
  EXPECT_FALSE(space.page_table().query_home(page_of(block.start)).has_value());
  EXPECT_FALSE(space.heap_free(block.start).has_value());
}

TEST(AddressSpace, DefineStaticRegistersRegion) {
  AddressSpace space(4);
  const StaticSymbol& s =
      space.define_static("table", 4 * kPageBytes, PolicySpec::bind(1));
  EXPECT_EQ(space.page_table().home_of(page_of(s.start), 0), 1u);
  EXPECT_EQ(space.find_static(s.start + 5)->name, "table");
}

TEST(AddressSpace, StackBasesAreDisjointPerThread) {
  AddressSpace space(2);
  const VAddr s0 = space.stack_base(0);
  const VAddr s3 = space.stack_base(3);
  EXPECT_EQ(s0, kStackBase);
  EXPECT_EQ(s3, kStackBase + 3 * kStackBytesPerThread);
  // Stacks are first-touch: each thread's stack lands in its domain.
  EXPECT_EQ(space.page_table().home_of(page_of(s3), 1), 1u);
}

TEST(NumaApi, MovePagesQuerySemantics) {
  AddressSpace space(4);
  const HeapBlock block = space.heap_alloc(2 * kPageBytes);
  auto& pt = space.page_table();
  pt.home_of(page_of(block.start), 2);  // touch first page only
  const std::vector<VAddr> addrs = {block.start, block.start + kPageBytes};
  const auto result = move_pages_query(pt, addrs);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].value(), 2u);
  EXPECT_FALSE(result[1].has_value());  // untouched: -ENOENT analogue
  EXPECT_EQ(domain_of_addr(pt, block.start).value(), 2u);
}

TEST(NumaApi, NodeOfCpu) {
  const auto topo = numasim::amd_magny_cours();
  EXPECT_EQ(numa_node_of_cpu(topo, 0), 0u);
  EXPECT_EQ(numa_node_of_cpu(topo, 6), 1u);
  EXPECT_EQ(numa_node_of_cpu(topo, 47), 7u);
}

}  // namespace
}  // namespace numaprof::simos
