// CLI: numa_top — the numatop analogue for this tool's telemetry streams.
//
// A continuously refreshing terminal monitor over TelemetrySnapshot
// streams: a summary bar, sortable per-thread and per-domain tables
// (RMA/LMA, remote latency, mismatch fraction), hot-page / hot-variable
// panes, and drill-down from a thread to its hottest call paths.
//
// Usage:
//   numa_top [flags] <trace.jsonl>
//
// Modes (pick one):
//   (default)            load the trace, show one frame of its final state
//   --replay             re-render every snapshot in order; with a tty the
//                        screen repaints in place and the keyboard works,
//                        otherwise plain `== frame N ==` blocks are printed
//   --follow PATH        tail a growing JSONL file (a still-recording
//                        `record_app --telemetry` run or a numaprofd
//                        --telemetry-out spool); no trace operand
//   --script FILE        scripted-frames mode: drive the monitor from a
//                        deterministic feed/key/resize/frame script and
//                        print the exact frames (golden-lockable; see
//                        docs/visualization.md)
//
// Flags:
//   --size WxH           frame size (default: the tty size, else 80x24)
//   --delay-ms N         --replay: pause between frames (default 0)
//   --idle-exit-ms N     --follow: exit after N ms with no new snapshot
//                        (default 0: keep tailing until 'q' or EOF+kill)
//
// Keys (tty modes): up/down (or k/j) select, enter drill into the selected
// thread's call paths, b back, t/d/p/v switch screens, s cycle the sort
// column, r reverse it, q quit.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "core/telemetry_stream.hpp"
#include "monitor/frame.hpp"
#include "monitor/live.hpp"
#include "monitor/script.hpp"
#include "monitor/term.hpp"
#include "support/cliflags.hpp"
#include "support/error.hpp"

using namespace numaprof;
using namespace numaprof::monitor;

namespace {

support::CliParser make_parser() {
  support::CliParser cli(
      "numa_top",
      "live terminal monitor over telemetry snapshot streams; "
      "operand: <trace.jsonl> (not with --follow)");
  cli.add_flag("--script", true,
               "scripted-frames mode: render frames per FILE's commands",
               "FILE");
  cli.add_flag("--replay", false, "re-render every snapshot in order");
  cli.add_flag("--follow", true, "tail a growing JSONL telemetry file",
               "PATH");
  cli.add_flag("--size", true, "frame size (default: tty size or 80x24)",
               "WxH");
  cli.add_flag("--delay-ms", true,
               "--replay: pause between frames (default 0)", "N");
  cli.add_flag("--idle-exit-ms", true,
               "--follow: exit after N ms without a new snapshot", "N");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

[[noreturn]] void bad_usage(const support::CliParser& cli,
                            const std::string& message) {
  throw Error(ErrorKind::kUsage, {}, "numa_top", 0,
              message + "\n" + cli.usage());
}

TermSize frame_size(const support::CliParser& cli) {
  TermSize size = detect_term_size(STDOUT_FILENO);
  if (const auto text = cli.value("--size")) {
    std::size_t width = 0;
    std::size_t height = 0;
    char x = 0;
    std::istringstream in(*text);
    if (!(in >> width >> x >> height) || x != 'x' || width == 0 ||
        height == 0 || (in >> x)) {
      bad_usage(cli, "--size expects WxH, e.g. 80x24");
    }
    size.width = width;
    size.height = height;
  }
  return size;
}

/// Paints one frame: ANSI repaint-in-place on a tty, a plain framed block
/// otherwise. `n` is the 1-based frame number for the plain header.
void paint(const MonitorModel& model, TermSize size, bool tty,
           std::size_t n) {
  const std::string frame = model.render(size.width, size.height);
  if (tty) {
    if (n == 1) std::cout << ansi_enter();
    std::cout << ansi_frame(frame);
  } else {
    std::cout << "== frame " << n << " (" << size.width << "x"
              << size.height << ") ==\n"
              << frame;
  }
  std::cout.flush();
}

int run_scripted(const support::CliParser& cli, const std::string& path) {
  const std::string script_path = *cli.value("--script");
  std::ifstream script(script_path);
  if (!script) {
    throw Error(ErrorKind::kMonitor, script_path, "script", 0,
                "cannot open script: " + script_path);
  }
  const core::TelemetryTrace trace =
      core::load_telemetry_trace_file(path);
  MonitorModel model;
  if (trace.has_mechanism) model.set_mechanism(trace.mechanism);
  ScriptOptions options;
  const TermSize size = frame_size(cli);
  options.width = size.width;
  options.height = size.height;
  options.file = script_path;
  const ScriptResult result =
      run_script(model, trace.snapshots, script, options);
  std::cout << result.frames;
  return 0;
}

int run_replay(const support::CliParser& cli, const std::string& path) {
  const core::TelemetryTrace trace =
      core::load_telemetry_trace_file(path);
  MonitorModel model;
  if (trace.has_mechanism) model.set_mechanism(trace.mechanism);
  const TermSize size = frame_size(cli);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  const unsigned delay_ms = cli.unsigned_value("--delay-ms", 0);
  RawTerminal raw(tty ? STDIN_FILENO : -1);
  std::size_t frames = 0;
  for (const support::TelemetrySnapshot& snapshot : trace.snapshots) {
    model.feed(snapshot);
    paint(model, size, tty, ++frames);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(delay_ms);
    do {
      if (tty) {
        const Key key = poll_key(STDIN_FILENO, 10);
        if (key != Key::kNone) {
          model.apply_key(key);
          paint(model, size, tty, ++frames);
        }
        if (model.quit_requested()) break;
      }
    } while (std::chrono::steady_clock::now() < deadline);
    if (model.quit_requested()) break;
  }
  // Leave the last frame up on a tty until quit, so a finished replay is
  // still inspectable.
  while (tty && !model.quit_requested()) {
    const Key key = poll_key(STDIN_FILENO, 50);
    if (key != Key::kNone) {
      model.apply_key(key);
      paint(model, size, tty, ++frames);
    }
  }
  if (tty) std::cout << ansi_leave() << std::flush;
  return 0;
}

int run_follow(const support::CliParser& cli) {
  const std::string path = *cli.value("--follow");
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorKind::kTelemetry, path, "follow", 0,
                "cannot open telemetry file: " + path);
  }
  const TermSize size = frame_size(cli);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  const unsigned idle_exit_ms = cli.unsigned_value("--idle-exit-ms", 0);
  RawTerminal raw(tty ? STDIN_FILENO : -1);
  core::TelemetryTrace trace;
  MonitorModel model;
  bool mechanism_set = false;
  std::size_t lineno = 0;
  std::size_t frames = 0;
  std::string line;
  auto last_progress = std::chrono::steady_clock::now();
  while (!model.quit_requested()) {
    bool advanced = false;
    while (std::getline(in, line)) {
      if (core::append_trace_line(trace, line, ++lineno, path)) {
        if (!mechanism_set && trace.has_mechanism) {
          model.set_mechanism(trace.mechanism);
          mechanism_set = true;
        }
        model.feed(trace.snapshots.back());
        paint(model, size, tty, ++frames);
        advanced = true;
      }
    }
    in.clear();  // EOF for now; the writer may still append
    if (advanced) {
      last_progress = std::chrono::steady_clock::now();
    } else if (idle_exit_ms > 0 &&
               std::chrono::steady_clock::now() - last_progress >=
                   std::chrono::milliseconds(idle_exit_ms)) {
      break;
    }
    if (tty) {
      const Key key = poll_key(STDIN_FILENO, 50);
      if (key != Key::kNone) {
        model.apply_key(key);
        paint(model, size, tty, ++frames);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (tty && frames > 0) std::cout << ansi_leave() << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage();
      return 0;
    }
    const std::vector<std::string>& operands = cli.positional();
    if (cli.has("--follow")) {
      if (!operands.empty()) {
        bad_usage(cli, "--follow takes no trace operand");
      }
      if (cli.has("--script") || cli.has("--replay")) {
        bad_usage(cli, "--follow excludes --script/--replay");
      }
      return run_follow(cli);
    }
    if (operands.size() != 1) {
      bad_usage(cli, "expected exactly one <trace.jsonl> operand");
    }
    if (cli.has("--script")) {
      if (cli.has("--replay")) {
        bad_usage(cli, "--script excludes --replay");
      }
      return run_scripted(cli, operands[0]);
    }
    if (cli.has("--replay")) return run_replay(cli, operands[0]);

    // Default: one frame of the trace's final state.
    const core::TelemetryTrace trace =
        core::load_telemetry_trace_file(operands[0]);
    MonitorModel model;
    if (trace.has_mechanism) model.set_mechanism(trace.mechanism);
    for (const support::TelemetrySnapshot& snapshot : trace.snapshots) {
      model.feed(snapshot);
    }
    const TermSize size = frame_size(cli);
    std::cout << model.render(size.width, size.height);
    return 0;
  } catch (const Error& error) {
    std::cerr << "numa_top: " << format_error(error) << "\n";
    return error.kind() == ErrorKind::kUsage ? 2 : 1;
  } catch (const std::exception& error) {
    std::cerr << "numa_top: " << format_error(error) << "\n";
    return 1;
  }
}
