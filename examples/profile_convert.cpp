// CLI: profile_convert — transcode profiles between the two encodings.
//
// Reads any profile (text or binary, autodetected from magic bytes) and
// rewrites it in the requested encoding. Both encodings are lossless and
// byte-deterministic, so text -> binary -> text reproduces the original
// file byte for byte; the round-trip test in tests/binary_format_test.cpp
// holds this CLI to that exact promise.
//
// Usage:
//   profile_convert [flags] <in-file> <out-file>
//
// Flags:
//   --to FMT     output encoding: text | binary (default: the opposite
//                of the input's encoding)
//   --strict     fail on the first malformed field (default)
//   --lenient    recover what is readable: damage is reported as
//                diagnostics, damaged sections are dropped, and the
//                surviving data is converted
//   --quiet      suppress the conversion summary line
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/numaprof.hpp"
#include "support/cliflags.hpp"

using namespace numaprof;

namespace {

support::CliParser make_parser() {
  support::CliParser cli(
      "profile_convert",
      "transcode a profile between the text and binary encodings; "
      "operands: <in-file> <out-file>");
  cli.add_flag("--to", true,
               "output encoding: text | binary (default: the opposite of "
               "the input)",
               "FMT");
  cli.add_flag("--strict", false, "fail on the first malformed field");
  cli.add_flag("--lenient", false,
               "recover readable sections, report damage as diagnostics");
  cli.add_flag("--quiet", false, "suppress the conversion summary line");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

const char* name_of(ProfileFormat format) noexcept {
  return format == ProfileFormat::kBinary ? "binary" : "text";
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage();
      return 0;
    }
    if (cli.positional().size() != 2) {
      throw Error(ErrorKind::kUsage, {}, "profile_convert", 0,
                  "expected <in-file> <out-file>\n" + cli.usage());
    }
    if (cli.has("--strict") && cli.has("--lenient")) {
      throw Error(ErrorKind::kUsage, {}, "profile_convert", 0,
                  "--strict and --lenient are mutually exclusive");
    }
    const std::string& in_path = cli.positional()[0];
    const std::string& out_path = cli.positional()[1];

    // Sniff the input's encoding first so the default output direction
    // (the opposite encoding) is known before the full load.
    ProfileFormat in_format = ProfileFormat::kText;
    {
      std::ifstream sniff(in_path, std::ios::binary);
      if (!sniff) {
        throw Error(ErrorKind::kProfile, in_path, "file", 0,
                    "cannot open for read: " + in_path);
      }
      char prefix[8] = {};
      sniff.read(prefix, sizeof(prefix));
      in_format = ProfileReader::detect(
          std::string_view(prefix, static_cast<std::size_t>(sniff.gcount())));
    }

    ProfileFormat out_format = in_format == ProfileFormat::kBinary
                                   ? ProfileFormat::kText
                                   : ProfileFormat::kBinary;
    if (const auto to = cli.value("--to")) {
      if (*to == "text") {
        out_format = ProfileFormat::kText;
      } else if (*to == "binary") {
        out_format = ProfileFormat::kBinary;
      } else {
        throw Error(ErrorKind::kUsage, {}, "profile_convert", 0,
                    "--to expects text or binary");
      }
    }

    LoadOptions load;
    load.lenient = cli.has("--lenient");
    const LoadResult loaded = ProfileReader(load).read_file(in_path);
    for (const Diagnostic& d : loaded.diagnostics) {
      std::cerr << "profile_convert: diagnostic: " << d.field << " (line "
                << d.line << "): " << d.message << "\n";
    }

    ProfileWriter(out_format).write_file(loaded.data, out_path);
    if (!cli.has("--quiet")) {
      std::cout << "converted " << in_path << " (" << name_of(in_format)
                << ") -> " << out_path << " (" << name_of(out_format) << ")";
      if (!loaded.diagnostics.empty()) {
        std::cout << " with " << loaded.diagnostics.size()
                  << " diagnostic(s)";
      }
      std::cout << "\n";
    }
    return loaded.diagnostics.empty() ? 0 : 3;
  } catch (const Error& error) {
    std::cerr << "profile_convert: " << format_error(error) << "\n";
    return error.kind() == ErrorKind::kUsage ? 2 : 1;
  } catch (const std::exception& error) {
    std::cerr << "profile_convert: " << format_error(error) << "\n";
    return 1;
  }
}
