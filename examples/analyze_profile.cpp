// CLI: the hpcprof/hpcviewer analogue as a command-line tool.
//
// Loads a profile written by save_profile_file (e.g. by the
// lulesh_analysis example or your own instrumented run) and either prints
// the analysis to stdout or writes a full report directory.
//
// Usage:
//   analyze_profile <profile-file>                  # print to stdout
//   analyze_profile <profile-file> <report-dir>     # write a report tree
//   analyze_profile --diff <before> <after>         # compare two profiles
//   analyze_profile --selftest                      # generate + analyze a
//                                                   # built-in demo profile

#include <iostream>

#include "apps/minilulesh.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/diff.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "core/viewer.hpp"
#include "numasim/topology.hpp"

using namespace numaprof;

namespace {

core::SessionData demo_session() {
  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.record_trace = true;
  core::Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 48,
                                 .pages_per_thread = 3,
                                 .timesteps = 8,
                                 .variant = apps::Variant::kBaseline});
  return profiler.snapshot();
}

void print_analysis(const core::SessionData& data) {
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);
  std::cout << viewer.program_summary() << "\n"
            << viewer.data_centric_table(10).to_text() << "\n"
            << viewer.code_centric_table(10).to_text() << "\n"
            << viewer.domain_balance_table().to_text() << "\n";
  const std::string timeline = viewer.trace_timeline();
  if (!timeline.empty()) std::cout << timeline << "\n";

  const core::Advisor advisor(analyzer);
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    std::cout << rec.variable_name << ": " << to_string(rec.action) << "\n  "
              << rec.rationale << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "--selftest") {
      const core::SessionData data = demo_session();
      print_analysis(data);
      return 0;
    }
    if (argc >= 4 && std::string(argv[1]) == "--diff") {
      const core::SessionData before = core::load_profile_file(argv[2]);
      const core::SessionData after = core::load_profile_file(argv[3]);
      const core::Analyzer before_an(before);
      const core::Analyzer after_an(after);
      std::cout << core::render_diff(core::diff_profiles(before_an, after_an));
      return 0;
    }
    if (argc < 2) {
      std::cerr << "usage: analyze_profile <profile-file> [report-dir]\n"
                   "       analyze_profile --diff <before> <after>\n"
                   "       analyze_profile --selftest\n";
      return 2;
    }
    const core::SessionData data = core::load_profile_file(argv[1]);
    if (argc >= 3) {
      const core::Analyzer analyzer(data);
      const std::string main_file = core::write_report(analyzer, argv[2]);
      std::cout << "report written; start at " << main_file << "\n";
    } else {
      print_analysis(data);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "analyze_profile: " << error.what() << "\n";
    return 1;
  }
}
