// CLI: the hpcprof/hpcviewer analogue as a command-line tool.
//
// Loads a profile written by save_profile_file (e.g. by the
// lulesh_analysis example or your own instrumented run) and either prints
// the analysis to stdout or writes a full report directory.
//
// Usage:
//   analyze_profile [--lenient] <profile-file>      # print to stdout
//   analyze_profile [--lenient] <file> <report-dir> # write a report tree
//   analyze_profile [--lenient] --merge <file>...   # merge per-thread
//                                                   # measurement files
//   analyze_profile --diff <before> <after>         # compare two profiles
//   analyze_profile --selftest                      # generate + analyze a
//                                                   # built-in demo profile
//
// --jobs N: parallelism of the offline pipeline (shard parsing and the
// per-thread profile merge). Defaults to the hardware concurrency
// (NUMAPROF_JOBS overrides); --jobs 1 selects the serial reference path.
// Output is byte-identical for every N (docs/analyzer.md).
//
// --lenient: recover from damaged profiles. Malformed sections are skipped
// and reported as diagnostics instead of aborting; in --merge mode
// unreadable files are skipped (subject to a quorum) and the report's
// collection health section lists them.
//
// --lint <src>: additionally run the numalint static analyzer over the
// given source file/directory and append a fused-findings pane joining
// static antipatterns with the profile's dynamic evidence (docs/lint.md).
// Everything printed WITHOUT --lint is unchanged by this flag.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "apps/minilulesh.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "core/profile_io.hpp"
#include "core/diff.hpp"
#include "core/profiler.hpp"
#include "core/report.hpp"
#include "core/viewer.hpp"
#include "lint/numalint.hpp"
#include "numasim/topology.hpp"
#include "support/threadpool.hpp"

using namespace numaprof;

namespace {

core::SessionData demo_session() {
  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.record_trace = true;
  core::Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 48,
                                 .pages_per_thread = 3,
                                 .timesteps = 8,
                                 .variant = apps::Variant::kBaseline});
  return profiler.snapshot();
}

void print_analysis(const core::SessionData& data, unsigned jobs,
                    const std::vector<std::string>& lint_paths = {}) {
  const core::Analyzer analyzer(data, {.jobs = jobs});
  const core::Viewer viewer(analyzer);
  std::cout << viewer.program_summary();
  const std::string health = viewer.collection_health();
  if (!health.empty()) {
    std::cout << "-- collection health --\n" << health;
  }
  std::cout << "\n"
            << viewer.data_centric_table(10).to_text() << "\n"
            << viewer.code_centric_table(10).to_text() << "\n"
            << viewer.domain_balance_table().to_text() << "\n";
  const std::string timeline = viewer.trace_timeline();
  if (!timeline.empty()) std::cout << timeline << "\n";

  const core::Advisor advisor(analyzer);
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    std::cout << rec.variable_name << ": " << to_string(rec.action) << "\n  "
              << rec.rationale << "\n";
  }
  if (!lint_paths.empty()) {
    const lint::LintResult linted = lint::lint_paths(lint_paths);
    std::cout << "\n"
              << core::render_fused_findings(
                     core::fuse_findings(advisor, linted.findings));
  }
}

int usage() {
  std::cerr << "usage: analyze_profile [--lenient] [--jobs N] [--lint <src>] "
               "<profile-file> [report-dir]\n"
               "       analyze_profile [--lenient] [--jobs N] [--lint <src>] "
               "--merge <file>...\n"
               "       analyze_profile [--jobs N] --diff <before> <after>\n"
               "       analyze_profile [--lint <src>] --selftest\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    bool lenient = false;
    unsigned jobs = support::default_jobs();
    std::vector<std::string> lint_sources;
    for (bool matched = true; matched && !args.empty();) {
      matched = false;
      if (args.front() == "--lenient") {
        lenient = true;
        args.erase(args.begin());
        matched = true;
      } else if (args.front() == "--jobs") {
        if (args.size() < 2) return usage();
        try {
          const unsigned long parsed = std::stoul(args[1]);
          jobs = static_cast<unsigned>(
              std::clamp<unsigned long>(parsed, 1, 256));
        } catch (const std::exception&) {
          return usage();
        }
        args.erase(args.begin(), args.begin() + 2);
        matched = true;
      } else if (args.front() == "--lint") {
        if (args.size() < 2) return usage();
        lint_sources.push_back(args[1]);
        args.erase(args.begin(), args.begin() + 2);
        matched = true;
      }
    }
    if (!args.empty() && args.front() == "--selftest") {
      const core::SessionData data = demo_session();
      print_analysis(data, jobs, lint_sources);
      return 0;
    }
    if (args.size() >= 3 && args.front() == "--diff") {
      const core::SessionData before = core::load_profile_file(args[1]);
      const core::SessionData after = core::load_profile_file(args[2]);
      const core::Analyzer before_an(before, {.jobs = jobs});
      const core::Analyzer after_an(after, {.jobs = jobs});
      std::cout << core::render_diff(core::diff_profiles(before_an, after_an));
      return 0;
    }
    if (!args.empty() && args.front() == "--merge") {
      if (args.size() < 2) return usage();
      const std::vector<std::string> files(args.begin() + 1, args.end());
      core::MergeOptions options;
      options.load.lenient = lenient;
      options.jobs = jobs;
      const core::MergeResult merged = core::merge_profile_files(files, options);
      std::cout << "merged " << merged.summary.files_merged << " of "
                << merged.summary.files_total << " profile files\n";
      for (const core::SkippedProfile& skip : merged.summary.skipped) {
        std::cout << "  skipped " << skip.path << ": " << skip.reason << "\n";
      }
      for (const core::Diagnostic& d : merged.summary.diagnostics) {
        std::cout << "  diagnostic " << d.field << " (line " << d.line
                  << "): " << d.message << "\n";
      }
      print_analysis(merged.data, jobs, lint_sources);
      return 0;
    }
    if (args.empty()) return usage();

    core::LoadOptions options;
    options.lenient = lenient;
    const core::LoadResult loaded =
        core::load_profile_file(args[0], options);
    for (const core::Diagnostic& d : loaded.diagnostics) {
      std::cout << "diagnostic: " << d.field << " (line " << d.line
                << "): " << d.message << "\n";
    }
    if (args.size() >= 2) {
      const core::Analyzer analyzer(loaded.data, {.jobs = jobs});
      const std::string main_file = core::write_report(analyzer, args[1]);
      std::cout << "report written; start at " << main_file << "\n";
    } else {
      print_analysis(loaded.data, jobs, lint_sources);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "analyze_profile: " << error.what() << "\n";
    return 1;
  }
}
