// CLI: the hpcprof/hpcviewer analogue as a command-line tool.
//
// Loads a profile written by ProfileWriter (e.g. by record_app or the
// lulesh_analysis example) — text or binary, autodetected from magic
// bytes — and either prints the analysis to stdout or
// writes a full report directory. All flag parsing goes through
// support::CliParser — unknown flags are rejected with the usage string,
// and every failure is reported through numaprof::format_error.
//
// Usage:
//   analyze_profile [flags] <profile-file> [report-dir]
//   analyze_profile [flags] --merge <file>...
//   analyze_profile [flags] --diff <before> <after>
//   analyze_profile [flags] --selftest
//
// Flags (shared spelling with numa_lint):
//   --jobs N        parallelism of the offline pipeline; output is
//                   byte-identical for every N (docs/analyzer.md)
//   --format FMT    text (default) or json (machine-readable summary)
//   --profile PATH  the profile to analyze (same as the positional)
//   --telemetry T   JSONL trace from a --telemetry-interval run; renders
//                   the measurement-health pane cross-checked against the
//                   profile's degradation record (docs/api.md)
//   --lenient       recover from damaged profiles / skip unreadable shards
//   --lint SRC      fuse numalint static findings into the report
//   --export KIND   write visualization artifacts: trace (Perfetto JSON),
//                   flamegraph (collapsed + speedscope), html (the
//                   self-contained report), or all (docs/visualization.md)
//   --export-dir D  directory the artifacts go to (default: exports)
//   --flame-weight  flamegraph frame weight: mismatch, remote-latency
//                   (default), or lpi
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "apps/minilulesh.hpp"
#include "core/diff.hpp"
#include "core/numaprof.hpp"
#include "core/report.hpp"
#include "lint/numalint.hpp"
#include "lint/sarif.hpp"
#include "numasim/topology.hpp"
#include "support/cliflags.hpp"
#include "support/threadpool.hpp"

using namespace numaprof;

namespace {

core::SessionData demo_session() {
  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.record_trace = true;
  core::Profiler profiler(machine, cfg);
  apps::run_minilulesh(machine, {.threads = 48,
                                 .pages_per_thread = 3,
                                 .timesteps = 8,
                                 .variant = apps::Variant::kBaseline});
  return profiler.snapshot();
}

std::string json_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

/// `--format json`: the program summary + ranked variables as one JSON
/// object (stable keys; docs/api.md).
void print_analysis_json(const core::Analyzer& analyzer) {
  const core::ProgramSummary& p = analyzer.program();
  std::cout << "{\"samples\":" << p.samples
            << ",\"memory-samples\":" << p.memory_samples
            << ",\"match\":" << p.match << ",\"mismatch\":" << p.mismatch
            << ",\"remote-latency\":" << p.remote_latency
            << ",\"remote-latency-fraction\":" << p.remote_latency_fraction
            << ",\"domain-imbalance\":" << p.domain_imbalance
            << ",\"warrants-optimization\":"
            << (p.warrants_optimization ? "true" : "false");
  if (p.lpi) std::cout << ",\"lpi\":" << *p.lpi;
  std::cout << ",\"variables\":[";
  bool first = true;
  for (const core::VariableReport& r : analyzer.variables()) {
    if (!first) std::cout << ',';
    first = false;
    std::cout << "{\"name\":\"" << json_escape(r.name) << "\",\"samples\":"
              << r.samples << ",\"match\":" << r.match
              << ",\"mismatch\":" << r.mismatch
              << ",\"remote-latency-share\":" << r.remote_latency_share
              << "}";
  }
  std::cout << "]}\n";
}

/// What --export/--export-dir/--flame-weight asked for (kind unset when no
/// --export was given).
struct ExportRequest {
  std::optional<core::ExportKind> kind;
  std::string directory = "exports";
  core::ExportOptions options;
};

/// Writes the requested artifacts and reports where they went. Status goes
/// to stderr so `--format json` output stays a single parseable document.
void run_exports(const core::Analyzer& analyzer, const ExportRequest& request,
                 bool json) {
  if (!request.kind) return;
  std::ostream& log = json ? std::cerr : std::cout;
  for (const std::string& path : core::write_exports(
           analyzer, *request.kind, request.directory, request.options)) {
    log << "exported " << path << "\n";
  }
}

/// Lints `options.lint_paths` (when any), optionally renders the fused
/// pane, and returns the --werror gate: 1 when any finding reaches the
/// requested severity, else 0.
int run_lint_pane(const core::Advisor& advisor, const PipelineOptions& options,
                  bool render, std::optional<lint::Severity> werror) {
  if (options.lint_paths.empty()) return 0;
  const lint::LintResult linted =
      lint::lint_paths(options.lint_paths, options);
  if (render) {
    std::cout << "\n"
              << core::render_fused_findings(
                     core::fuse_findings(advisor, linted.findings));
  }
  if (!werror) return 0;
  for (const core::StaticFinding& f : linted.findings) {
    if (lint::severity_of(f.kind) >= *werror) return 1;
  }
  return 0;
}

int print_analysis(const core::SessionData& data,
                   const PipelineOptions& options, bool json,
                   const std::string& telemetry_trace,
                   const ExportRequest& exports,
                   std::optional<lint::Severity> werror) {
  const core::Analyzer analyzer(data, options);
  run_exports(analyzer, exports, json);
  if (json) {
    print_analysis_json(analyzer);
    // The lint pane is text-only, but the --werror contract still gates.
    const core::Advisor advisor(analyzer);
    return run_lint_pane(advisor, options, /*render=*/false, werror);
  }
  const core::Viewer viewer(analyzer);
  std::cout << viewer.program_summary();
  const std::string health = viewer.collection_health();
  if (!health.empty()) {
    std::cout << "-- collection health --\n" << health;
  }
  if (!telemetry_trace.empty()) {
    const core::TelemetryTrace trace =
        core::load_telemetry_trace_file(telemetry_trace);
    std::cout << core::render_health_pane(trace, &data);
  }
  std::cout << "\n"
            << viewer.data_centric_table(10).to_text() << "\n"
            << viewer.code_centric_table(10).to_text() << "\n"
            << viewer.domain_balance_table().to_text() << "\n";
  const std::string timeline = viewer.trace_timeline();
  if (!timeline.empty()) std::cout << timeline << "\n";

  const core::Advisor advisor(analyzer);
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    std::cout << rec.variable_name << ": " << to_string(rec.action) << "\n  "
              << rec.rationale << "\n";
  }
  return run_lint_pane(advisor, options, /*render=*/true, werror);
}

support::CliParser make_parser() {
  support::CliParser cli(
      "analyze_profile",
      "offline analyzer/viewer for numaprof measurement files");
  cli.add_flag("--jobs", true, "pipeline parallelism (byte-identical output)",
               "N");
  cli.add_flag("--format", true, "output format: text (default) or json",
               "FMT");
  cli.add_flag("--profile", true, "profile file to analyze", "PATH");
  cli.add_flag("--telemetry", true,
               "JSONL telemetry trace: render the measurement-health pane",
               "PATH");
  cli.add_flag("--lenient", false, "recover from damaged profiles");
  cli.add_flag("--lint", true, "fuse numalint findings from this source",
               "SRC");
  cli.add_optional_value_flag(
      "--werror",
      "with --lint: exit 1 on findings of at least this severity "
      "(note|warning|error; default warning)",
      "SEV");
  cli.add_flag("--export", true,
               "write artifacts: trace | flamegraph | html | all", "KIND");
  cli.add_flag("--export-dir", true,
               "directory for exported artifacts (default: exports)", "DIR");
  cli.add_flag("--flame-weight", true,
               "flamegraph weight: mismatch | remote-latency | lpi", "W");
  cli.add_flag("--merge", false, "merge per-thread measurement files");
  cli.add_flag("--diff", false, "compare two profiles (before after)");
  cli.add_flag("--selftest", false, "generate and analyze a demo profile");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage()
                << "exit status: 0 = ok, 1 = analysis error (or, with "
                   "--lint --werror, a lint finding at/above SEV), "
                   "2 = usage error\n";
      return 0;
    }
    PipelineOptions options;
    options.jobs = std::clamp(
        cli.unsigned_value("--jobs", support::default_jobs()), 1u, 256u);
    options.lenient = cli.has("--lenient");
    options.lint_paths = cli.values("--lint");
    const bool json = cli.value("--format").value_or("text") == "json";
    if (cli.has("--format") && !json &&
        cli.value("--format").value_or("") != "text") {
      throw Error(ErrorKind::kUsage, {}, "--format", 0,
                  "--format expects text or json\n" + cli.usage());
    }
    const std::string telemetry = cli.value("--telemetry").value_or("");
    std::optional<lint::Severity> werror;
    if (cli.has("--werror")) {
      const std::string spelled = cli.value("--werror").value_or("warning");
      if (spelled == "note") {
        werror = lint::Severity::kNote;
      } else if (spelled == "warning") {
        werror = lint::Severity::kWarning;
      } else if (spelled == "error") {
        werror = lint::Severity::kError;
      } else {
        throw Error(ErrorKind::kUsage, {}, "--werror", 0,
                    "--werror expects note, warning, or error\n" +
                        cli.usage());
      }
    }

    ExportRequest exports;
    if (const auto kind_text = cli.value("--export")) {
      exports.kind = core::parse_export_kind(*kind_text);
      if (!exports.kind) {
        throw Error(ErrorKind::kUsage, {}, "--export", 0,
                    "--export expects trace, flamegraph, html, or all\n" +
                        cli.usage());
      }
    }
    exports.directory = cli.value("--export-dir").value_or("exports");
    if (const auto weight_text = cli.value("--flame-weight")) {
      const auto weight = core::parse_flame_weight(*weight_text);
      if (!weight) {
        throw Error(ErrorKind::kUsage, {}, "--flame-weight", 0,
                    "--flame-weight expects mismatch, remote-latency, or "
                    "lpi\n" +
                        cli.usage());
      }
      exports.options.weight = *weight;
    }

    std::vector<std::string> inputs = cli.positional();
    if (const auto profile = cli.value("--profile")) {
      inputs.insert(inputs.begin(), *profile);
    }

    if (cli.has("--selftest")) {
      return print_analysis(demo_session(), options, json, telemetry, exports,
                            werror);
    }
    if (cli.has("--diff")) {
      if (inputs.size() != 2) {
        throw Error(ErrorKind::kUsage, {}, "--diff", 0,
                    "--diff expects <before> <after>\n" + cli.usage());
      }
      const core::ProfileReader reader;
      const core::SessionData before = reader.read_file(inputs[0]).data;
      const core::SessionData after = reader.read_file(inputs[1]).data;
      const core::Analyzer before_an(before, options);
      const core::Analyzer after_an(after, options);
      std::cout << core::render_diff(core::diff_profiles(before_an, after_an));
      return 0;
    }
    if (cli.has("--merge")) {
      if (inputs.empty()) {
        throw Error(ErrorKind::kUsage, {}, "--merge", 0,
                    "--merge expects measurement files\n" + cli.usage());
      }
      const core::MergeResult merged = merge_profile_files(inputs, options);
      std::cout << "merged " << merged.summary.files_merged << " of "
                << merged.summary.files_total << " profile files\n";
      for (const core::SkippedProfile& skip : merged.summary.skipped) {
        std::cout << "  skipped " << skip.path << ": " << skip.reason << "\n";
      }
      for (const core::Diagnostic& d : merged.summary.diagnostics) {
        std::cout << "  diagnostic " << d.field << " (line " << d.line
                  << "): " << d.message << "\n";
      }
      return print_analysis(merged.data, options, json, telemetry, exports,
                            werror);
    }
    if (inputs.empty() && !telemetry.empty()) {
      // Telemetry-only mode: render the health pane with no profile to
      // cross-check against.
      std::cout << core::render_health_pane(
          core::load_telemetry_trace_file(telemetry));
      return 0;
    }
    if (inputs.empty()) {
      throw Error(ErrorKind::kUsage, {}, "analyze_profile", 0,
                  "expected a profile file\n" + cli.usage());
    }

    core::LoadOptions load_options;
    load_options.lenient = options.lenient;
    const core::LoadResult loaded =
        core::ProfileReader(load_options).read_file(inputs[0]);
    for (const core::Diagnostic& d : loaded.diagnostics) {
      std::cout << "diagnostic: " << d.field << " (line " << d.line
                << "): " << d.message << "\n";
    }
    if (inputs.size() >= 2) {
      const core::Analyzer analyzer(loaded.data, options);
      run_exports(analyzer, exports, json);
      const std::string main_file = core::write_report(analyzer, inputs[1]);
      std::cout << "report written; start at " << main_file << "\n";
    } else {
      return print_analysis(loaded.data, options, json, telemetry, exports,
                            werror);
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "analyze_profile: " << format_error(error) << "\n";
    return error.kind() == ErrorKind::kUsage ? 2 : 1;
  } catch (const std::exception& error) {
    std::cerr << "analyze_profile: " << format_error(error) << "\n";
    return 1;
  }
}
