// numa_lint: command-line front end for the static NUMA-antipattern
// analyzer (src/lint/). Scans C/C++ sources for the L1..L8 catalog —
// L1..L4 per translation unit, L5..L8 from the interprocedural dataflow
// engine — and prints findings with file/line/variable and a suggested
// fix drawn from the advisor's action vocabulary. Flags share their
// spelling with analyze_profile and go through support::CliParser —
// unknown flags are rejected with the usage string.
//
//   numa_lint [flags] <file-or-dir>...
//   numa_lint --selftest
//
// Flags:
//   --jobs N          lint files in parallel; output is identical for every N
//   --format FMT      text (default) or json (one JSON object per finding)
//   --profile PATH    fuse findings with this profile's dynamic evidence
//   --telemetry T     also render the measurement-health pane from a JSONL
//                     trace (cross-checked against --profile when given)
//   --export KIND     json: fused findings as one JSON document (requires
//                     --profile); sarif: findings as SARIF 2.1.0 (no
//                     profile needed)
//   --baseline PATH   suppress the findings accepted by this baseline file;
//                     only NEW findings are reported and gate the exit code
//   --write-baseline PATH  write the current findings as a baseline and exit
//   --werror[=SEV]    fail (exit 1) only on findings of severity SEV or
//                     higher (note|warning|error; bare --werror = warning)
//   --cache DIR       incremental per-file cache keyed by content hash
//   --stats           print scan statistics
//
// Exit status: 0 = clean (or all findings below the --werror threshold /
// covered by the baseline), 1 = gating findings reported, 2 = usage or
// input error.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/numaprof.hpp"
#include "lint/baseline.hpp"
#include "lint/numalint.hpp"
#include "lint/sarif.hpp"
#include "support/cliflags.hpp"
#include "support/threadpool.hpp"

using namespace numaprof;

namespace {

// A deliberately buggy OpenMP-style translation unit exercising the lint
// catalog; --selftest checks the analyzer end to end with no input.
constexpr const char* kSelftestSource = R"lint(
#include <omp.h>

static double table[1 << 20];
static int hits[64];

void setup(double* data, long n) {
  for (long i = 0; i < n; ++i) table[i] = 0.0;  // serial first touch
}

void compute(long n) {
  double scratch[4096];
  for (long i = 0; i < 4096; ++i) scratch[i] = 1.0;
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) {
    int tid = omp_get_thread_num();
    table[i] += scratch[i % 4096];
    hits[tid] += 1;  // per-thread counters share cache lines
  }
}

void dsl_workload(SimThread& t, SimMachine& m, uint32_t threads) {
  PolicySpec policy = PolicySpec::interleave();
  auto grid = t.malloc(1024 * 8, "grid", policy);
  parallel_region(m, threads, "relax", 0, [&](SimThread& t, uint32_t index) {
    auto [b, e] = block_slice(1024, index, threads);
    store_lines(t, grid, b, e);  // block-local writes: interleave misuse
  });
}
)lint";

int gate_exit(const std::vector<core::StaticFinding>& findings,
              std::optional<lint::Severity> werror) {
  if (!werror) return findings.empty() ? 0 : 1;
  for (const core::StaticFinding& f : findings) {
    if (lint::severity_of(f.kind) >= *werror) return 1;
  }
  return 0;
}

void print_stats(std::ostream& os, const lint::LintResult& result,
                 std::size_t reported, std::size_t suppressed) {
  os << "scanned " << result.stats.files << " file"
     << (result.stats.files == 1 ? "" : "s") << ", " << result.stats.lines
     << " lines, " << result.stats.tokens << " tokens; " << reported
     << " finding" << (reported == 1 ? "" : "s");
  if (suppressed > 0) os << " (" << suppressed << " baselined)";
  os << "\n";
}

std::optional<lint::Severity> parse_werror(const support::CliParser& cli) {
  if (!cli.has("--werror")) return std::nullopt;
  const std::string spelled = cli.value("--werror").value_or("warning");
  if (spelled == "note") return lint::Severity::kNote;
  if (spelled == "warning") return lint::Severity::kWarning;
  if (spelled == "error") return lint::Severity::kError;
  throw Error(ErrorKind::kUsage, {}, "--werror", 0,
              "--werror expects note, warning, or error\n" + cli.usage());
}

support::CliParser make_parser() {
  support::CliParser cli("numa_lint",
                         "static NUMA-antipattern analyzer (L1..L8)");
  cli.add_flag("--jobs", true, "lint files in parallel (identical output)",
               "N");
  cli.add_flag("--format", true, "output format: text (default) or json",
               "FMT");
  cli.add_flag("--profile", true,
               "fuse findings with this profile's dynamic evidence", "PATH");
  cli.add_flag("--telemetry", true,
               "JSONL telemetry trace: render the measurement-health pane",
               "PATH");
  cli.add_flag("--export", true,
               "json: fused findings (requires --profile); sarif: SARIF "
               "2.1.0 findings",
               "KIND");
  cli.add_flag("--baseline", true,
               "suppress findings accepted by this baseline file", "PATH");
  cli.add_flag("--write-baseline", true,
               "write the current findings as a baseline file and exit",
               "PATH");
  cli.add_optional_value_flag(
      "--werror",
      "exit 1 only on findings of at least this severity "
      "(note|warning|error; default warning)",
      "SEV");
  cli.add_flag("--cache", true,
               "incremental per-file cache directory (content-hash keyed)",
               "DIR");
  cli.add_flag("--stats", false, "print scan statistics");
  cli.add_flag("--selftest", false, "lint a built-in antipattern sample");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage()
                << "exit status: 0 = clean (no finding at/above the gate), "
                   "1 = gating findings, 2 = usage/input error\n";
      return 0;
    }
    const bool json = cli.value("--format").value_or("text") == "json";
    if (cli.has("--format") && !json &&
        cli.value("--format").value_or("") != "text") {
      throw Error(ErrorKind::kUsage, {}, "--format", 0,
                  "--format expects text or json\n" + cli.usage());
    }
    const std::optional<lint::Severity> werror = parse_werror(cli);
    // --export shares the grammar of analyze_profile's flag. json is the
    // fused-findings document (needs dynamic evidence); sarif is the
    // static findings alone, for code-scanning UIs and CI artifacts.
    const std::string export_kind = cli.value("--export").value_or("");
    const bool export_fused = cli.has("--export") && export_kind == "json";
    const bool export_sarif = cli.has("--export") && export_kind == "sarif";
    if (cli.has("--export") && !export_fused && !export_sarif) {
      throw Error(ErrorKind::kUsage, {}, "--export", 0,
                  "--export expects json or sarif\n" + cli.usage());
    }
    if (export_fused && !cli.has("--profile")) {
      throw Error(ErrorKind::kUsage, {}, "--export", 0,
                  "--export json requires --profile (fused findings join "
                  "static and dynamic evidence)\n" +
                      cli.usage());
    }
    if (cli.has("--selftest")) {
      const auto result = lint::lint_source(kSelftestSource, "selftest.cpp");
      std::cout << lint::render_findings(result.findings);
      print_stats(std::cout, result, result.findings.size(), 0);
      // The sample plants the antipatterns; finding none means the
      // analyzer is broken, so invert the exit convention here.
      if (result.findings.empty()) {
        std::cerr << "selftest FAILED: expected findings, got none\n";
        return 2;
      }
      std::cout << "selftest OK\n";
      return 0;
    }
    if (cli.positional().empty()) {
      throw Error(ErrorKind::kUsage, {}, "numa_lint", 0,
                  "expected files or directories to lint\n" + cli.usage());
    }
    PipelineOptions options;
    options.jobs = std::clamp(
        cli.unsigned_value("--jobs", support::default_jobs()), 1u, 256u);
    options.lint_paths = cli.positional();
    options.lint_cache_dir = cli.value("--cache").value_or("");
    const lint::LintResult result =
        lint::lint_paths(options.lint_paths, options);

    if (const auto out_path = cli.value("--write-baseline")) {
      std::ofstream out(*out_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw Error(ErrorKind::kUsage, *out_path, "--write-baseline", 0,
                    "cannot write baseline file " + *out_path);
      }
      out << lint::render_baseline(lint::make_baseline(result.findings));
      std::cout << "baseline: accepted " << result.findings.size()
                << " finding" << (result.findings.size() == 1 ? "" : "s")
                << " into " << *out_path << "\n";
      return 0;
    }

    std::vector<core::StaticFinding> findings = result.findings;
    std::size_t suppressed = 0;
    if (const auto baseline_path = cli.value("--baseline")) {
      std::string error;
      const auto baseline = lint::load_baseline(*baseline_path, &error);
      if (!baseline) {
        throw Error(ErrorKind::kUsage, *baseline_path, "--baseline", 0,
                    error);
      }
      findings = lint::apply_baseline(*baseline, std::move(findings),
                                      &suppressed);
    }

    if (export_sarif) {
      // The SARIF document owns stdout; stats go to stderr.
      std::cout << lint::render_sarif(findings) << "\n";
      if (cli.has("--stats")) {
        print_stats(std::cerr, result, findings.size(), suppressed);
      }
      return gate_exit(findings, werror);
    }

    std::cout << (json ? lint::render_findings_json(findings)
                       : lint::render_findings(findings));
    if (cli.has("--stats")) {
      print_stats(std::cout, result, findings.size(), suppressed);
    }
    const int rc = gate_exit(findings, werror);

    if (const auto profile = cli.value("--profile")) {
      const Session data = core::ProfileReader().read_file(*profile).data;
      const Analyzer analyzer(data, options);
      const core::Advisor advisor(analyzer);
      const std::vector<core::FusedFinding> fused =
          core::fuse_findings(advisor, findings);
      if (export_fused) {
        std::cout << core::render_fused_findings_json(fused);
      } else {
        std::cout << "\n" << core::render_fused_findings(fused);
      }
      if (const auto trace_path = cli.value("--telemetry")) {
        std::cout << render_health_pane(
            load_telemetry_trace_file(*trace_path), &data);
      }
    } else if (const auto trace_path = cli.value("--telemetry")) {
      std::cout << render_health_pane(
          load_telemetry_trace_file(*trace_path));
    }
    return rc;
  } catch (const Error& error) {
    std::cerr << "numa_lint: " << format_error(error) << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "numa_lint: " << format_error(error) << "\n";
    return 2;
  }
}
