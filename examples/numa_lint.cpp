// numa_lint: command-line front end for the static NUMA-antipattern
// analyzer (src/lint/). Scans C/C++ sources for the L1..L4 catalog and
// prints findings with file/line/variable and a suggested fix drawn from
// the advisor's action vocabulary.
//
//   numa_lint <file-or-dir>...          lint sources, print findings
//   numa_lint --stats <file-or-dir>...  also print scan statistics
//   numa_lint --selftest                lint a built-in antipattern sample
//
// Exit status: 0 = clean, 1 = findings reported, 2 = usage error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/numalint.hpp"

namespace {

// A deliberately buggy OpenMP-style translation unit exercising all four
// lint kinds; --selftest checks the analyzer end to end with no input.
constexpr const char* kSelftestSource = R"lint(
#include <omp.h>

static double table[1 << 20];
static int hits[64];

void setup(double* data, long n) {
  for (long i = 0; i < n; ++i) table[i] = 0.0;  // serial first touch
}

void compute(long n) {
  double scratch[4096];
  for (long i = 0; i < 4096; ++i) scratch[i] = 1.0;
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) {
    int tid = omp_get_thread_num();
    table[i] += scratch[i % 4096];
    hits[tid] += 1;  // per-thread counters share cache lines
  }
}

void dsl_workload(SimThread& t, SimMachine& m, uint32_t threads) {
  PolicySpec policy = PolicySpec::interleave();
  auto grid = t.malloc(1024 * 8, "grid", policy);
  parallel_region(m, threads, "relax", 0, [&](SimThread& t, uint32_t index) {
    auto [b, e] = block_slice(1024, index, threads);
    store_lines(t, grid, b, e);  // block-local writes: interleave misuse
  });
}
)lint";

int usage() {
  std::cerr << "usage: numa_lint [--stats] <file-or-dir>...\n"
               "       numa_lint --selftest\n";
  return 2;
}

int report(const numaprof::lint::LintResult& result, bool stats) {
  std::cout << numaprof::lint::render_findings(result.findings);
  if (stats) {
    std::cout << "scanned " << result.stats.files << " file"
              << (result.stats.files == 1 ? "" : "s") << ", "
              << result.stats.lines << " lines, " << result.stats.tokens
              << " tokens; " << result.findings.size() << " finding"
              << (result.findings.size() == 1 ? "" : "s") << "\n";
  }
  return result.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool stats = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      const auto result =
          numaprof::lint::lint_source(kSelftestSource, "selftest.cpp");
      const int rc = report(result, true);
      // The sample plants all four antipatterns; finding none means the
      // analyzer is broken, so invert the exit convention here.
      if (rc != 1) {
        std::cerr << "selftest FAILED: expected findings, got none\n";
        return 2;
      }
      std::cout << "selftest OK\n";
      return 0;
    } else if (argv[i][0] == '-') {
      return usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) return usage();
  return report(numaprof::lint::lint_paths(paths), stats);
}
