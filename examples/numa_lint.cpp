// numa_lint: command-line front end for the static NUMA-antipattern
// analyzer (src/lint/). Scans C/C++ sources for the L1..L4 catalog and
// prints findings with file/line/variable and a suggested fix drawn from
// the advisor's action vocabulary. Flags share their spelling with
// analyze_profile and go through support::CliParser — unknown flags are
// rejected with the usage string.
//
//   numa_lint [flags] <file-or-dir>...
//   numa_lint --selftest
//
// Flags:
//   --jobs N        lint files in parallel; output is identical for every N
//   --format FMT    text (default) or json (one JSON object per finding)
//   --profile PATH  fuse findings with this profile's dynamic evidence
//   --telemetry T   also render the measurement-health pane from a JSONL
//                   trace (cross-checked against --profile when given)
//   --export KIND   with --profile: emit the fused findings as one JSON
//                   document instead of the text pane (KIND must be json)
//   --stats         print scan statistics
//
// Exit status: 0 = clean, 1 = findings reported, 2 = usage error.
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/numaprof.hpp"
#include "lint/numalint.hpp"
#include "support/cliflags.hpp"
#include "support/threadpool.hpp"

using namespace numaprof;

namespace {

// A deliberately buggy OpenMP-style translation unit exercising all four
// lint kinds; --selftest checks the analyzer end to end with no input.
constexpr const char* kSelftestSource = R"lint(
#include <omp.h>

static double table[1 << 20];
static int hits[64];

void setup(double* data, long n) {
  for (long i = 0; i < n; ++i) table[i] = 0.0;  // serial first touch
}

void compute(long n) {
  double scratch[4096];
  for (long i = 0; i < 4096; ++i) scratch[i] = 1.0;
  #pragma omp parallel for
  for (long i = 0; i < n; ++i) {
    int tid = omp_get_thread_num();
    table[i] += scratch[i % 4096];
    hits[tid] += 1;  // per-thread counters share cache lines
  }
}

void dsl_workload(SimThread& t, SimMachine& m, uint32_t threads) {
  PolicySpec policy = PolicySpec::interleave();
  auto grid = t.malloc(1024 * 8, "grid", policy);
  parallel_region(m, threads, "relax", 0, [&](SimThread& t, uint32_t index) {
    auto [b, e] = block_slice(1024, index, threads);
    store_lines(t, grid, b, e);  // block-local writes: interleave misuse
  });
}
)lint";

int report(const lint::LintResult& result, bool stats, bool json) {
  std::cout << (json ? lint::render_findings_json(result.findings)
                     : lint::render_findings(result.findings));
  if (stats) {
    std::cout << "scanned " << result.stats.files << " file"
              << (result.stats.files == 1 ? "" : "s") << ", "
              << result.stats.lines << " lines, " << result.stats.tokens
              << " tokens; " << result.findings.size() << " finding"
              << (result.findings.size() == 1 ? "" : "s") << "\n";
  }
  return result.findings.empty() ? 0 : 1;
}

support::CliParser make_parser() {
  support::CliParser cli("numa_lint",
                         "static NUMA-antipattern analyzer (L1..L4)");
  cli.add_flag("--jobs", true, "lint files in parallel (identical output)",
               "N");
  cli.add_flag("--format", true, "output format: text (default) or json",
               "FMT");
  cli.add_flag("--profile", true,
               "fuse findings with this profile's dynamic evidence", "PATH");
  cli.add_flag("--telemetry", true,
               "JSONL telemetry trace: render the measurement-health pane",
               "PATH");
  cli.add_flag("--export", true,
               "emit fused findings as JSON (requires --profile): json",
               "KIND");
  cli.add_flag("--stats", false, "print scan statistics");
  cli.add_flag("--selftest", false, "lint a built-in antipattern sample");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage();
      return 0;
    }
    const bool json = cli.value("--format").value_or("text") == "json";
    if (cli.has("--format") && !json &&
        cli.value("--format").value_or("") != "text") {
      throw Error(ErrorKind::kUsage, {}, "--format", 0,
                  "--format expects text or json\n" + cli.usage());
    }
    // --export shares the grammar of analyze_profile's flag; numa_lint's
    // only artifact is the fused-findings JSON, so any other kind is a
    // usage error (exit 2), like an unknown --format.
    const bool export_fused = cli.has("--export");
    if (export_fused) {
      if (cli.value("--export").value_or("") != "json") {
        throw Error(ErrorKind::kUsage, {}, "--export", 0,
                    "--export expects json\n" + cli.usage());
      }
      if (!cli.has("--profile")) {
        throw Error(ErrorKind::kUsage, {}, "--export", 0,
                    "--export requires --profile (fused findings join "
                    "static and dynamic evidence)\n" +
                        cli.usage());
      }
    }
    if (cli.has("--selftest")) {
      const auto result = lint::lint_source(kSelftestSource, "selftest.cpp");
      const int rc = report(result, true, json);
      // The sample plants all four antipatterns; finding none means the
      // analyzer is broken, so invert the exit convention here.
      if (rc != 1) {
        std::cerr << "selftest FAILED: expected findings, got none\n";
        return 2;
      }
      std::cout << "selftest OK\n";
      return 0;
    }
    if (cli.positional().empty()) {
      throw Error(ErrorKind::kUsage, {}, "numa_lint", 0,
                  "expected files or directories to lint\n" + cli.usage());
    }
    PipelineOptions options;
    options.jobs = std::clamp(
        cli.unsigned_value("--jobs", support::default_jobs()), 1u, 256u);
    options.lint_paths = cli.positional();
    const lint::LintResult result =
        lint::lint_paths(options.lint_paths, options);
    const int rc = report(result, cli.has("--stats"), json);

    if (const auto profile = cli.value("--profile")) {
      const Session data = core::load_profile_file(*profile);
      const Analyzer analyzer(data, options);
      const core::Advisor advisor(analyzer);
      const std::vector<core::FusedFinding> fused =
          core::fuse_findings(advisor, result.findings);
      if (export_fused) {
        std::cout << core::render_fused_findings_json(fused);
      } else {
        std::cout << "\n" << core::render_fused_findings(fused);
      }
      if (const auto trace_path = cli.value("--telemetry")) {
        std::cout << render_health_pane(
            load_telemetry_trace_file(*trace_path), &data);
      }
    } else if (const auto trace_path = cli.value("--telemetry")) {
      std::cout << render_health_pane(
          load_telemetry_trace_file(*trace_path));
    }
    return rc;
  } catch (const Error& error) {
    std::cerr << "numa_lint: " << format_error(error) << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "numa_lint: " << format_error(error) << "\n";
    return 2;
  }
}
