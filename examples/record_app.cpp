// CLI: the hpcrun analogue — run a case-study workload under a chosen
// sampling mechanism and write the measurement file for analyze_profile.
//
// Usage:
//   record_app <app> <variant> <mechanism> <out-file> [--trace]
//              [--shards <dir>]
//     app:       lulesh | amg | blackscholes | umt | fig1
//     variant:   baseline | blockwise | interleave | aos | parallel-init
//     mechanism: ibs | mrk | pebs | dear | pebs-ll | soft-ibs
//     --shards:  also write per-thread measurement files (hpcrun style)
//                into <dir>, for analyze_profile --merge
//
// Set NUMAPROF_FAULTS (see docs/robustness.md) to exercise the run under
// injected failures: mechanism init failures degrade along the fallback
// chain, sample faults are counted, and the profile records it all.
//
// Example (the full §8.1 pipeline on the command line):
//   record_app lulesh baseline ibs before.prof
//   record_app lulesh blockwise ibs after.prof
//   analyze_profile before.prof            # diagnosis
//   analyze_profile --diff before.prof after.prof   # verify the fix

#include <iostream>
#include <map>
#include <string>

#include "apps/distributions.hpp"
#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/profile_io.hpp"
#include "core/profiler.hpp"
#include "numasim/topology.hpp"

using namespace numaprof;

namespace {

const std::map<std::string, pmu::Mechanism> kMechanisms = {
    {"ibs", pmu::Mechanism::kIbs},       {"mrk", pmu::Mechanism::kMrk},
    {"pebs", pmu::Mechanism::kPebs},     {"dear", pmu::Mechanism::kDear},
    {"pebs-ll", pmu::Mechanism::kPebsLl},
    {"soft-ibs", pmu::Mechanism::kSoftIbs}};

const std::map<std::string, apps::Variant> kVariants = {
    {"baseline", apps::Variant::kBaseline},
    {"blockwise", apps::Variant::kBlockwise},
    {"interleave", apps::Variant::kInterleave},
    {"aos", apps::Variant::kAosRegroup},
    {"parallel-init", apps::Variant::kParallelInit}};

int usage() {
  std::cerr
      << "usage: record_app <app> <variant> <mechanism> <out-file> [--trace]"
         " [--shards <dir>]\n"
         "  app:       lulesh | amg | blackscholes | umt | fig1\n"
         "  variant:   baseline | blockwise | interleave | aos | "
         "parallel-init\n"
         "  mechanism: ibs | mrk | pebs | dear | pebs-ll | soft-ibs\n"
         "  --shards:  also write per-thread measurement files into <dir>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string app = argv[1];
  const auto variant_it = kVariants.find(argv[2]);
  const auto mech_it = kMechanisms.find(argv[3]);
  if (variant_it == kVariants.end() || mech_it == kMechanisms.end()) {
    return usage();
  }
  const std::string out = argv[4];
  bool trace = false;
  std::string shard_dir;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      trace = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      shard_dir = argv[++i];
    } else {
      return usage();
    }
  }

  try {
    // MRK belongs on the POWER7 preset, everything else on the AMD box —
    // mirroring Table 1's mechanism/host pairing.
    const bool on_power7 = mech_it->second == pmu::Mechanism::kMrk;
    simrt::Machine machine(on_power7 ? numasim::power7()
                                     : numasim::amd_magny_cours());
    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(mech_it->second);
    // These runs are seconds long, not hours: sample densely enough that
    // every mechanism populates the profile. Latency-threshold samplers
    // (DEAR, PEBS-LL) see few qualifying events on cache-friendly apps, so
    // they get the densest setting.
    const bool event_filtered =
        pmu::capabilities_of(mech_it->second).event_filtered;
    cfg.event.period = std::min<std::uint64_t>(cfg.event.period,
                                               event_filtered ? 50 : 500);
    cfg.event.min_sample_gap =
        std::min<numasim::Cycles>(cfg.event.min_sample_gap, 20'000);
    cfg.record_trace = trace;
    core::Profiler profiler(machine, cfg);

    const apps::Variant variant = variant_it->second;
    if (app == "lulesh") {
      apps::run_minilulesh(machine, {.threads = 48,
                                     .pages_per_thread = 4,
                                     .timesteps = 12,
                                     .variant = variant});
    } else if (app == "amg") {
      apps::run_miniamg(machine, {.threads = 48,
                                  .rows_per_thread = 1024,
                                  .nnz_per_row = 4,
                                  .relax_sweeps = 5,
                                  .matvec_sweeps = 1,
                                  .variant = variant});
    } else if (app == "blackscholes") {
      apps::BlackscholesConfig bs;
      bs.threads = 48;
      bs.variant = variant;
      apps::run_miniblackscholes(machine, bs);
    } else if (app == "umt") {
      apps::run_miniumt(machine, {.threads = 32,
                                  .groups = 64,
                                  .corners = 32,
                                  .angles = 128,
                                  .sweeps = 8,
                                  .variant = variant});
    } else if (app == "fig1") {
      apps::run_distribution(
          machine, {.threads = 48,
                    .pages_per_thread = 4,
                    .sweeps = 4,
                    .distribution = apps::Distribution::kCentralized});
    } else {
      return usage();
    }
    const core::SessionData data = profiler.snapshot();
    core::save_profile_file(data, out);
    std::cout << "recorded " << app << "/" << argv[2] << " under "
              << to_string(data.mechanism) << " -> " << out << "\n";
    if (data.degraded()) {
      std::cout << "collection degraded (" << data.degradations.size()
                << " event(s)); see the report's collection health section\n";
    }
    if (!shard_dir.empty()) {
      const auto paths = core::save_thread_shards(data, shard_dir);
      std::cout << "wrote " << paths.size() << " per-thread shards to "
                << shard_dir << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "record_app: " << error.what() << "\n";
    return 1;
  }
}
