// CLI: the hpcrun analogue — run a case-study workload under a chosen
// sampling mechanism and write the measurement file for analyze_profile.
//
// Usage:
//   record_app [flags] <app> <variant> <mechanism> <out-file>
//     app:       lulesh | amg | blackscholes | umt | fig1
//     variant:   baseline | blockwise | interleave | aos | parallel-init
//     mechanism: ibs | mrk | pebs | dear | pebs-ll | soft-ibs | spe
//
// Flags:
//   --trace                   record the per-sample trace
//   --format FMT              profile encoding for the out-file, shards,
//                             and the daemon stream: text (default, the
//                             lossless interchange format) or binary (the
//                             mmap-able columnar format, docs/format.md)
//   --shards DIR              also write per-thread measurement files
//                             (hpcrun style) for analyze_profile --merge
//   --telemetry-interval N    stream a live measurement-health status line
//                             every N retired instructions while the
//                             workload runs (per-mechanism sample/drop
//                             counters, running M_l/M_r)
//   --telemetry PATH          write the telemetry stream as a JSONL trace;
//                             analyze_profile --telemetry PATH renders it
//   --export KIND             also export visualization artifacts from the
//                             fresh run: trace | flamegraph | html | all
//                             (the trace timeline needs --trace)
//   --export-dir DIR          where those artifacts go (default: exports)
//   --daemon WAL              stream the per-thread shards through an
//                             in-process ingestion daemon (retry/backoff
//                             client into a WAL-backed server journaling
//                             to WAL) and report what was delivered
//   --daemon-spool FILE       write the framed client stream to FILE for
//                             a separate numaprofd process to replay
//   --client-id N             client id stamped on every frame (default 1)
//   --top                     paint a live numa_top monitor to stderr while
//                             the workload runs (pull-only: the recorded
//                             profile is byte-identical with or without
//                             it); excludes --telemetry/--telemetry-interval
//                             because a hub snapshot drains the event
//                             queues and the hub is single-consumer
//   --top-interval N          repaint every N instructions (default 100000)
//   --top-size WxH            monitor frame size (default: tty size, else
//                             80x24)
//
// Set NUMAPROF_FAULTS (see docs/robustness.md) to exercise the run under
// injected failures: mechanism init failures degrade along the fallback
// chain, sample faults are counted, and both the profile and the live
// telemetry stream record it all.
//
// Example (the full §8.1 pipeline on the command line):
//   record_app --telemetry before.jsonl lulesh baseline ibs before.prof
//   analyze_profile --telemetry before.jsonl before.prof   # diagnosis
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "monitor/live.hpp"
#include "monitor/term.hpp"

#include "apps/distributions.hpp"
#include "apps/miniamg.hpp"
#include "apps/miniblackscholes.hpp"
#include "apps/minilulesh.hpp"
#include "apps/miniumt.hpp"
#include "core/numaprof.hpp"
#include "ingest/server.hpp"
#include "numasim/topology.hpp"
#include "support/cliflags.hpp"

using namespace numaprof;

namespace {

const std::map<std::string, pmu::Mechanism> kMechanisms = {
    {"ibs", pmu::Mechanism::kIbs},       {"mrk", pmu::Mechanism::kMrk},
    {"pebs", pmu::Mechanism::kPebs},     {"dear", pmu::Mechanism::kDear},
    {"pebs-ll", pmu::Mechanism::kPebsLl},
    {"soft-ibs", pmu::Mechanism::kSoftIbs},
    {"spe", pmu::Mechanism::kSpe}};

const std::map<std::string, apps::Variant> kVariants = {
    {"baseline", apps::Variant::kBaseline},
    {"blockwise", apps::Variant::kBlockwise},
    {"interleave", apps::Variant::kInterleave},
    {"aos", apps::Variant::kAosRegroup},
    {"parallel-init", apps::Variant::kParallelInit}};

support::CliParser make_parser() {
  support::CliParser cli(
      "record_app",
      "run a case-study workload under a sampling mechanism; "
      "operands: <app> <variant> <mechanism> <out-file>");
  cli.add_flag("--trace", false, "record the per-sample trace");
  cli.add_flag("--format", true,
               "profile encoding for out-file, shards, and the daemon "
               "stream: text | binary (default text)",
               "FMT");
  cli.add_flag("--shards", true, "also write per-thread shards into DIR",
               "DIR");
  cli.add_flag("--telemetry-interval", true,
               "stream a live health status line every N instructions", "N");
  cli.add_flag("--telemetry", true, "write the telemetry JSONL trace here",
               "PATH");
  cli.add_flag("--export", true,
               "also export artifacts: trace | flamegraph | html | all",
               "KIND");
  cli.add_flag("--export-dir", true,
               "directory for exported artifacts (default: exports)", "DIR");
  cli.add_flag("--daemon", true,
               "stream shards through an in-process daemon journaling to WAL",
               "WAL");
  cli.add_flag("--daemon-spool", true,
               "write the framed client stream here for numaprofd", "FILE");
  cli.add_flag("--client-id", true,
               "client id stamped on every frame (default 1)", "N");
  cli.add_flag("--top", false,
               "paint a live numa_top monitor to stderr while running");
  cli.add_flag("--top-interval", true,
               "repaint the monitor every N instructions (default 100000)",
               "N");
  cli.add_flag("--top-size", true,
               "monitor frame size (default: tty size or 80x24)", "WxH");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

[[noreturn]] void bad_usage(const support::CliParser& cli,
                            const std::string& message) {
  throw Error(ErrorKind::kUsage, {}, "record_app", 0,
              message + "\n" + cli.usage() +
                  "  app:       lulesh | amg | blackscholes | umt | fig1\n"
                  "  variant:   baseline | blockwise | interleave | aos | "
                  "parallel-init\n"
                  "  mechanism: ibs | mrk | pebs | dear | pebs-ll | "
                  "soft-ibs | spe\n");
}

void run_workload(simrt::Machine& machine, const std::string& app,
                  apps::Variant variant) {
  if (app == "lulesh") {
    apps::run_minilulesh(machine, {.threads = 48,
                                   .pages_per_thread = 4,
                                   .timesteps = 12,
                                   .variant = variant});
  } else if (app == "amg") {
    apps::run_miniamg(machine, {.threads = 48,
                                .rows_per_thread = 1024,
                                .nnz_per_row = 4,
                                .relax_sweeps = 5,
                                .matvec_sweeps = 1,
                                .variant = variant});
  } else if (app == "blackscholes") {
    apps::BlackscholesConfig bs;
    bs.threads = 48;
    bs.variant = variant;
    apps::run_miniblackscholes(machine, bs);
  } else if (app == "umt") {
    apps::run_miniumt(machine, {.threads = 32,
                                .groups = 64,
                                .corners = 32,
                                .angles = 128,
                                .sweeps = 8,
                                .variant = variant});
  } else {
    apps::run_distribution(
        machine, {.threads = 48,
                  .pages_per_thread = 4,
                  .sweeps = 4,
                  .distribution = apps::Distribution::kCentralized});
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage();
      return 0;
    }
    const std::vector<std::string>& operands = cli.positional();
    if (operands.size() != 4) {
      bad_usage(cli, "expected <app> <variant> <mechanism> <out-file>");
    }
    const std::string& app = operands[0];
    const auto variant_it = kVariants.find(operands[1]);
    const auto mech_it = kMechanisms.find(operands[2]);
    if (variant_it == kVariants.end()) {
      bad_usage(cli, "unknown variant: " + operands[1]);
    }
    if (mech_it == kMechanisms.end()) {
      bad_usage(cli, "unknown mechanism: " + operands[2]);
    }
    if (app != "lulesh" && app != "amg" && app != "blackscholes" &&
        app != "umt" && app != "fig1") {
      bad_usage(cli, "unknown app: " + app);
    }
    const std::string& out = operands[3];

    ProfileFormat format = ProfileFormat::kText;
    if (const auto fmt = cli.value("--format")) {
      if (*fmt == "binary") {
        format = ProfileFormat::kBinary;
      } else if (*fmt != "text") {
        bad_usage(cli, "--format expects text or binary");
      }
    }

    std::optional<ExportKind> export_kind;
    if (const auto kind_text = cli.value("--export")) {
      export_kind = parse_export_kind(*kind_text);
      if (!export_kind) {
        bad_usage(cli, "--export expects trace, flamegraph, html, or all");
      }
    }

    // MRK belongs on the POWER7 preset, everything else on the AMD box —
    // mirroring Table 1's mechanism/host pairing.
    const bool on_power7 = mech_it->second == pmu::Mechanism::kMrk;
    simrt::Machine machine(on_power7 ? numasim::power7()
                                     : numasim::amd_magny_cours());

    // Live telemetry: the hub every measurement component publishes into,
    // and the streamer that periodically folds it into status lines and/or
    // the JSONL trace.
    Telemetry hub;
    machine.set_telemetry(&hub);
    std::ofstream jsonl;
    const auto trace_path = cli.value("--telemetry");
    if (trace_path) {
      jsonl.open(*trace_path);
      if (!jsonl) {
        throw Error(ErrorKind::kTelemetry, *trace_path, "telemetry", 0,
                    "cannot open telemetry trace for writing: " +
                        *trace_path);
      }
    }

    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(mech_it->second);
    // These runs are seconds long, not hours: sample densely enough that
    // every mechanism populates the profile. Latency-threshold samplers
    // (DEAR, PEBS-LL) see few qualifying events on cache-friendly apps, so
    // they get the densest setting.
    const bool event_filtered =
        pmu::capabilities_of(mech_it->second).event_filtered;
    cfg.event.period = std::min<std::uint64_t>(cfg.event.period,
                                               event_filtered ? 50 : 500);
    cfg.event.min_sample_gap =
        std::min<numasim::Cycles>(cfg.event.min_sample_gap, 20'000);
    cfg.record_trace = cli.has("--trace");
    cfg.telemetry = &hub;
    core::Profiler profiler(machine, cfg);

    TelemetryStreamer::Config stream_cfg;
    stream_cfg.interval_instructions =
        cli.unsigned_value("--telemetry-interval", 0);
    stream_cfg.status =
        cli.has("--telemetry-interval") ? &std::cerr : nullptr;
    stream_cfg.jsonl = trace_path ? &jsonl : nullptr;
    stream_cfg.mechanism = profiler.sampler().mechanism();
    TelemetryStreamer streamer(hub, stream_cfg);
    const bool streaming = stream_cfg.status != nullptr ||
                           stream_cfg.jsonl != nullptr;
    if (streaming) machine.add_observer(streamer);

    // Live monitor. It pulls snapshots from the same hub, and a hub
    // snapshot drains the per-ring event queues (single consumer), so
    // --top cannot share the hub with the telemetry streamer.
    if (cli.has("--top") && streaming) {
      bad_usage(cli,
                "--top excludes --telemetry/--telemetry-interval (both "
                "drain the telemetry hub, which is single-consumer)");
    }
    monitor::LiveTop::Config top_cfg;
    top_cfg.out = &std::cerr;
    top_cfg.mechanism = profiler.sampler().mechanism();
    top_cfg.interval_instructions =
        cli.unsigned_value("--top-interval", 100000);
    top_cfg.ansi = ::isatty(STDERR_FILENO) != 0;
    const monitor::TermSize top_size = monitor::detect_term_size(
        STDERR_FILENO);
    top_cfg.width = top_size.width;
    top_cfg.height = top_size.height;
    if (const auto text = cli.value("--top-size")) {
      std::size_t width = 0;
      std::size_t height = 0;
      char x = 0;
      std::istringstream in(*text);
      if (!(in >> width >> x >> height) || x != 'x' || width == 0 ||
          height == 0 || (in >> x)) {
        bad_usage(cli, "--top-size expects WxH, e.g. 80x24");
      }
      top_cfg.width = width;
      top_cfg.height = height;
    }
    monitor::LiveTop top(hub, top_cfg);
    const bool topping = cli.has("--top");
    if (topping) machine.add_observer(top);

    run_workload(machine, app, variant_it->second);

    if (topping) {
      top.flush(machine.elapsed());
      machine.remove_observer(top);
      if (top_cfg.ansi) std::cerr << monitor::ansi_leave() << std::flush;
    }
    if (streaming) {
      streamer.flush(machine.elapsed());
      machine.remove_observer(streamer);
    }
    const core::SessionData data = profiler.snapshot();
    const ProfileWriter writer(format);
    writer.write_file(data, out);
    std::cout << "recorded " << app << "/" << operands[1] << " under "
              << to_string(data.mechanism) << " -> " << out << "\n";
    if (data.degraded()) {
      std::cout << "collection degraded (" << data.degradations.size()
                << " event(s)); see the report's collection health section\n";
    }
    if (const auto shard_dir = cli.value("--shards")) {
      const auto paths = writer.write_thread_shards(data, *shard_dir);
      std::cout << "wrote " << paths.size() << " per-thread shards to "
                << *shard_dir << "\n";
    }
    const unsigned client_id_raw = cli.unsigned_value("--client-id", 1);
    const auto client_id =
        static_cast<std::uint32_t>(client_id_raw == 0 ? 1 : client_id_raw);
    if (const auto wal = cli.value("--daemon")) {
      support::FaultPlan& faults = support::global_fault_plan();
      ingest::ServerOptions server_options;
      server_options.wal_path = *wal;
      if (faults.enabled()) server_options.faults = &faults;
      server_options.telemetry = &hub;
      ingest::IngestServer server(server_options);
      ingest::LoopbackTransport loop(server);
      ingest::ClientOptions client_options;
      client_options.client_id = client_id;
      client_options.shard_format = format;
      if (faults.enabled()) client_options.faults = &faults;
      ingest::IngestClient client(loop, client_options);
      const ingest::SendReport sent = client.send_session(data);
      std::cout << "daemon ingest: " << sent.shards_delivered << " of "
                << sent.shards_total << " shard(s) acknowledged in "
                << sent.frames_sent << " frame(s) (" << sent.retries
                << " retransmit(s), " << sent.busy_deferrals
                << " busy deferral(s)) -> " << *wal << "\n";
      if (!sent.complete) {
        std::cout << "daemon ingest degraded: " << sent.give_up_reason
                  << "\n";
      }
    }
    if (const auto spool = cli.value("--daemon-spool")) {
      support::FaultPlan& faults = support::global_fault_plan();
      const std::vector<std::string> shards = writer.thread_shards(data);
      const std::string stream = ingest::encode_client_stream(
          shards, client_id, faults.enabled() ? &faults : nullptr);
      std::ofstream os(*spool, std::ios::binary);
      if (!os.write(stream.data(),
                    static_cast<std::streamsize>(stream.size()))) {
        throw Error(ErrorKind::kIngest, *spool, "spool", 0,
                    "cannot write client stream: " + *spool);
      }
      std::cout << "spooled " << stream.size() << " stream byte(s) ("
                << shards.size() << " shard(s)) -> " << *spool << "\n";
    }
    if (trace_path) {
      std::cout << "wrote telemetry trace (" << streamer.snapshots_emitted()
                << " snapshot(s)) to " << *trace_path << "\n";
    }
    if (export_kind) {
      const Analyzer analyzer(data);
      for (const std::string& path : write_exports(
               analyzer, *export_kind,
               cli.value("--export-dir").value_or("exports"))) {
        std::cout << "exported " << path << "\n";
      }
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "record_app: " << format_error(error) << "\n";
    return error.kind() == ErrorKind::kUsage ? 2 : 1;
  } catch (const std::exception& error) {
    std::cerr << "record_app: " << format_error(error) << "\n";
    return 1;
  }
}
