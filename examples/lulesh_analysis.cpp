// Example: the full §8.1 workflow on MiniLulesh, end to end, including the
// hpcrun -> profile file -> hpcprof handoff.
//
//   1. run the baseline workload under the profiler (IBS-style sampling),
//   2. save the per-thread profiles to a file and reload them,
//   3. analyze: program verdict, offender ranking, access patterns,
//   4. take the advisor's recommendation,
//   5. apply it (the blockwise variant) and measure the speedup.
//
// Usage: lulesh_analysis [profile-path]
//   profile-path: where to write the measurement file
//                 (default: ./lulesh.numaprof)

#include <iostream>

#include "apps/minilulesh.hpp"
#include "core/advisor.hpp"
#include "core/numaprof.hpp"
#include "numasim/topology.hpp"

using namespace numaprof;

int main(int argc, char** argv) {
  const std::string profile_path =
      argc > 1 ? argv[1] : "./lulesh.numaprof";

  const apps::LuleshConfig config{.threads = 48,
                                  .pages_per_thread = 4,
                                  .timesteps = 12,
                                  .variant = apps::Variant::kBaseline};

  // 1. Monitored baseline run.
  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig pc;
  pc.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  core::Profiler profiler(machine, pc);
  const apps::LuleshRun baseline = run_minilulesh(machine, config);

  // 2. Persist and reload, exactly as hpcrun's measurement files feed
  //    hpcprof.
  core::ProfileWriter().write_file(profiler.snapshot(), profile_path);
  std::cout << "wrote profile to " << profile_path << "\n\n";
  const core::SessionData data =
      core::ProfileReader().read_file(profile_path).data;

  // 3. Offline analysis.
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);
  std::cout << viewer.program_summary() << "\n";
  std::cout << "--- top variables by NUMA cost ---\n"
            << viewer.data_centric_table(7).to_text() << "\n";
  std::cout << "--- hottest call paths ---\n"
            << viewer.code_centric_table(5).to_text() << "\n";

  const auto z = [&] {
    for (const core::Variable& v : data.variables) {
      if (v.name == "z") return v.id;
    }
    return core::VariableId{0};
  }();
  std::cout << "--- per-thread access ranges of z ---\n"
            << viewer.address_centric_plot(z) << "\n";
  std::cout << "--- where z is first touched ---\n"
            << viewer.first_touch_table(z).to_text() << "\n";

  // 4. Recommendation.
  const core::Advisor advisor(analyzer);
  std::cout << "--- recommendations ---\n";
  for (const core::Recommendation& rec : advisor.recommend_all(4)) {
    std::cout << rec.variable_name << ": " << to_string(rec.action) << "\n  "
              << rec.rationale << "\n";
  }

  // 5. Apply the block-wise fix and verify.
  simrt::Machine fixed_machine(numasim::amd_magny_cours());
  apps::LuleshConfig fixed_config = config;
  fixed_config.variant = apps::Variant::kBlockwise;
  const apps::LuleshRun fixed = run_minilulesh(fixed_machine, fixed_config);

  const double speedup = static_cast<double>(baseline.compute_cycles) /
                         static_cast<double>(fixed.compute_cycles);
  std::cout << "\n--- applying blockwise first touch ---\n"
            << "baseline compute: " << baseline.compute_cycles
            << " cycles\nfixed compute:    " << fixed.compute_cycles
            << " cycles\nspeedup: " << speedup << "x\n";
  return 0;
}
