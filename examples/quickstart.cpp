// Quickstart: profile a small NUMA-unfriendly workload and print the three
// views the tool provides (code-centric, data-centric, address-centric),
// plus the first-touch report and an optimization recommendation.
//
// The workload is the classic first-touch pathology: the master thread
// initializes an array that worker threads then process block-wise, so
// every page lands in the master's NUMA domain.

#include <cstdio>
#include <iostream>

#include "core/advisor.hpp"
#include "core/numaprof.hpp"
#include "numasim/topology.hpp"
#include "simrt/machine.hpp"

using namespace numaprof;

namespace {

simrt::Task master_init(simrt::SimThread& t, simos::VAddr* out,
                        std::uint64_t bytes) {
  simrt::ScopedFrame frame(t, "initialize", "quickstart.cpp", 30);
  *out = t.malloc(bytes, "grid");
  // First-touch every page: this is the bug the profiler will pinpoint.
  for (simos::VAddr a = *out; a < *out + bytes; a += numasim::kLineBytes) {
    t.store(a);
  }
  co_return;
}

}  // namespace

int main() {
  // A 4-socket AMD Magny-Cours: 48 cores in 8 NUMA domains.
  simrt::Machine machine(numasim::amd_magny_cours());

  // Attach the profiler before the program runs (hpcrun-style). IBS-like
  // instruction sampling with first-touch tracking.
  core::ProfilerConfig config;
  config.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  config.event.period = 500;  // small run: sample densely
  core::Profiler profiler(machine, config);

  // --- The monitored "program" ---------------------------------------
  constexpr std::uint32_t kThreads = 48;
  // 24 pages (96 KiB) per thread: larger than the private L2, so the
  // steady state keeps missing to the (remote) home domain.
  constexpr std::uint64_t kBytes = 48 * 24 * simos::kPageBytes;
  simos::VAddr grid = 0;

  const auto main_frame = machine.frames().intern("main", "quickstart.cpp", 44);
  machine.spawn(
      [&](simrt::SimThread& t) -> simrt::Task { return master_init(t, &grid, kBytes); },
      0, {main_frame});
  machine.run();

  simrt::parallel_region(
      machine, kThreads, "process._omp", {main_frame},
      [&](simrt::SimThread& t, std::uint32_t index) -> simrt::Task {
        const std::uint64_t elems = kBytes / 8;
        const std::uint64_t begin = elems * index / kThreads;
        const std::uint64_t end = elems * (index + 1) / kThreads;
        for (std::uint32_t sweep = 0; sweep < 4; ++sweep) {
          for (std::uint64_t i = begin; i < end; i += 8) {
            t.load(grid + i * 8);
            t.exec(2);
            t.store(grid + i * 8);
            co_await t.tick();
          }
          co_await t.yield();
        }
        co_return;
      });

  // --- Offline analysis (hpcprof-style) --------------------------------
  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  std::cout << viewer.program_summary() << "\n";
  std::cout << "--- data-centric view ---\n"
            << viewer.data_centric_table(5).to_text() << "\n";
  std::cout << "--- code-centric view (top call paths) ---\n"
            << viewer.code_centric_table(5).to_text() << "\n";

  const auto grid_var = [&]() -> core::VariableId {
    for (const auto& report : analyzer.variables()) {
      if (report.name == "grid") return report.id;
    }
    return 0;
  }();
  std::cout << "--- address-centric view (variable 'grid') ---\n"
            << viewer.address_centric_plot(grid_var) << "\n";
  std::cout << "--- first-touch report ---\n"
            << viewer.first_touch_table(grid_var).to_text() << "\n";

  const core::Advisor advisor(analyzer);
  const core::Recommendation rec = advisor.recommend(grid_var);
  std::cout << "--- recommendation ---\n"
            << "variable: " << rec.variable_name << "\n"
            << "pattern:  " << to_string(rec.guiding.kind) << "\n"
            << "action:   " << to_string(rec.action) << "\n"
            << "why:      " << rec.rationale << "\n";
  return 0;
}
