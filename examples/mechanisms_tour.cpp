// Example: the same workload observed through all six address-sampling
// mechanisms (§3), showing what each can and cannot report.
//
// IBS and PEBS-LL support latency (and therefore lpi_NUMA); MRK samples
// only L3-miss events; PEBS samples all retired instructions but needs
// skid correction; DEAR samples high-latency loads without NUMA data
// sources; Soft-IBS needs no PMU at all. The M_l/M_r classification works
// identically everywhere because it rests on move_pages + thread binding,
// not on PMU features (§4.1).

#include <iostream>

#include "apps/common.hpp"
#include "core/numaprof.hpp"
#include "numasim/topology.hpp"
#include "support/table.hpp"

using namespace numaprof;

namespace {

/// The canonical first-touch pathology: master initializes, workers
/// process block-wise.
void run_workload(simrt::Machine& m) {
  constexpr std::uint32_t kThreads = 24;
  constexpr std::uint64_t kElems = kThreads * 16 * apps::kElemsPerPage;
  simos::VAddr grid = 0;
  const auto main_f = m.frames().intern("main");
  parallel_region(m, 1, "init", {main_f},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    grid = t.malloc(kElems * 8, "grid");
                    apps::store_lines(t, grid, 0, kElems);
                    co_return;
                  });
  parallel_region(m, kThreads, "work._omp", {main_f},
                  [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                    const apps::Slice s =
                        apps::block_slice(kElems, i, kThreads);
                    for (int sweep = 0; sweep < 6; ++sweep) {
                      apps::load_lines(t, grid, s.begin, s.end);
                      co_await t.yield();
                    }
                    co_return;
                  });
}

}  // namespace

int main() {
  support::Table table({"mechanism", "samples", "memory samples",
                        "M_r share", "remote L3 share", "lpi_NUMA",
                        "verdict"});

  for (const auto mechanism :
       {pmu::Mechanism::kIbs, pmu::Mechanism::kMrk, pmu::Mechanism::kPebs,
        pmu::Mechanism::kDear, pmu::Mechanism::kPebsLl,
        pmu::Mechanism::kSoftIbs, pmu::Mechanism::kSpe}) {
    simrt::Machine machine(numasim::amd_magny_cours());
    core::ProfilerConfig cfg;
    cfg.event = pmu::EventConfig::mini(mechanism);
    // This demo workload is small; sample densely so every mechanism's
    // columns are populated.
    cfg.event.period = std::min<std::uint64_t>(cfg.event.period, 250);
    cfg.event.min_sample_gap = std::min<numasim::Cycles>(
        cfg.event.min_sample_gap, 5000);
    core::Profiler profiler(machine, cfg);
    run_workload(machine);
    const core::SessionData data = profiler.snapshot();
    const core::Analyzer analyzer(data);
    const core::ProgramSummary& p = analyzer.program();

    const double mr_share =
        p.match + p.mismatch
            ? static_cast<double>(p.mismatch) /
                  static_cast<double>(p.match + p.mismatch)
            : 0.0;
    table.add_row(
        {std::string(to_string(mechanism)), support::format_count(p.samples),
         support::format_count(p.memory_samples),
         support::format_percent(mr_share),
         p.l3_miss_samples ? support::format_percent(p.remote_l3_fraction)
                           : "n/a",
         p.lpi ? support::format_fixed(*p.lpi, 3) : "n/a",
         p.warrants_optimization ? "optimize" : "skip"});
  }

  std::cout << "One workload, six address-sampling mechanisms:\n\n"
            << table.to_text()
            << "\nNote how M_r agrees across mechanisms (it relies on\n"
               "move_pages, not PMU features), while lpi_NUMA exists only\n"
               "where the hardware reports latency (IBS, PEBS-LL, DEAR).\n";
  return 0;
}
