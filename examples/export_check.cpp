// CLI: validate exported visualization artifacts with the bundled schema
// checkers (core/export/schema.hpp). CI's export-smoke job runs this over
// everything analyze_profile --export produced; it is also handy locally
// before loading an artifact into Perfetto or speedscope.
//
// Usage:
//   export_check <artifact>...
//
// Each operand is dispatched on its file-name suffix (.trace.json,
// .speedscope.json, .collapsed.txt, .html). Exit status: 0 = every
// artifact valid, 1 = at least one check failed or a file was unreadable,
// 2 = usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/numaprof.hpp"
#include "support/cliflags.hpp"

using namespace numaprof;

namespace {

support::CliParser make_parser() {
  support::CliParser cli("export_check",
                         "validate exported artifacts against the bundled "
                         "schema checkers; operands: <artifact>...");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage();
      return 0;
    }
    if (cli.positional().empty()) {
      throw Error(ErrorKind::kUsage, {}, "export_check", 0,
                  "expected artifact files to validate\n" + cli.usage());
    }
    bool all_valid = true;
    for (const std::string& path : cli.positional()) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cout << path << ": UNREADABLE\n";
        all_valid = false;
        continue;
      }
      std::ostringstream bytes;
      bytes << in.rdbuf();
      const std::vector<std::string> errors =
          check_artifact(path, bytes.str());
      if (errors.empty()) {
        std::cout << path << ": ok\n";
        continue;
      }
      all_valid = false;
      std::cout << path << ": " << errors.size() << " error(s)\n";
      for (const std::string& error : errors) {
        std::cout << "  " << error << "\n";
      }
    }
    return all_valid ? 0 : 1;
  } catch (const Error& error) {
    std::cerr << "export_check: " << format_error(error) << "\n";
    return error.kind() == ErrorKind::kUsage ? 2 : 1;
  } catch (const std::exception& error) {
    std::cerr << "export_check: " << format_error(error) << "\n";
    return 1;
  }
}
