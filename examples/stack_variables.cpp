// Example: monitoring stack variables directly (the paper's §10 future
// work, implemented here as an extension).
//
// §8.1 had to promote LULESH's `nodelist` from the stack to a static
// variable because the tool only resolved heap and static data. This
// library also supports (a) per-thread anonymous stack segments and (b)
// explicitly registered, named stack variables — so a master-thread stack
// array shared with workers is diagnosable without source changes.

#include <iostream>

#include "apps/common.hpp"
#include "core/advisor.hpp"
#include "core/numaprof.hpp"
#include "numasim/topology.hpp"

using namespace numaprof;

int main() {
  simrt::Machine machine(numasim::amd_magny_cours());
  core::ProfilerConfig cfg;
  cfg.event = pmu::EventConfig::mini(pmu::Mechanism::kIbs);
  cfg.event.period = 100;
  core::Profiler profiler(machine, cfg);

  constexpr std::uint32_t kThreads = 16;
  constexpr std::uint64_t kElems = 64 * apps::kElemsPerPage;  // 64 pages
  const auto main_f = machine.frames().intern("main");

  // `nodelist` lives on the MASTER's stack (thread 0), like the original
  // LULESH declaration. Register it with the profiler so samples resolve
  // to its name instead of "stack(thread 0)".
  const simos::VAddr master_stack = machine.memory().stack_base(0);
  const simos::VAddr nodelist = master_stack + 4096;
  profiler.variables().register_stack_variable("nodelist(stack)", 0,
                                               nodelist, kElems * 8);

  parallel_region(machine, 1, "init", {main_f},
                  [&](simrt::SimThread& t, std::uint32_t) -> simrt::Task {
                    apps::store_lines(t, nodelist, 0, kElems);
                    co_return;
                  });
  parallel_region(machine, kThreads, "work._omp", {main_f},
                  [&](simrt::SimThread& t, std::uint32_t i) -> simrt::Task {
                    const apps::Slice s =
                        apps::block_slice(kElems, i, kThreads);
                    for (int sweep = 0; sweep < 8; ++sweep) {
                      apps::load_lines(t, nodelist, s.begin, s.end);
                      co_await t.yield();
                    }
                    co_return;
                  });

  const core::SessionData data = profiler.snapshot();
  const core::Analyzer analyzer(data);
  const core::Viewer viewer(analyzer);

  std::cout << viewer.program_summary() << "\n"
            << "--- data-centric view (note the stack variable) ---\n"
            << viewer.data_centric_table(5).to_text() << "\n";

  for (const core::VariableReport& report : analyzer.variables()) {
    if (report.kind != core::VariableKind::kStackVar) continue;
    std::cout << "--- address-centric view of " << report.name << " ---\n"
              << viewer.address_centric_plot(report.id) << "\n";
    const core::Advisor advisor(analyzer);
    const auto rec = advisor.recommend(report.id);
    std::cout << "pattern: " << to_string(rec.guiding.kind)
              << "  suggested fix: " << to_string(rec.action) << "\n"
              << "(a stack variable cannot be re-homed by a parallel first\n"
              << " touch of ITS pages by other threads in real life —\n"
              << " which is exactly why the paper promoted nodelist to a\n"
              << " static variable before optimizing it)\n";
  }
  return 0;
}
