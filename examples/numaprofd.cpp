// CLI: numaprofd — the crash-safe ingestion daemon.
//
// Recorder clients (record_app --daemon-spool) stream their per-thread
// measurement shards as framed, checksummed transport bytes; numaprofd
// replays those streams, journals every accepted shard to a write-ahead
// log BEFORE acknowledging it, folds everything through the analyzer's
// quorum-checked merge, and writes the merged profile and/or the text
// analysis report. Kill it at any instant — including halfway through a
// WAL write — and a restart recovers the log (truncating the torn tail),
// re-ingests the streams (duplicates are absorbed idempotently), and
// produces byte-identical outputs.
//
// Usage:
//   numaprofd [flags] <stream-file>...
//
// Flags:
//   --wal PATH        write-ahead log (default: numaprofd.wal); an
//                     existing log is recovered, not overwritten
//   --out PATH        write the merged profile here
//   --out-format FMT  encoding for --out: text (default) | binary
//   --report PATH     write the text analysis report here
//   --spool DIR       spool directory for the analyzer merge
//                     (default: <wal>.spool)
//   --jobs N          merge parallelism (byte-identical output)
//   --quorum F        minimum fraction of shards that must merge (0..1)
//   --strict          fail on the first damaged shard (default: lenient)
//   --crash-after N   fault injection: die mid-write after N WAL appends
//   --telemetry-out PATH  append mechanism-less JSONL telemetry snapshots
//                     (one after each ingested stream, one after the
//                     merge) for `numa_top --follow PATH` to tail
//
// Set NUMAPROF_FAULTS (see docs/robustness.md) to exercise the daemon
// side under injected failures (disk-full WAL appends).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/numaprof.hpp"
#include "ingest/server.hpp"
#include "support/cliflags.hpp"

using namespace numaprof;

namespace {

support::CliParser make_parser() {
  support::CliParser cli(
      "numaprofd",
      "crash-safe ingestion daemon: WAL-backed shard ingest and merge; "
      "operands: <stream-file>...");
  cli.add_flag("--wal", true, "write-ahead log path (recovered if present)",
               "PATH");
  cli.add_flag("--out", true, "write the merged profile here", "PATH");
  cli.add_flag("--out-format", true,
               "encoding for --out: text (default) | binary", "FMT");
  cli.add_flag("--report", true, "write the text analysis report here",
               "PATH");
  cli.add_flag("--spool", true, "merge spool directory (default <wal>.spool)",
               "DIR");
  cli.add_flag("--jobs", true, "merge parallelism (byte-identical output)",
               "N");
  cli.add_flag("--quorum", true, "minimum merge quorum fraction (0..1)", "F");
  cli.add_flag("--strict", false, "fail on the first damaged shard");
  cli.add_flag("--crash-after", true,
               "fault injection: die mid-write after N WAL appends", "N");
  cli.add_flag("--telemetry-out", true,
               "append JSONL telemetry snapshots here (numa_top --follow)",
               "PATH");
  cli.add_flag("--help", false, "show this message");
  return cli;
}

std::string read_stream_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorKind::kIngest, path, "stream", 0,
                "cannot open client stream: " + path);
  }
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return std::move(bytes).str();
}

/// The same report panes analyze_profile prints, written to a file so a
/// recovered run can be diffed byte-for-byte against an uninterrupted one.
void write_report(const core::SessionData& data,
                  const PipelineOptions& options, const std::string& path) {
  const core::Analyzer analyzer(data, options);
  const core::Viewer viewer(analyzer);
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw Error(ErrorKind::kIngest, path, "report", 0,
                "cannot open report for writing: " + path);
  }
  os << viewer.program_summary();
  const std::string health = viewer.collection_health();
  if (!health.empty()) os << "-- collection health --\n" << health;
  os << "\n"
     << viewer.data_centric_table(10).to_text() << "\n"
     << viewer.code_centric_table(10).to_text() << "\n"
     << viewer.domain_balance_table().to_text() << "\n";
  const core::Advisor advisor(analyzer);
  for (const core::Recommendation& rec : advisor.recommend_all(5)) {
    os << rec.variable_name << ": " << to_string(rec.action) << "\n  "
       << rec.rationale << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli = make_parser();
  try {
    cli.parse(std::vector<std::string>(argv + 1, argv + argc));
    if (cli.has("--help")) {
      std::cout << cli.usage();
      return 0;
    }
    if (cli.positional().empty()) {
      throw Error(ErrorKind::kUsage, {}, "numaprofd", 0,
                  "expected at least one <stream-file>\n" + cli.usage());
    }

    support::FaultPlan& faults = support::global_fault_plan();
    ingest::ServerOptions options;
    options.wal_path = cli.value("--wal").value_or("numaprofd.wal");
    if (faults.enabled()) options.faults = &faults;
    options.crash_after_appends = cli.unsigned_value("--crash-after", 0);

    // Telemetry spool for `numa_top --follow`: the server publishes its
    // ingest counters/events into the hub, and we fold one snapshot per
    // ingested stream (plus one after the merge) into an appendable JSONL
    // file. Snapshot "time" is the 1-based fold number — the daemon has
    // no virtual clock.
    Telemetry hub;
    std::ofstream telemetry_out;
    const auto telemetry_path = cli.value("--telemetry-out");
    if (telemetry_path) {
      telemetry_out.open(*telemetry_path, std::ios::app);
      if (!telemetry_out) {
        throw Error(ErrorKind::kTelemetry, *telemetry_path, "telemetry", 0,
                    "cannot open telemetry spool for writing: " +
                        *telemetry_path);
      }
      options.telemetry = &hub;
    }
    std::uint64_t folds = 0;
    const auto publish_snapshot = [&] {
      if (!telemetry_path) return;
      core::write_snapshot_jsonl(hub.snapshot(++folds), telemetry_out);
      telemetry_out.flush();
    };

    ingest::IngestServer server(options);

    const ingest::ServerStats recovered = server.stats();
    if (recovered.wal_records_replayed > 0 || recovered.wal_torn_bytes > 0) {
      std::cerr << "numaprofd: recovered " << recovered.wal_records_replayed
                << " record(s) from " << options.wal_path;
      if (recovered.wal_torn_bytes > 0) {
        std::cerr << ", truncated " << recovered.wal_torn_bytes
                  << " torn byte(s) (" << server.wal_stop_reason() << ")";
      }
      std::cerr << "\n";
    }

    for (const std::string& path : cli.positional()) {
      server.ingest_stream(read_stream_file(path));
      publish_snapshot();
    }

    PipelineOptions pipeline;
    pipeline.jobs = std::max(1u, cli.unsigned_value("--jobs", 1));
    pipeline.lenient = !cli.has("--strict");
    if (const auto fmt = cli.value("--out-format")) {
      if (*fmt == "binary") {
        pipeline.format = ProfileFormat::kBinary;
      } else if (*fmt != "text") {
        throw Error(ErrorKind::kUsage, {}, "numaprofd", 0,
                    "--out-format expects text or binary");
      }
    }
    if (const auto quorum = cli.value("--quorum")) {
      try {
        pipeline.quorum = std::stod(*quorum);
      } catch (const std::exception&) {
        throw Error(ErrorKind::kUsage, {}, "numaprofd", 0,
                    "--quorum expects a fraction in [0, 1]");
      }
    }

    const std::string spool =
        cli.value("--spool").value_or(options.wal_path + ".spool");
    const core::MergeResult merged = server.merge(spool, pipeline);
    publish_snapshot();

    const ingest::ServerStats stats = server.stats();
    std::cout << "ingested " << stats.frames_accepted << " shard(s) from "
              << server.client_summaries().size() << " client(s) ("
              << stats.frames_duplicate << " duplicate(s), "
              << stats.corrupt_regions << " corrupt region(s), "
              << stats.clients_evicted << " eviction(s), "
              << stats.wal_rejections << " WAL rejection(s))\n";
    std::cout << "merged " << merged.summary.files_merged << " of "
              << merged.summary.files_total << " shard(s)";
    if (!merged.summary.skipped.empty()) {
      std::cout << "; skipped " << merged.summary.skipped.size();
    }
    std::cout << "\n";

    if (const auto out = cli.value("--out")) {
      core::ProfileWriter(pipeline).write_file(merged.data, *out);
      std::cout << "wrote merged profile -> " << *out << "\n";
    }
    if (const auto report = cli.value("--report")) {
      write_report(merged.data, pipeline, *report);
      std::cout << "wrote analysis report -> " << *report << "\n";
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "numaprofd: " << format_error(error) << "\n";
    return error.kind() == ErrorKind::kUsage ? 2 : 1;
  } catch (const std::exception& error) {
    std::cerr << "numaprofd: " << format_error(error) << "\n";
    return 1;
  }
}
